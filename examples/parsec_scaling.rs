//! Multi-threaded application scaling: how PARSEC-like applications
//! with different synchronization behaviour scale on the 4B design,
//! and how much time they spend at reduced active thread counts
//! (the Figure 1 / Section 5 story).
//!
//! Run with `cargo run --release --example parsec_scaling`.

use tlpsim::core::configs::by_name;
use tlpsim::core::ctx::Ctx;
use tlpsim::core::SimScale;
use tlpsim::workloads::parsec;

fn main() {
    let ctx = Ctx::new(SimScale::quick());
    let d4b = by_name("4B").expect("4B exists");
    let apps = parsec::all();

    println!("ROI speedup on 4B (SMT) vs its own 4-thread run:\n");
    println!(
        "{:20} {:>7} {:>7} {:>7}  active@max",
        "app", "4thr", "8thr", "24thr"
    );
    for (a, app) in apps.iter().enumerate() {
        let run = |n: usize| match ctx.parsec_run(&d4b, a, n, true, 8.0) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("{} x{n} failed: {e}; skipping app", app.name);
                None
            }
        };
        let (Some(r4), Some(r8), Some(r24)) = (run(4), run(8), run(24)) else {
            continue;
        };
        let t4 = r4.roi_cycles;
        let t8 = r8.roi_cycles;
        let t24 = r24.roi_cycles;
        // Fraction of ROI time with at least 20 runnable threads.
        let total: u64 = r24.histogram.iter().sum();
        let full: u64 = r24.histogram.iter().skip(20).sum();
        println!(
            "{:20} {:>7.2} {:>7.2} {:>7.2}  {:>5.1}%",
            app.name,
            1.0,
            t4 as f64 / t8 as f64,
            t4 as f64 / t24 as f64,
            100.0 * full as f64 / total.max(1) as f64,
        );
    }
    println!(
        "\nApps with barriers/imbalance/serial phases spend much of the ROI\n\
         below full thread count — the paper's motivation for SMT's\n\
         flexibility towards varying thread-level parallelism."
    );
}
