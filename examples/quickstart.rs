//! Quickstart: simulate two programs sharing one big SMT core and
//! print per-program performance, chip power, and memory behaviour.
//!
//! Run with `cargo run --release --example quickstart`.

use tlpsim::power::PowerModel;
use tlpsim::uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
use tlpsim::workloads::{spec, InstrStream};

fn main() {
    // A chip with one big out-of-order core (4-wide, 128-entry ROB,
    // 6 SMT contexts) and the paper's memory hierarchy.
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);

    // Two synthetic SPEC-like programs: one compute-bound, one
    // memory-bound — a classic symbiotic SMT pair.
    let budget = 50_000;
    let programs = [spec::hmmer_like(), spec::mcf_like()];
    for (i, prof) in programs.iter().enumerate() {
        let stream = InstrStream::new(prof, i as u64, 42);
        let t = sim.add_thread(ThreadProgram::multiprogram(stream, budget));
        sim.pin(t, 0, i); // same core, SMT contexts 0 and 1
    }

    sim.prewarm(); // functional cache warming (SimPoint-style)
    let run = sim.run().expect("no deadlock");

    for (i, (t, prof)) in run.threads.iter().zip(&programs).enumerate() {
        println!("thread {i} ({:18}) IPC = {:.3}", prof.name, t.ipc(budget));
    }
    let power = PowerModel::with_power_gating().report(&chip, &run);
    println!("chip power            = {:.1} W", power.avg_power_w);
    println!(
        "LLC miss rate         = {:.1} %",
        run.mem.llc_miss_rate() * 100.0
    );
    println!("off-chip traffic      = {} KB", run.mem.bus_bytes / 1024);
    println!("simulated cycles      = {}", run.cycles);
}
