//! Capacity planning for a datacenter node: which multi-core design
//! serves a datacenter-like active-thread distribution best, and what
//! does it cost in power? (The Figure 10 / Figure 15 question.)
//!
//! Run with `cargo run --release --example datacenter`.

use tlpsim::core::configs::nine_designs;
use tlpsim::core::ctx::Ctx;
use tlpsim::core::experiments::fig10_datacenter;
use tlpsim::core::SimScale;
use tlpsim::workloads::ThreadCountDistribution;

fn main() {
    let dist = ThreadCountDistribution::datacenter(24);
    println!(
        "datacenter active-thread distribution (mean {:.1} threads):",
        dist.mean()
    );
    for (n, p) in dist.iter() {
        if n <= 12 || n == 24 {
            println!("  {n:>2} threads: {}", "#".repeat((p * 200.0) as usize));
        }
    }
    println!();

    let ctx = Ctx::new(SimScale::quick());
    for (dist_name, smt, bars) in fig10_datacenter(&ctx) {
        println!("{}", bars.render());
        let (best, v) = bars.best();
        let v4b = bars.value("4B").expect("4B present");
        println!(
            "  [{dist_name}, SMT={smt}] best = {best} ({v:.3}); 4B at {:.1}% of best\n",
            100.0 * v4b / v
        );
    }

    println!(
        "designs evaluated: {:?}",
        nine_designs()
            .iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
    );
}
