//! Reproduce the core of the paper's argument (Figures 6-8): compare
//! the nine power-equivalent multi-core designs under a uniform
//! active-thread-count distribution, with three SMT policies.
//!
//! Run with `cargo run --release --example design_space`.

use tlpsim::core::ctx::{Ctx, WorkloadKind};
use tlpsim::core::experiments::{fig6to8_uniform, SmtPolicy};
use tlpsim::core::SimScale;

fn main() {
    // Share the simulation-result cache with the bench harness.
    let ctx = Ctx::with_disk_cache(SimScale::quick(), "target/tlpsim-cache-quick.txt");
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        for policy in [SmtPolicy::None, SmtPolicy::HomogeneousOnly, SmtPolicy::All] {
            let bars = fig6to8_uniform(&ctx, kind, policy);
            println!("{}", bars.render());
            let (best, v) = bars.best();
            println!("   best: {best} ({v:.3})\n");
        }
    }
}
