//! End-to-end integration: workload generation -> scheduling ->
//! cycle-level simulation -> metrics -> power, across all crates.

use tlpsim::core::metrics;
use tlpsim::power::{CoreKind, PowerModel};
use tlpsim::sched::{assign_threads, ThreadTraits};
use tlpsim::uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
use tlpsim::workloads::{spec, InstrStream};

const WARMUP: u64 = 4_000;
const BUDGET: u64 = 10_000;

/// Full pipeline on a heterogeneous chip (1B6m-style) with a real mix.
#[test]
fn heterogeneous_chip_end_to_end() {
    let mut cores = vec![CoreConfig::big()];
    cores.extend(std::iter::repeat_n(CoreConfig::medium(), 6));
    let chip = ChipConfig::heterogeneous(&cores, 2.66);

    let profiles = spec::all();
    let mix = [0usize, 9, 10, 6, 1, 11, 7, 3, 5]; // 9 varied programs
    let traits: Vec<ThreadTraits> = mix
        .iter()
        .map(|&b| ThreadTraits {
            big_core_benefit: 1.0 + profiles[b].memory_intensity(),
            memory_intensity: profiles[b].memory_intensity(),
        })
        .collect();
    let placements = assign_threads(&chip, &traits, true);

    let mut sim = MultiCore::new(&chip);
    for (i, &b) in mix.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&profiles[b], i as u64, 5),
            WARMUP,
            BUDGET,
        ));
        sim.pin(t, placements[i].core, placements[i].slot);
    }
    sim.prewarm();
    let run = sim.run().expect("no deadlock");

    // Every program finished its measured window.
    assert!(run.threads.iter().all(|t| t.finish_cycle.is_some()));
    // STP is bounded by thread count and must be positive.
    let pairs: Vec<(f64, f64)> = run.threads.iter().map(|t| (t.ipc(BUDGET), 1.0)).collect();
    let raw_sum = metrics::stp(&pairs).expect("positive isolated IPCs");
    assert!(raw_sum > 0.0);
    // ANTT >= 1 when normalized against a faster baseline.
    let slowdowns: Vec<(f64, f64)> = run
        .threads
        .iter()
        .map(|t| {
            let ipc = t.ipc(BUDGET);
            (ipc, ipc * 1.5)
        })
        .collect();
    assert!(metrics::antt(&slowdowns).expect("all programs ran") >= 1.0);

    // Power report is physically plausible for a ~40W-budget chip.
    let report = PowerModel::with_power_gating().report(&chip, &run);
    assert!(
        (8.0..70.0).contains(&report.avg_power_w),
        "implausible power {}",
        report.avg_power_w
    );
    assert!(report.energy_j > 0.0);
    assert!(report.edp() > 0.0);
    // Gating must not exceed the no-gating estimate.
    let nogate = PowerModel::without_power_gating().report(&chip, &run);
    assert!(nogate.avg_power_w >= report.avg_power_w - 1e-9);
}

/// The scheduler's big-core preference is visible in measured IPC:
/// the single high-benefit thread must land on the big core and run
/// faster than it would on a medium core.
#[test]
fn scheduling_affects_measured_performance() {
    let mut cores = vec![CoreConfig::big()];
    cores.extend(std::iter::repeat_n(CoreConfig::medium(), 2));
    let chip = ChipConfig::heterogeneous(&cores, 2.66);
    let p = spec::hmmer_like();

    // One compute-hungry thread + two fillers.
    let traits = vec![
        ThreadTraits {
            big_core_benefit: 3.0,
            memory_intensity: 0.1,
        },
        ThreadTraits::default(),
        ThreadTraits::default(),
    ];
    let placements = assign_threads(&chip, &traits, true);
    assert_eq!(placements[0].core, 0, "high-benefit thread on the big core");

    let mut sim = MultiCore::new(&chip);
    for (i, pl) in placements.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&p, i as u64, 9),
            WARMUP,
            BUDGET,
        ));
        sim.pin(t, pl.core, pl.slot);
    }
    sim.prewarm();
    let run = sim.run().expect("no deadlock");
    let big_ipc = run.threads[0].ipc(BUDGET);
    let med_ipc = run.threads[1].ipc(BUDGET).max(run.threads[2].ipc(BUDGET));
    assert!(
        big_ipc > med_ipc,
        "big-core thread {big_ipc} should outrun medium-core threads {med_ipc}"
    );
}

/// Power-model/ChipConfig classification agreement across core types.
#[test]
fn power_classification_matches_chip() {
    for (cfg, kind) in [
        (CoreConfig::big(), CoreKind::Big),
        (CoreConfig::medium(), CoreKind::Medium),
        (CoreConfig::small(), CoreKind::Small),
    ] {
        assert_eq!(CoreKind::classify(&cfg), kind);
    }
}

/// Simulation results are bit-identical across repeated runs (full
/// determinism of the whole stack).
#[test]
fn full_stack_determinism() {
    let run = || {
        let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
        let mut sim = MultiCore::new(&chip);
        for (i, b) in [4usize, 10, 8].iter().enumerate() {
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(&spec::all()[*b], i as u64, 33),
                WARMUP,
                BUDGET,
            ));
            sim.pin(t, i % 2, i / 2);
        }
        sim.prewarm();
        sim.run().expect("no deadlock")
    };
    assert_eq!(run(), run());
}
