//! Shape-level checks of the paper's findings (quick simulation scale,
//! reduced design subset — the full sweeps live in the bench harness
//! and EXPERIMENTS.md).

use tlpsim::core::configs::by_name;
use tlpsim::core::ctx::{Ctx, WorkloadKind};
use tlpsim::core::dynamic::dynamic_stp;
use tlpsim::core::SimScale;

use std::sync::OnceLock;

/// One shared context: the findings tests reuse each other's cells.
fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| Ctx::new(SimScale::quick()))
}

/// Finding #1 (low-thread half): with few active threads, the all-big
/// SMT design beats the all-small design outright — each thread owns a
/// big core.
#[test]
fn few_threads_favor_big_cores() {
    let ctx = ctx();
    let d4b = by_name("4B").unwrap();
    let d20s = by_name("20s").unwrap();
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        let b = ctx
            .mp_cell(&d4b, 2, kind, true)
            .expect("cell simulates")
            .mean_stp();
        let s = ctx
            .mp_cell(&d20s, 2, kind, true)
            .expect("cell simulates")
            .mean_stp();
        assert!(
            b > s * 1.3,
            "{kind:?}: 4B ({b:.2}) should clearly beat 20s ({s:.2}) at 2 threads"
        );
    }
}

/// Finding #1 (high-thread half): at 24 threads the many-small-core
/// design wins on raw throughput, but 4B with SMT stays within range
/// (shared-resource contention flattens the gap).
#[test]
fn many_threads_keep_4b_competitive() {
    let ctx = ctx();
    let d4b = by_name("4B").unwrap();
    let d20s = by_name("20s").unwrap();
    let kind = WorkloadKind::Heterogeneous;
    let b = ctx
        .mp_cell(&d4b, 24, kind, true)
        .expect("cell simulates")
        .mean_stp();
    let s = ctx
        .mp_cell(&d20s, 24, kind, true)
        .expect("cell simulates")
        .mean_stp();
    assert!(
        b > s * 0.55,
        "4B at 24 threads ({b:.2}) fell too far behind 20s ({s:.2})"
    );
}

/// Finding #2: without SMT, a heterogeneous design beats the
/// homogeneous all-big design across varying thread counts (big cores
/// alone can only run 4 threads at a time).
#[test]
fn without_smt_heterogeneity_wins() {
    let ctx = ctx();
    let d4b = by_name("4B").unwrap();
    let het = by_name("2B10s").unwrap();
    let kind = WorkloadKind::Heterogeneous;
    // Average over a small thread-count sample (uniform-ish).
    let avg = |d: &tlpsim::core::configs::Design| -> f64 {
        [2usize, 8, 16, 24]
            .iter()
            .map(|&n| {
                ctx.mp_cell(d, n, kind, false)
                    .expect("cell simulates")
                    .mean_stp()
            })
            .sum::<f64>()
            / 4.0
    };
    let b = avg(&d4b);
    let h = avg(&het);
    assert!(
        h > b,
        "no-SMT: heterogeneous 2B10s ({h:.2}) should beat 4B ({b:.2})"
    );
}

/// Finding #3: adding SMT to the homogeneous big-core design beats the
/// heterogeneous design without SMT.
#[test]
fn smt_beats_heterogeneity() {
    let ctx = ctx();
    let d4b = by_name("4B").unwrap();
    let het = by_name("2B10s").unwrap();
    let kind = WorkloadKind::Heterogeneous;
    let avg = |d: &tlpsim::core::configs::Design, smt: bool| -> f64 {
        [2usize, 8, 16, 24]
            .iter()
            .map(|&n| {
                ctx.mp_cell(d, n, kind, smt)
                    .expect("cell simulates")
                    .mean_stp()
            })
            .sum::<f64>()
            / 4.0
    };
    let b_smt = avg(&d4b, true);
    let h_nosmt = avg(&het, false);
    assert!(
        b_smt > h_nosmt,
        "4B+SMT ({b_smt:.2}) should beat heterogeneous no-SMT ({h_nosmt:.2})"
    );
}

/// Finding #8: the ideal dynamic multi-core dominates every static
/// design by construction, and 4B with SMT comes close to the no-SMT
/// dynamic design.
#[test]
fn dynamic_oracle_dominates_but_4b_is_close() {
    let ctx = ctx();
    let d4b = by_name("4B").unwrap();
    let kind = WorkloadKind::Heterogeneous;
    let n = 8;
    let dyn_nosmt = dynamic_stp(ctx, n, kind, false).expect("oracle runs");
    let b = ctx
        .mp_cell(&d4b, n, kind, true)
        .expect("cell simulates")
        .mean_stp();
    let dyn_smt = dynamic_stp(ctx, n, kind, true).expect("oracle runs");
    assert!(dyn_smt >= b - 1e-9, "dynamic+SMT must dominate 4B+SMT");
    assert!(
        b > dyn_nosmt * 0.7,
        "4B+SMT ({b:.2}) should be competitive with dynamic no-SMT ({dyn_nosmt:.2})"
    );
}

/// Finding #9 (direction): power gating makes low-thread-count
/// operation cheaper on many-core designs, but the overall
/// energy-efficiency ordering keeps 4B competitive.
#[test]
fn power_grows_with_thread_count_and_small_cores_use_less() {
    let ctx = ctx();
    let d4b = by_name("4B").unwrap();
    let d20s = by_name("20s").unwrap();
    let kind = WorkloadKind::Homogeneous;
    let p4b_1 = ctx
        .mp_cell(&d4b, 1, kind, true)
        .expect("cell simulates")
        .mean_power();
    let p4b_24 = ctx
        .mp_cell(&d4b, 24, kind, true)
        .expect("cell simulates")
        .mean_power();
    let p20s_1 = ctx
        .mp_cell(&d20s, 1, kind, true)
        .expect("cell simulates")
        .mean_power();
    assert!(p4b_24 > p4b_1, "more threads must cost more power");
    assert!(
        p20s_1 < p4b_1,
        "a single small core ({p20s_1:.1} W) must be cheaper than a big one ({p4b_1:.1} W)"
    );
    // Figure 14 anchor: one active big core around 15-19 W.
    assert!(
        (12.0..22.0).contains(&p4b_1),
        "4B @ 1 thread power {p4b_1:.1} W out of calibration range"
    );
}
