//! Property-based tests (proptest) on the core data structures and
//! invariants of the simulator substrates.

use proptest::prelude::*;

use tlpsim::mem::{Cache, CacheConfig, LineAddr};
use tlpsim::workloads::{
    heterogeneous_mixes, spec, BenchmarkProfile, DepProfile, InstrMix, InstrStream, MemProfile,
    SplitMix64, ThreadCountDistribution,
};

proptest! {
    /// A cache never holds more lines than its capacity, whatever the
    /// access sequence.
    #[test]
    fn cache_capacity_invariant(
        lines in proptest::collection::vec(0u64..4096, 1..600),
        ways in 1u32..8,
    ) {
        let sets = 16u64;
        let capacity = sets * ways as u64 * 64;
        let mut c = Cache::new(CacheConfig::new(capacity, ways, 1));
        for &l in &lines {
            c.access(LineAddr(l), l % 3 == 0);
        }
        prop_assert!(c.resident_lines() <= capacity / 64);
    }

    /// Immediately re-accessing any line hits (LRU never evicts the
    /// most recently used line).
    #[test]
    fn cache_mru_hit(lines in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(4096, 4, 1));
        for &l in &lines {
            c.access(LineAddr(l), false);
            prop_assert!(c.contains(LineAddr(l)));
            let out = c.access(LineAddr(l), false);
            prop_assert!(out.hit);
        }
    }

    /// The PRNG respects its bound and is deterministic per seed.
    #[test]
    fn rng_bound_and_determinism(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.below(n);
            prop_assert!(x < n);
            prop_assert_eq!(x, b.below(n));
        }
    }

    /// Thread-count distributions are normalized and mirroring is an
    /// involution.
    #[test]
    fn distribution_invariants(max in 1usize..64) {
        let d = ThreadCountDistribution::datacenter(max);
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let m = ThreadCountDistribution::mirrored_datacenter(max);
        for n in 1..=max {
            prop_assert!((d.prob(n) - m.prob(max + 1 - n)).abs() < 1e-12);
        }
    }

    /// Balanced-random mixes contain every benchmark equally often.
    #[test]
    fn mixes_are_balanced(n in 1usize..25, seed in any::<u64>()) {
        let mixes = heterogeneous_mixes(12, n, seed);
        let mut counts = [0usize; 12];
        for m in &mixes {
            prop_assert_eq!(m.len(), n);
            for &b in m { counts[b] += 1; }
        }
        let expected = n * mixes.len() / 12;
        prop_assert!(counts.iter().all(|&c| c == expected));
    }

    /// Generated instruction streams never reference producers older
    /// than the stream itself, and memory addresses stay inside the
    /// thread's private space unless shared.
    #[test]
    fn stream_invariants(seed in any::<u64>(), space in 0u64..8) {
        let p = spec::gcc_like();
        let s = InstrStream::new(&p, space, seed);
        for (i, instr) in s.take(300).enumerate() {
            prop_assert!(u64::from(instr.src1_dist) <= i as u64);
            prop_assert!(u64::from(instr.src2_dist) <= i as u64);
            if instr.kind.is_mem() {
                let base = space * tlpsim::workloads::generator::THREAD_SPACE_BYTES;
                prop_assert!(instr.addr.0 >= base);
                prop_assert!(instr.addr.0 < base + tlpsim::workloads::generator::THREAD_SPACE_BYTES);
            }
        }
    }

    /// Any profile built from in-range parameters validates, and its
    /// stream is deterministic.
    #[test]
    fn profile_space_is_safe(
        near in 0.0f64..0.9,
        hot_frac in 0.1f64..0.9,
        stream_frac in 0.0f64..0.1,
        mispredict in 0.0f64..0.2,
    ) {
        let p = BenchmarkProfile {
            name: "prop",
            mix: InstrMix::typical_int(),
            dep: DepProfile { near_frac: near, near_max: 2, far_max: 48, two_src_frac: 0.4 },
            mem: MemProfile {
                hot_bytes: 8 * 1024,
                cold_bytes: 1024 * 1024,
                hot_frac,
                stream_frac,
                stream_stride: 64,
            },
            mispredict_rate: mispredict,
            code_bytes: 8 * 1024,
            code_jump_prob: 0.02,
        };
        prop_assert!(p.validate().is_ok());
        let a: Vec<_> = InstrStream::new(&p, 0, 7).take(100).collect();
        let b: Vec<_> = InstrStream::new(&p, 0, 7).take(100).collect();
        prop_assert_eq!(a, b);
    }

    /// STP and ANTT metric identities hold for arbitrary positive inputs.
    #[test]
    fn metric_identities(ipcs in proptest::collection::vec(0.01f64..4.0, 1..24)) {
        use tlpsim::core::metrics::{antt, harmonic_mean, arithmetic_mean, stp};
        // Running each program at its isolated speed: STP = n, ANTT = 1.
        let pairs: Vec<(f64, f64)> = ipcs.iter().map(|&x| (x, x)).collect();
        prop_assert!((stp(&pairs) - ipcs.len() as f64).abs() < 1e-9);
        prop_assert!((antt(&pairs) - 1.0).abs() < 1e-9);
        // Harmonic mean never exceeds arithmetic mean.
        prop_assert!(harmonic_mean(&ipcs) <= arithmetic_mean(&ipcs) + 1e-12);
    }
}
