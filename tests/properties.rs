//! Randomized property tests on the core data structures and
//! invariants of the simulator substrates.
//!
//! These used to be proptest properties; they are now driven by the
//! in-repo deterministic [`SplitMix64`] generator so the test suite
//! builds with no external dependencies (offline-friendly, see
//! DESIGN.md §7). Each property samples a fixed number of random
//! cases from a fixed seed — failures therefore reproduce exactly.

use tlpsim::mem::{Cache, CacheConfig, LineAddr};
use tlpsim::workloads::{
    heterogeneous_mixes, spec, BenchmarkProfile, DepProfile, InstrMix, InstrStream, MemProfile,
    SplitMix64, ThreadCountDistribution,
};

/// Number of random cases per property.
const CASES: usize = 48;

/// A cache never holds more lines than its capacity, whatever the
/// access sequence.
#[test]
fn cache_capacity_invariant() {
    let mut rng = SplitMix64::new(0x11);
    for _ in 0..CASES {
        let ways = 1 + rng.below(7) as u32;
        let len = 1 + rng.below(599) as usize;
        let sets = 16u64;
        let capacity = sets * ways as u64 * 64;
        let mut c = Cache::new(CacheConfig::new(capacity, ways, 1));
        for _ in 0..len {
            let l = rng.below(4096);
            c.access(LineAddr(l), l.is_multiple_of(3));
        }
        assert!(c.resident_lines() <= capacity / 64);
    }
}

/// Immediately re-accessing any line hits (LRU never evicts the most
/// recently used line).
#[test]
fn cache_mru_hit() {
    let mut rng = SplitMix64::new(0x22);
    for _ in 0..CASES {
        let len = 1 + rng.below(199) as usize;
        let mut c = Cache::new(CacheConfig::new(4096, 4, 1));
        for _ in 0..len {
            let l = LineAddr(rng.below(10_000));
            c.access(l, false);
            assert!(c.contains(l));
            let out = c.access(l, false);
            assert!(out.hit);
        }
    }
}

/// The PRNG respects its bound and is deterministic per seed.
#[test]
fn rng_bound_and_determinism() {
    let mut rng = SplitMix64::new(0x33);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let n = 1 + rng.below(1_000_000 - 1);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.below(n);
            assert!(x < n);
            assert_eq!(x, b.below(n));
        }
    }
}

/// Thread-count distributions are normalized and mirroring is an
/// involution.
#[test]
fn distribution_invariants() {
    for max in 1usize..64 {
        let d = ThreadCountDistribution::datacenter(max);
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "max={max}: total={total}");
        let m = ThreadCountDistribution::mirrored_datacenter(max);
        for n in 1..=max {
            assert!((d.prob(n) - m.prob(max + 1 - n)).abs() < 1e-12);
        }
    }
}

/// Balanced-random mixes contain every benchmark equally often.
#[test]
fn mixes_are_balanced() {
    let mut rng = SplitMix64::new(0x44);
    for _ in 0..CASES {
        let n = 1 + rng.below(24) as usize;
        let seed = rng.next_u64();
        let mixes = heterogeneous_mixes(12, n, seed);
        let mut counts = [0usize; 12];
        for m in &mixes {
            assert_eq!(m.len(), n);
            for &b in m {
                counts[b] += 1;
            }
        }
        let expected = n * mixes.len() / 12;
        assert!(counts.iter().all(|&c| c == expected), "n={n} seed={seed}");
    }
}

/// Generated instruction streams never reference producers older than
/// the stream itself, and memory addresses stay inside the thread's
/// private space unless shared.
#[test]
fn stream_invariants() {
    let mut rng = SplitMix64::new(0x55);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let space = rng.below(8);
        let p = spec::gcc_like();
        let s = InstrStream::new(&p, space, seed);
        for (i, instr) in s.take(300).enumerate() {
            assert!(u64::from(instr.src1_dist) <= i as u64);
            assert!(u64::from(instr.src2_dist) <= i as u64);
            if instr.kind.is_mem() {
                let base = space * tlpsim::workloads::generator::THREAD_SPACE_BYTES;
                assert!(instr.addr.0 >= base);
                assert!(instr.addr.0 < base + tlpsim::workloads::generator::THREAD_SPACE_BYTES);
            }
        }
    }
}

/// Any profile built from in-range parameters validates, and its
/// stream is deterministic.
#[test]
fn profile_space_is_safe() {
    let mut rng = SplitMix64::new(0x66);
    for _ in 0..CASES {
        let near = 0.9 * rng.next_f64();
        let hot_frac = 0.1 + 0.8 * rng.next_f64();
        let stream_frac = 0.1 * rng.next_f64();
        let mispredict = 0.2 * rng.next_f64();
        let p = BenchmarkProfile {
            name: "prop",
            mix: InstrMix::typical_int(),
            dep: DepProfile {
                near_frac: near,
                near_max: 2,
                far_max: 48,
                two_src_frac: 0.4,
            },
            mem: MemProfile {
                hot_bytes: 8 * 1024,
                cold_bytes: 1024 * 1024,
                hot_frac,
                stream_frac,
                stream_stride: 64,
            },
            mispredict_rate: mispredict,
            code_bytes: 8 * 1024,
            code_jump_prob: 0.02,
        };
        assert!(p.validate().is_ok());
        let a: Vec<_> = InstrStream::new(&p, 0, 7).take(100).collect();
        let b: Vec<_> = InstrStream::new(&p, 0, 7).take(100).collect();
        assert_eq!(a, b);
    }
}

/// STP and ANTT metric identities hold for arbitrary positive inputs.
#[test]
fn metric_identities() {
    use tlpsim::core::metrics::{antt, arithmetic_mean, harmonic_mean, stp};
    let mut rng = SplitMix64::new(0x77);
    for _ in 0..CASES {
        let len = 1 + rng.below(23) as usize;
        let ipcs: Vec<f64> = (0..len).map(|_| 0.01 + 3.99 * rng.next_f64()).collect();
        // Running each program at its isolated speed: STP = n, ANTT = 1.
        let pairs: Vec<(f64, f64)> = ipcs.iter().map(|&x| (x, x)).collect();
        assert!((stp(&pairs).unwrap() - ipcs.len() as f64).abs() < 1e-9);
        assert!((antt(&pairs).unwrap() - 1.0).abs() < 1e-9);
        // Harmonic mean never exceeds arithmetic mean.
        assert!(harmonic_mean(&ipcs).unwrap() <= arithmetic_mean(&ipcs).unwrap() + 1e-12);
    }
}
