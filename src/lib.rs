//! # tlpsim — umbrella crate
//!
//! Re-exports the whole workspace under one roof so examples and
//! integration tests can use a single dependency. See the README for the
//! project overview and `DESIGN.md` for the system inventory.

pub use tlpsim_core as core;
pub use tlpsim_mem as mem;
pub use tlpsim_power as power;
pub use tlpsim_sched as sched;
pub use tlpsim_trace as trace;
pub use tlpsim_uarch as uarch;
pub use tlpsim_workloads as workloads;
