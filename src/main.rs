//! `tlpsim` command-line interface.
//!
//! ```text
//! tlpsim list                          # benchmarks, apps and designs
//! tlpsim run 4B 8 --no-smt             # 8-thread mix on the 4B design
//! tlpsim run 2B10s 12 --bench mcf_like # homogeneous 12-copy workload
//! tlpsim app 4B blackscholes_like 8    # a multi-threaded app run
//! ```
//!
//! Exit codes (stable; scripts may rely on them):
//!
//! | code | meaning                                           |
//! |------|---------------------------------------------------|
//! | 0    | success                                           |
//! | 2    | usage error (bad flags/arguments/environment)     |
//! | 3    | unknown design, benchmark or application name     |
//! | 4    | simulation failed (stall, invalid configuration)  |
//! | 130  | interrupted (SIGINT/SIGTERM); resumable           |

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use tlpsim::core::configs;
use tlpsim::core::ctx::{Cell, Ctx, WorkloadKind};
use tlpsim::core::journal::Journal;
use tlpsim::core::{executor, interrupt, snapshot, SimError, SimScale, SWEEP_COUNTS};
use tlpsim::trace::{write_chrome_trace, CpiComponent, TraceConfig, Tracer, DEFAULT_RING_CAP};
use tlpsim::uarch::{MultiCore, ThreadProgram};
use tlpsim::workloads::{parsec, spec, InstrStream};

/// Usage error: bad syntax, missing arguments.
const EXIT_USAGE: i32 = 2;
/// Unknown design/benchmark/application name.
const EXIT_UNKNOWN_NAME: i32 = 3;
/// The simulation itself failed (watchdog stall, invalid config, ...).
const EXIT_SIM_FAILED: i32 = 4;
/// Cut short by SIGINT/SIGTERM after checkpointing; `tlpsim resume`
/// picks the work back up (128 + SIGINT, the shell convention).
const EXIT_INTERRUPTED: i32 = 130;

const HELP: &str = "\
tlpsim — multi-core SMT design-space simulator (ASPLOS 2014 reproduction)

USAGE:
  tlpsim list
      Print the known designs, SPEC-like benchmarks and PARSEC-like apps.

  tlpsim run <design> <threads> [--no-smt] [--bench <name>] [--bus16]
      Simulate a multi-program workload on <design> with <threads>
      threads. Default is the 12 heterogeneous mixes; --bench <name>
      runs <threads> copies of one benchmark instead. --bus16 doubles
      the memory bus to 16 GB/s (default 8 GB/s).

  tlpsim app <design> <app> <threads> [--no-smt]
      Run one PARSEC-like multi-threaded application.

  tlpsim trace [<design> [<threads>]] [--no-smt]
      Run one instrumented multi-program mix (default: 4B, 8 threads)
      with CPI-stack accounting and structural event tracing, print
      the per-context CPI stacks, and write a Chrome trace-event JSON
      (load it at chrome://tracing or https://ui.perfetto.dev). The
      output path and ring capacity come from TLPSIM_TRACE (default
      tlpsim-trace.json).

  tlpsim sweep <design> [--no-smt] [--bus16] [--journal <path>]
      Evaluate <design> at every thread count (1..24) over the 12
      heterogeneous mixes and print an STP/ANTT/power table. Every
      completed cell is durably journaled (default
      tlpsim-sweep.journal) before it counts, so a crash or Ctrl-C
      loses at most the in-flight cells; an existing journal at the
      path is overwritten.

  tlpsim resume [<journal>]
      Continue an interrupted sweep from its journal: replay the
      completed cells (repairing a torn tail from a crash mid-write),
      simulate only the missing ones, and print the same table a
      never-interrupted sweep would have printed.

  tlpsim help | --help | -h
      Show this message.

ENVIRONMENT:
  TLPSIM_CACHE   Path to the on-disk result cache. Unset: in-memory
                 only. A corrupt or torn cache file is detected
                 (checksummed records) and repaired in place; see
                 README 'Troubleshooting'.
  TLPSIM_TRACE   <path>[:<cap>] — where `tlpsim trace` writes the
                 Chrome trace JSON, and optionally the event-ring
                 capacity (default 65536 events; the ring keeps the
                 newest events once full).
  TLPSIM_THREADS Host worker threads for sweeps (default: all cores).
                 Must be a positive integer; anything else is a usage
                 error.
  TLPSIM_CKPT_CYCLES
                 Checkpoint cadence in simulated cycles for sweep
                 cells. When set, each in-flight cell saves its full
                 engine state that often (atomic, checksummed files
                 next to the journal) and an interrupted or killed
                 sweep resumes mid-cell, bit-identical to an
                 uninterrupted run. Unset: cells restart from scratch
                 on resume. Must be a positive integer.
  TLPSIM_WATCHDOG_CYCLES
                 Override the stall watchdog window (simulated cycles,
                 default 3000000). A run that commits nothing for this
                 long aborts with a diagnostic snapshot.

EXIT CODES:
  0    success
  2    usage error (bad flags, arguments or environment variables)
  3    unknown design, benchmark or application name
  4    simulation failed (stalled run, invalid configuration)
  130  interrupted by SIGINT/SIGTERM; journal/checkpoints are ready
       for `tlpsim resume`
";

fn usage() -> ! {
    eprintln!(
        "usage:\n  tlpsim list\n  tlpsim run <design> <threads> [--no-smt] [--bench <name>] [--bus16]\n  tlpsim app <design> <app> <threads> [--no-smt]\n  tlpsim trace [<design> [<threads>]] [--no-smt]\n  tlpsim sweep <design> [--no-smt] [--bus16] [--journal <path>]\n  tlpsim resume [<journal>]\n  tlpsim --help"
    );
    std::process::exit(EXIT_USAGE);
}

/// Validate the tuning environment variables up front (DESIGN.md §12):
/// a malformed `TLPSIM_THREADS`, `TLPSIM_CKPT_CYCLES` or `TLPSIM_TRACE`
/// cap is a usage error with a diagnostic naming the value — never a
/// panic, and never a silent fall-back that leaves a sweep running
/// with settings the user did not ask for.
fn validate_env() {
    if let Err(e) = executor::worker_count(1) {
        eprintln!("tlpsim: {e}");
        std::process::exit(EXIT_USAGE);
    }
    if let Err(e) = snapshot::interval_from_env() {
        eprintln!("tlpsim: {e}");
        std::process::exit(EXIT_USAGE);
    }
    if let Ok(v) = std::env::var("TLPSIM_TRACE") {
        if let Some((path, cap)) = v.rsplit_once(':') {
            // The library treats a non-numeric suffix as part of the
            // path (files may contain colons); but a suffix that *looks*
            // numeric and still fails to parse as a positive count is an
            // intended cap with a typo — reject it here at the CLI
            // boundary rather than silently tracing into a file named
            // "trace.json:0".
            let looks_numeric = !cap.is_empty()
                && cap
                    .chars()
                    .all(|c| c.is_ascii_digit() || c == '+' || c == '-');
            let valid = cap.parse::<usize>().map(|n| n > 0).unwrap_or(false);
            if looks_numeric && !valid && !path.is_empty() {
                eprintln!("tlpsim: TLPSIM_TRACE cap {cap:?} is not a positive event count");
                std::process::exit(EXIT_USAGE);
            }
        }
    }
}

/// Report a simulation failure and exit with the dedicated code.
fn sim_failed(what: &str, e: SimError) -> ! {
    eprintln!("tlpsim: {what} failed: {e}");
    std::process::exit(EXIT_SIM_FAILED);
}

/// Build a context at `scale`: in-memory, or disk-backed when
/// `TLPSIM_CACHE` is set; watchdog window from `TLPSIM_WATCHDOG_CYCLES`
/// if present.
fn make_ctx_at(scale: SimScale) -> Ctx {
    let ctx = match std::env::var("TLPSIM_CACHE") {
        Ok(path) if !path.is_empty() => Ctx::with_disk_cache(scale, path),
        _ => Ctx::new(scale),
    };
    match std::env::var("TLPSIM_WATCHDOG_CYCLES") {
        Ok(v) => match v.parse::<u64>() {
            Ok(cycles) if cycles > 0 => ctx.with_watchdog(cycles),
            _ => {
                eprintln!("tlpsim: ignoring invalid TLPSIM_WATCHDOG_CYCLES={v:?}");
                ctx
            }
        },
        Err(_) => ctx,
    }
}

/// Build the context at the CLI's default scale.
fn make_ctx() -> Ctx {
    make_ctx_at(SimScale::quick())
}

/// The directory a sweep keeps its in-cell checkpoints in, derived from
/// the journal path so sweep and resume agree without extra flags.
fn ckpt_dir_for(journal_path: &Path) -> PathBuf {
    let mut os = journal_path.as_os_str().to_os_string();
    os.push(".ckpt.d");
    PathBuf::from(os)
}

/// Drive a sweep to completion (fresh or resumed): simulate every
/// thread count not already in `done`, journaling each completed cell
/// before it counts, and print the result table. Never returns — the
/// exit code is the whole story (0, 4, or 130).
fn run_sweep(journal: Journal, done: BTreeMap<usize, Cell>, journal_path: &Path) -> ! {
    let spec = journal.spec().clone();
    let Some(design) = configs::by_name(&spec.design) else {
        // Only reachable on resume: create validated the name already.
        eprintln!("tlpsim: journal names unknown design {}", spec.design);
        std::process::exit(EXIT_UNKNOWN_NAME);
    };
    let bus_gbps = f64::from(spec.bus_dgbps) / 10.0;
    let remaining: Vec<usize> = SWEEP_COUNTS
        .iter()
        .copied()
        .filter(|n| !done.contains_key(n))
        .collect();
    eprintln!(
        "tlpsim: sweep {} (SMT={}, {bus_gbps} GB/s): {} cell(s) journaled, {} to simulate",
        spec.design,
        spec.smt,
        done.len(),
        remaining.len()
    );

    interrupt::install_handlers();
    let mut ctx = make_ctx_at(spec.scale);
    if let Ok(Some(every)) = snapshot::interval_from_env() {
        ctx = ctx.with_checkpoints(ckpt_dir_for(journal_path), every);
    }

    let results = executor::par_map_with(
        &remaining,
        |&n| {
            ctx.mp_cell_bus(&design, n, spec.kind, spec.smt, bus_gbps)
                .map(|c| (*c).clone())
        },
        |i, r| {
            // The write-ahead step: fsync'd into the journal the moment
            // the cell finishes, before anything else sees it.
            if let Ok(cell) = r {
                journal.record(remaining[i], cell);
            }
        },
    );

    let mut merged = done;
    let mut interrupted = false;
    let mut failed = 0usize;
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(cell) => {
                merged.insert(remaining[i], cell);
            }
            Err(SimError::Interrupted) => interrupted = true,
            Err(e) => {
                failed += 1;
                eprintln!("tlpsim: cell n={} failed: {e}", remaining[i]);
            }
        }
    }

    // The table is a pure function of the journaled cells, so a resumed
    // sweep prints byte-identically to a never-interrupted one.
    println!(
        "sweep {} heterogeneous SMT={} bus={bus_gbps} GB/s",
        spec.design, spec.smt
    );
    println!("{:>4} {:>10} {:>10} {:>10}", "n", "STP", "ANTT", "power_W");
    for (n, cell) in &merged {
        println!(
            "{n:>4} {:>10.4} {:>10.4} {:>10.2}",
            cell.mean_stp(),
            cell.mean_antt(),
            cell.mean_power()
        );
    }

    if interrupted {
        eprintln!(
            "tlpsim: interrupted; {} of {} cell(s) journaled. Continue with: tlpsim resume {}",
            merged.len(),
            SWEEP_COUNTS.len(),
            journal_path.display()
        );
        std::process::exit(EXIT_INTERRUPTED);
    }
    if failed > 0 {
        eprintln!("tlpsim: sweep finished with {failed} failed cell(s)");
        std::process::exit(EXIT_SIM_FAILED);
    }
    std::process::exit(0);
}

/// Restore default SIGPIPE behaviour so `tlpsim list | head` exits
/// quietly instead of panicking on a broken-pipe write (Rust sets the
/// signal to ignored before `main`).
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() {
    reset_sigpipe();
    validate_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("--help") | Some("-h") => {
            print!("{HELP}");
        }
        Some("list") => {
            println!("designs:");
            for d in configs::nine_designs()
                .iter()
                .chain(&configs::alt_designs())
            {
                println!(
                    "  {:>7}: {}B {}m {}s, {} contexts @ {} GHz",
                    d.name,
                    d.big,
                    d.medium,
                    d.small,
                    d.contexts(),
                    d.freq_ghz
                );
            }
            println!("benchmarks (SPEC-like):");
            for n in spec::names() {
                println!("  {n}");
            }
            println!("applications (PARSEC-like):");
            for a in parsec::all() {
                println!("  {}", a.name);
            }
        }
        Some("run") => {
            if args.len() < 3 {
                usage();
            }
            let design = configs::by_name(&args[1]).unwrap_or_else(|| {
                eprintln!("unknown design {}", args[1]);
                std::process::exit(EXIT_UNKNOWN_NAME)
            });
            let n: usize = args[2].parse().unwrap_or_else(|_| usage());
            let smt = !args.iter().any(|a| a == "--no-smt");
            let bus = if args.iter().any(|a| a == "--bus16") {
                16.0
            } else {
                8.0
            };
            let bench = args
                .iter()
                .position(|a| a == "--bench")
                .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()));

            let ctx = make_ctx();
            match bench {
                None => {
                    let cell = ctx
                        .mp_cell_bus(&design, n, WorkloadKind::Heterogeneous, smt, bus)
                        .unwrap_or_else(|e| sim_failed("run", e));
                    println!(
                        "{} @ {n} threads (SMT={smt}, {bus} GB/s), heterogeneous mixes:",
                        design.name
                    );
                    println!(
                        "  STP  = {:.3} (harmonic mean of 12 mixes)",
                        cell.mean_stp()
                    );
                    println!("  ANTT = {:.3}", cell.mean_antt());
                    println!("  power= {:.1} W (idle cores gated)", cell.mean_power());
                }
                Some(bname) => {
                    let Some(b) = spec::names().iter().position(|x| *x == bname) else {
                        eprintln!("unknown benchmark {bname}");
                        std::process::exit(EXIT_UNKNOWN_NAME)
                    };
                    let cell = ctx
                        .mp_cell_bus(&design, n, WorkloadKind::Homogeneous, smt, bus)
                        .unwrap_or_else(|e| sim_failed("run", e));
                    println!(
                        "{} @ {n} copies of {bname} (SMT={smt}, {bus} GB/s):\n  STP  = {:.3}\n  ANTT = {:.3}\n  power= {:.1} W",
                        design.name, cell.stp[b], cell.antt[b], cell.power_w[b]
                    );
                }
            }
        }
        Some("trace") => {
            let positional: Vec<&String> =
                args[1..].iter().filter(|a| !a.starts_with("--")).collect();
            let design = match positional.first() {
                Some(name) => configs::by_name(name).unwrap_or_else(|| {
                    eprintln!("unknown design {name}");
                    std::process::exit(EXIT_UNKNOWN_NAME)
                }),
                None => configs::by_name("4B").expect("4B is a known design"),
            };
            let n: usize = match positional.get(1) {
                Some(v) => v.parse().unwrap_or_else(|_| usage()),
                None => 8,
            };
            let smt = !args.iter().any(|a| a == "--no-smt");
            let cfg = TraceConfig::from_env().unwrap_or_else(|| TraceConfig {
                path: "tlpsim-trace.json".into(),
                cap: DEFAULT_RING_CAP,
            });

            let scale = SimScale::quick();
            let chip = design.chip(smt, 8.0);
            let profiles = spec::all();
            let mut sim = MultiCore::with_sink(&chip, Tracer::new(cfg.cap));
            let n_cores = chip.cores.len();
            for i in 0..n {
                let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                    InstrStream::new(&profiles[i % profiles.len()], i as u64, scale.seed),
                    scale.warmup,
                    scale.budget,
                ));
                let core = i % n_cores;
                let slot = (i / n_cores) % chip.cores[core].smt_contexts.max(1) as usize;
                sim.pin(t, core, slot);
            }
            sim.prewarm();
            let r = sim
                .run()
                .map_err(SimError::from)
                .unwrap_or_else(|e| sim_failed("trace", e));
            let tracer = sim.into_sink();

            println!(
                "{} @ {n} threads (SMT={smt}): {} cycles, CPI stacks per context:",
                design.name, r.cycles
            );
            for ((core, slot), comps) in tracer.stacks.iter() {
                let total: u64 = comps.iter().sum();
                let idle = comps[CpiComponent::Idle.index()];
                if total == idle {
                    continue; // never-populated context
                }
                print!("  core{core}.ctx{slot}:");
                for c in CpiComponent::ALL {
                    let pct = 100.0 * comps[c.index()] as f64 / total.max(1) as f64;
                    if pct >= 0.05 {
                        print!(" {}:{pct:.1}%", c.name());
                    }
                }
                println!();
            }
            println!(
                "events: {} recorded, {} dropped (ring capacity {})",
                tracer.ring.total_recorded(),
                tracer.ring.dropped(),
                tracer.ring.capacity()
            );
            if let Err(e) = write_chrome_trace(&cfg.path, &tracer.ring) {
                eprintln!("tlpsim: cannot write trace to {}: {e}", cfg.path);
                std::process::exit(EXIT_SIM_FAILED);
            }
            println!(
                "chrome trace written to {} (load at chrome://tracing or ui.perfetto.dev)",
                cfg.path
            );
        }
        Some("sweep") => {
            if args.len() < 2 || args[1].starts_with("--") {
                usage();
            }
            let design = configs::by_name(&args[1]).unwrap_or_else(|| {
                eprintln!("unknown design {}", args[1]);
                std::process::exit(EXIT_UNKNOWN_NAME)
            });
            let smt = !args.iter().any(|a| a == "--no-smt");
            let bus = if args.iter().any(|a| a == "--bus16") {
                16.0
            } else {
                8.0
            };
            let jpath = args
                .iter()
                .position(|a| a == "--journal")
                .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()))
                .unwrap_or_else(|| "tlpsim-sweep.journal".into());
            let spec = tlpsim::core::journal::SweepSpec {
                design: design.name.clone(),
                kind: WorkloadKind::Heterogeneous,
                smt,
                bus_dgbps: (bus * 10.0) as u32,
                scale: SimScale::quick(),
            };
            let journal = Journal::create(Path::new(&jpath), spec).unwrap_or_else(|e| {
                eprintln!("tlpsim: {e}");
                std::process::exit(EXIT_SIM_FAILED)
            });
            run_sweep(journal, BTreeMap::new(), Path::new(&jpath));
        }
        Some("resume") => {
            let jpath = match args.get(1) {
                Some(p) if !p.starts_with("--") => p.clone(),
                Some(_) => usage(),
                None => "tlpsim-sweep.journal".into(),
            };
            let (journal, _spec, done, report) =
                Journal::open(Path::new(&jpath)).unwrap_or_else(|e| {
                    eprintln!("tlpsim: cannot resume: {e}");
                    std::process::exit(EXIT_SIM_FAILED)
                });
            if report.rejected > 0 {
                eprintln!(
                    "tlpsim: journal {jpath}: rejected {} record(s) from a different sweep",
                    report.rejected
                );
            }
            if let Some(at) = report.truncated_at {
                eprintln!(
                    "tlpsim: journal {jpath}: torn tail truncated at byte {at} (crash mid-append); the lost cell will be re-simulated"
                );
            }
            run_sweep(journal, done, Path::new(&jpath));
        }
        Some("app") => {
            if args.len() < 4 {
                usage();
            }
            let design = configs::by_name(&args[1]).unwrap_or_else(|| {
                eprintln!("unknown design {}", args[1]);
                std::process::exit(EXIT_UNKNOWN_NAME)
            });
            let apps = parsec::all();
            let Some(a) = apps.iter().position(|x| x.name == args[2]) else {
                eprintln!("unknown app {}", args[2]);
                std::process::exit(EXIT_UNKNOWN_NAME)
            };
            let n: usize = args[3].parse().unwrap_or_else(|_| usage());
            let smt = !args.iter().any(|x| x == "--no-smt");
            let ctx = make_ctx();
            let r = ctx
                .parsec_run(&design, a, n, smt, 8.0)
                .unwrap_or_else(|e| sim_failed("app", e));
            println!(
                "{} x{n} on {} (SMT={smt}): ROI {} cycles, whole {} cycles",
                args[2], design.name, r.roi_cycles, r.total_cycles
            );
            let total: u64 = r.histogram.iter().sum();
            if total > 0 {
                let full: u64 = r.histogram.iter().skip(n).sum();
                println!(
                    "  fully-active fraction of ROI: {:.1}%",
                    100.0 * full as f64 / total as f64
                );
            }
        }
        _ => usage(),
    }
}
