//! `tlpsim` command-line interface.
//!
//! ```text
//! tlpsim list                          # benchmarks, apps and designs
//! tlpsim run 4B 8 --no-smt             # 8-thread mix on the 4B design
//! tlpsim run 2B10s 12 --bench mcf_like # homogeneous 12-copy workload
//! tlpsim app 4B blackscholes_like 8    # a multi-threaded app run
//! ```
//!
//! Exit codes (stable; scripts may rely on them):
//!
//! | code | meaning                                           |
//! |------|---------------------------------------------------|
//! | 0    | success                                           |
//! | 2    | usage error (bad flags/arguments)                 |
//! | 3    | unknown design, benchmark or application name     |
//! | 4    | simulation failed (stall, invalid configuration)  |

use tlpsim::core::configs;
use tlpsim::core::ctx::{Ctx, WorkloadKind};
use tlpsim::core::{SimError, SimScale};
use tlpsim::trace::{write_chrome_trace, CpiComponent, TraceConfig, Tracer, DEFAULT_RING_CAP};
use tlpsim::uarch::{MultiCore, ThreadProgram};
use tlpsim::workloads::{parsec, spec, InstrStream};

/// Usage error: bad syntax, missing arguments.
const EXIT_USAGE: i32 = 2;
/// Unknown design/benchmark/application name.
const EXIT_UNKNOWN_NAME: i32 = 3;
/// The simulation itself failed (watchdog stall, invalid config, ...).
const EXIT_SIM_FAILED: i32 = 4;

const HELP: &str = "\
tlpsim — multi-core SMT design-space simulator (ASPLOS 2014 reproduction)

USAGE:
  tlpsim list
      Print the known designs, SPEC-like benchmarks and PARSEC-like apps.

  tlpsim run <design> <threads> [--no-smt] [--bench <name>] [--bus16]
      Simulate a multi-program workload on <design> with <threads>
      threads. Default is the 12 heterogeneous mixes; --bench <name>
      runs <threads> copies of one benchmark instead. --bus16 doubles
      the memory bus to 16 GB/s (default 8 GB/s).

  tlpsim app <design> <app> <threads> [--no-smt]
      Run one PARSEC-like multi-threaded application.

  tlpsim trace [<design> [<threads>]] [--no-smt]
      Run one instrumented multi-program mix (default: 4B, 8 threads)
      with CPI-stack accounting and structural event tracing, print
      the per-context CPI stacks, and write a Chrome trace-event JSON
      (load it at chrome://tracing or https://ui.perfetto.dev). The
      output path and ring capacity come from TLPSIM_TRACE (default
      tlpsim-trace.json).

  tlpsim help | --help | -h
      Show this message.

ENVIRONMENT:
  TLPSIM_CACHE   Path to the on-disk result cache. Unset: in-memory
                 only. A corrupt or torn cache file is detected
                 (checksummed records) and repaired in place; see
                 README 'Troubleshooting'.
  TLPSIM_TRACE   <path>[:<cap>] — where `tlpsim trace` writes the
                 Chrome trace JSON, and optionally the event-ring
                 capacity (default 65536 events; the ring keeps the
                 newest events once full).
  TLPSIM_WATCHDOG_CYCLES
                 Override the stall watchdog window (simulated cycles,
                 default 3000000). A run that commits nothing for this
                 long aborts with a diagnostic snapshot.

EXIT CODES:
  0  success
  2  usage error
  3  unknown design, benchmark or application name
  4  simulation failed (stalled run, invalid configuration)
";

fn usage() -> ! {
    eprintln!(
        "usage:\n  tlpsim list\n  tlpsim run <design> <threads> [--no-smt] [--bench <name>] [--bus16]\n  tlpsim app <design> <app> <threads> [--no-smt]\n  tlpsim trace [<design> [<threads>]] [--no-smt]\n  tlpsim --help"
    );
    std::process::exit(EXIT_USAGE);
}

/// Report a simulation failure and exit with the dedicated code.
fn sim_failed(what: &str, e: SimError) -> ! {
    eprintln!("tlpsim: {what} failed: {e}");
    std::process::exit(EXIT_SIM_FAILED);
}

/// Build the context: in-memory, or disk-backed when `TLPSIM_CACHE` is
/// set; watchdog window from `TLPSIM_WATCHDOG_CYCLES` if present.
fn make_ctx() -> Ctx {
    let ctx = match std::env::var("TLPSIM_CACHE") {
        Ok(path) if !path.is_empty() => Ctx::with_disk_cache(SimScale::quick(), path),
        _ => Ctx::new(SimScale::quick()),
    };
    match std::env::var("TLPSIM_WATCHDOG_CYCLES") {
        Ok(v) => match v.parse::<u64>() {
            Ok(cycles) if cycles > 0 => ctx.with_watchdog(cycles),
            _ => {
                eprintln!("tlpsim: ignoring invalid TLPSIM_WATCHDOG_CYCLES={v:?}");
                ctx
            }
        },
        Err(_) => ctx,
    }
}

/// Restore default SIGPIPE behaviour so `tlpsim list | head` exits
/// quietly instead of panicking on a broken-pipe write (Rust sets the
/// signal to ignored before `main`).
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("--help") | Some("-h") => {
            print!("{HELP}");
        }
        Some("list") => {
            println!("designs:");
            for d in configs::nine_designs()
                .iter()
                .chain(&configs::alt_designs())
            {
                println!(
                    "  {:>7}: {}B {}m {}s, {} contexts @ {} GHz",
                    d.name,
                    d.big,
                    d.medium,
                    d.small,
                    d.contexts(),
                    d.freq_ghz
                );
            }
            println!("benchmarks (SPEC-like):");
            for n in spec::names() {
                println!("  {n}");
            }
            println!("applications (PARSEC-like):");
            for a in parsec::all() {
                println!("  {}", a.name);
            }
        }
        Some("run") => {
            if args.len() < 3 {
                usage();
            }
            let design = configs::by_name(&args[1]).unwrap_or_else(|| {
                eprintln!("unknown design {}", args[1]);
                std::process::exit(EXIT_UNKNOWN_NAME)
            });
            let n: usize = args[2].parse().unwrap_or_else(|_| usage());
            let smt = !args.iter().any(|a| a == "--no-smt");
            let bus = if args.iter().any(|a| a == "--bus16") {
                16.0
            } else {
                8.0
            };
            let bench = args
                .iter()
                .position(|a| a == "--bench")
                .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()));

            let ctx = make_ctx();
            match bench {
                None => {
                    let cell = ctx
                        .mp_cell_bus(&design, n, WorkloadKind::Heterogeneous, smt, bus)
                        .unwrap_or_else(|e| sim_failed("run", e));
                    println!(
                        "{} @ {n} threads (SMT={smt}, {bus} GB/s), heterogeneous mixes:",
                        design.name
                    );
                    println!(
                        "  STP  = {:.3} (harmonic mean of 12 mixes)",
                        cell.mean_stp()
                    );
                    println!("  ANTT = {:.3}", cell.mean_antt());
                    println!("  power= {:.1} W (idle cores gated)", cell.mean_power());
                }
                Some(bname) => {
                    let Some(b) = spec::names().iter().position(|x| *x == bname) else {
                        eprintln!("unknown benchmark {bname}");
                        std::process::exit(EXIT_UNKNOWN_NAME)
                    };
                    let cell = ctx
                        .mp_cell_bus(&design, n, WorkloadKind::Homogeneous, smt, bus)
                        .unwrap_or_else(|e| sim_failed("run", e));
                    println!(
                        "{} @ {n} copies of {bname} (SMT={smt}, {bus} GB/s):\n  STP  = {:.3}\n  ANTT = {:.3}\n  power= {:.1} W",
                        design.name, cell.stp[b], cell.antt[b], cell.power_w[b]
                    );
                }
            }
        }
        Some("trace") => {
            let positional: Vec<&String> =
                args[1..].iter().filter(|a| !a.starts_with("--")).collect();
            let design = match positional.first() {
                Some(name) => configs::by_name(name).unwrap_or_else(|| {
                    eprintln!("unknown design {name}");
                    std::process::exit(EXIT_UNKNOWN_NAME)
                }),
                None => configs::by_name("4B").expect("4B is a known design"),
            };
            let n: usize = match positional.get(1) {
                Some(v) => v.parse().unwrap_or_else(|_| usage()),
                None => 8,
            };
            let smt = !args.iter().any(|a| a == "--no-smt");
            let cfg = TraceConfig::from_env().unwrap_or_else(|| TraceConfig {
                path: "tlpsim-trace.json".into(),
                cap: DEFAULT_RING_CAP,
            });

            let scale = SimScale::quick();
            let chip = design.chip(smt, 8.0);
            let profiles = spec::all();
            let mut sim = MultiCore::with_sink(&chip, Tracer::new(cfg.cap));
            let n_cores = chip.cores.len();
            for i in 0..n {
                let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                    InstrStream::new(&profiles[i % profiles.len()], i as u64, scale.seed),
                    scale.warmup,
                    scale.budget,
                ));
                let core = i % n_cores;
                let slot = (i / n_cores) % chip.cores[core].smt_contexts.max(1) as usize;
                sim.pin(t, core, slot);
            }
            sim.prewarm();
            let r = sim
                .run()
                .map_err(SimError::from)
                .unwrap_or_else(|e| sim_failed("trace", e));
            let tracer = sim.into_sink();

            println!(
                "{} @ {n} threads (SMT={smt}): {} cycles, CPI stacks per context:",
                design.name, r.cycles
            );
            for ((core, slot), comps) in tracer.stacks.iter() {
                let total: u64 = comps.iter().sum();
                let idle = comps[CpiComponent::Idle.index()];
                if total == idle {
                    continue; // never-populated context
                }
                print!("  core{core}.ctx{slot}:");
                for c in CpiComponent::ALL {
                    let pct = 100.0 * comps[c.index()] as f64 / total.max(1) as f64;
                    if pct >= 0.05 {
                        print!(" {}:{pct:.1}%", c.name());
                    }
                }
                println!();
            }
            println!(
                "events: {} recorded, {} dropped (ring capacity {})",
                tracer.ring.total_recorded(),
                tracer.ring.dropped(),
                tracer.ring.capacity()
            );
            if let Err(e) = write_chrome_trace(&cfg.path, &tracer.ring) {
                eprintln!("tlpsim: cannot write trace to {}: {e}", cfg.path);
                std::process::exit(EXIT_SIM_FAILED);
            }
            println!(
                "chrome trace written to {} (load at chrome://tracing or ui.perfetto.dev)",
                cfg.path
            );
        }
        Some("app") => {
            if args.len() < 4 {
                usage();
            }
            let design = configs::by_name(&args[1]).unwrap_or_else(|| {
                eprintln!("unknown design {}", args[1]);
                std::process::exit(EXIT_UNKNOWN_NAME)
            });
            let apps = parsec::all();
            let Some(a) = apps.iter().position(|x| x.name == args[2]) else {
                eprintln!("unknown app {}", args[2]);
                std::process::exit(EXIT_UNKNOWN_NAME)
            };
            let n: usize = args[3].parse().unwrap_or_else(|_| usage());
            let smt = !args.iter().any(|x| x == "--no-smt");
            let ctx = make_ctx();
            let r = ctx
                .parsec_run(&design, a, n, smt, 8.0)
                .unwrap_or_else(|e| sim_failed("app", e));
            println!(
                "{} x{n} on {} (SMT={smt}): ROI {} cycles, whole {} cycles",
                args[2], design.name, r.roi_cycles, r.total_cycles
            );
            let total: u64 = r.histogram.iter().sum();
            if total > 0 {
                let full: u64 = r.histogram.iter().skip(n).sum();
                println!(
                    "  fully-active fraction of ROI: {:.1}%",
                    100.0 * full as f64 / total as f64
                );
            }
        }
        _ => usage(),
    }
}
