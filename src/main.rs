//! `tlpsim` command-line interface.
//!
//! ```text
//! tlpsim list                          # benchmarks, apps and designs
//! tlpsim run 4B 8 --no-smt             # 8-thread mix on the 4B design
//! tlpsim run 2B10s 12 --bench mcf_like # homogeneous 12-copy workload
//! tlpsim app 4B blackscholes_like 8    # a multi-threaded app run
//! ```

use tlpsim::core::configs;
use tlpsim::core::ctx::{Ctx, WorkloadKind};
use tlpsim::core::SimScale;
use tlpsim::workloads::{parsec, spec};

fn usage() -> ! {
    eprintln!(
        "usage:\n  tlpsim list\n  tlpsim run <design> <threads> [--no-smt] [--bench <name>] [--bus16]\n  tlpsim app <design> <app> <threads> [--no-smt]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("designs:");
            for d in configs::nine_designs()
                .iter()
                .chain(&configs::alt_designs())
            {
                println!(
                    "  {:>7}: {}B {}m {}s, {} contexts @ {} GHz",
                    d.name,
                    d.big,
                    d.medium,
                    d.small,
                    d.contexts(),
                    d.freq_ghz
                );
            }
            println!("benchmarks (SPEC-like):");
            for n in spec::names() {
                println!("  {n}");
            }
            println!("applications (PARSEC-like):");
            for a in parsec::all() {
                println!("  {}", a.name);
            }
        }
        Some("run") => {
            if args.len() < 3 {
                usage();
            }
            let design = configs::by_name(&args[1]).unwrap_or_else(|| {
                eprintln!("unknown design {}", args[1]);
                std::process::exit(2)
            });
            let n: usize = args[2].parse().unwrap_or_else(|_| usage());
            let smt = !args.iter().any(|a| a == "--no-smt");
            let bus = if args.iter().any(|a| a == "--bus16") {
                16.0
            } else {
                8.0
            };
            let bench = args
                .iter()
                .position(|a| a == "--bench")
                .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()));

            let ctx = Ctx::new(SimScale::quick());
            match bench {
                None => {
                    let cell = ctx.mp_cell_bus(&design, n, WorkloadKind::Heterogeneous, smt, bus);
                    println!(
                        "{} @ {n} threads (SMT={smt}, {bus} GB/s), heterogeneous mixes:",
                        design.name
                    );
                    println!(
                        "  STP  = {:.3} (harmonic mean of 12 mixes)",
                        cell.mean_stp()
                    );
                    println!("  ANTT = {:.3}", cell.mean_antt());
                    println!("  power= {:.1} W (idle cores gated)", cell.mean_power());
                }
                Some(bname) => {
                    let Some(b) = spec::names().iter().position(|x| *x == bname) else {
                        eprintln!("unknown benchmark {bname}");
                        std::process::exit(2)
                    };
                    let cell = ctx.mp_cell_bus(&design, n, WorkloadKind::Homogeneous, smt, bus);
                    println!(
                        "{} @ {n} copies of {bname} (SMT={smt}):\n  STP  = {:.3}\n  ANTT = {:.3}\n  power= {:.1} W",
                        design.name, cell.stp[b], cell.antt[b], cell.power_w[b]
                    );
                }
            }
        }
        Some("app") => {
            if args.len() < 4 {
                usage();
            }
            let design = configs::by_name(&args[1]).unwrap_or_else(|| usage());
            let apps = parsec::all();
            let Some(a) = apps.iter().position(|x| x.name == args[2]) else {
                eprintln!("unknown app {}", args[2]);
                std::process::exit(2)
            };
            let n: usize = args[3].parse().unwrap_or_else(|_| usage());
            let smt = !args.iter().any(|x| x == "--no-smt");
            let ctx = Ctx::new(SimScale::quick());
            let r = ctx.parsec_run(&design, a, n, smt, 8.0);
            println!(
                "{} x{n} on {} (SMT={smt}): ROI {} cycles, whole {} cycles",
                args[2], design.name, r.roi_cycles, r.total_cycles
            );
            let total: u64 = r.histogram.iter().sum();
            if total > 0 {
                let full: u64 = r.histogram.iter().skip(n).sum();
                println!(
                    "  fully-active fraction of ROI: {:.1}%",
                    100.0 * full as f64 / total as f64
                );
            }
        }
        _ => usage(),
    }
}
