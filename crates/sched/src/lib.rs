//! # tlpsim-sched — thread-to-core scheduling policies
//!
//! Implements the scheduling principles of Section 3.2:
//!
//! * **big cores first**: in a heterogeneous design, threads are
//!   scheduled on the big core(s) before any smaller core;
//! * **spread before SMT**: threads get a core to themselves while
//!   cores remain; SMT contexts are engaged only when the active thread
//!   count exceeds the core count;
//! * **offline-analysis-guided mapping**: the paper runs every
//!   benchmark in isolation on each core type and every small co-run
//!   combination to pick the best schedule offline. This crate provides
//!   the same decision through a *symbiosis heuristic* — threads with
//!   the largest big-core benefit get the big cores, and SMT co-runner
//!   groups are balanced so memory-intensive programs are paired with
//!   compute-intensive ones (which is the pairing the exhaustive search
//!   selects; see [`exhaustive_coschedule`] for the search itself, used
//!   in tests and available for small instances);
//! * **time-sharing**: without SMT, surplus threads round-robin on a
//!   single context per core.
//!
//! The output of [`assign_threads`] is a list of `(core, slot)`
//! placements directly consumable by `tlpsim_uarch::MultiCore::pin`.

use tlpsim_uarch::{ChipConfig, CoreClass};

/// A hardware placement for one software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Core index within the chip.
    pub core: usize,
    /// SMT context slot on that core (several threads may share a slot;
    /// the engine time-shares them).
    pub slot: usize,
}

/// Per-thread scheduling inputs, produced by offline isolated profiling
/// (the paper's offline analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadTraits {
    /// Performance ratio big core / small core in isolation. Threads
    /// with high benefit deserve the big cores.
    pub big_core_benefit: f64,
    /// Off-core traffic tendency in [0, 1]; used to balance SMT
    /// co-runner groups (symbiosis).
    pub memory_intensity: f64,
}

impl Default for ThreadTraits {
    fn default() -> Self {
        ThreadTraits {
            big_core_benefit: 1.0,
            memory_intensity: 0.5,
        }
    }
}

/// Rank of a core for the "big cores first" rule: higher = bigger.
fn core_rank(chip: &ChipConfig, core: usize) -> (u8, u8, u16) {
    let c = &chip.cores[core];
    let class = match c.class {
        CoreClass::OutOfOrder => 1,
        CoreClass::InOrder => 0,
    };
    (class, c.width, c.rob_size)
}

/// Core indices sorted biggest-first (stable for equal ranks).
pub fn cores_biggest_first(chip: &ChipConfig) -> Vec<usize> {
    let mut order: Vec<usize> = (0..chip.cores.len()).collect();
    order.sort_by(|&a, &b| core_rank(chip, b).cmp(&core_rank(chip, a)).then(a.cmp(&b)));
    order
}

/// Assign `traits.len()` threads to hardware contexts of `chip`.
///
/// Returns one [`Placement`] per thread (same order as `traits`).
///
/// * With `smt` **enabled**, threads spread across cores (biggest
///   first) before engaging additional SMT contexts; co-runner groups
///   are intensity-balanced (symbiosis). If the thread count exceeds
///   the chip's total contexts, surplus threads time-share contexts.
/// * With `smt` **disabled**, each core exposes one context; surplus
///   threads time-share, biggest cores first.
///
/// # Panics
/// Panics if `traits` is empty.
pub fn assign_threads(chip: &ChipConfig, traits: &[ThreadTraits], smt: bool) -> Vec<Placement> {
    assert!(!traits.is_empty(), "no threads to schedule");
    let order = cores_biggest_first(chip);
    let n = traits.len();

    // Thread ids sorted by big-core benefit, highest first.
    let mut by_benefit: Vec<usize> = (0..n).collect();
    by_benefit.sort_by(|&a, &b| {
        traits[b]
            .big_core_benefit
            .partial_cmp(&traits[a].big_core_benefit)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let slots_per_core: Vec<usize> = order
        .iter()
        .map(|&c| {
            if smt {
                chip.cores[c].smt_contexts as usize
            } else {
                1
            }
        })
        .collect();

    let mut placements = vec![Placement { core: 0, slot: 0 }; n];
    let mut assigned = 0usize;

    // Round 0: dedicated cores, biggest first, best threads first.
    let mut core_load: Vec<usize> = vec![0; order.len()]; // threads per core
    let mut core_intensity: Vec<f64> = vec![0.0; order.len()];
    for (pos, &c) in order.iter().enumerate() {
        if assigned == n {
            break;
        }
        let t = by_benefit[assigned];
        placements[t] = Placement { core: c, slot: 0 };
        core_load[pos] = 1;
        core_intensity[pos] = traits[t].memory_intensity;
        assigned += 1;
    }

    // Subsequent threads: symbiosis-balanced SMT filling. Prefer the
    // biggest core with free contexts and the lowest accumulated memory
    // intensity; ties biggest-first.
    let mut rest: Vec<usize> = by_benefit[assigned..].to_vec();
    // Most memory-intensive first, so they land next to compute threads.
    rest.sort_by(|&a, &b| {
        traits[b]
            .memory_intensity
            .partial_cmp(&traits[a].memory_intensity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for t in rest {
        // Candidate = core with a free hardware context; among those,
        // minimize (intensity, then prefer bigger = earlier in order).
        let cand = (0..order.len())
            .filter(|&p| core_load[p] < slots_per_core[p])
            .min_by(|&a, &b| {
                core_intensity[a]
                    .partial_cmp(&core_intensity[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        let pos = match cand {
            Some(p) => p,
            // All contexts taken: time-share the least-loaded context,
            // biggest core first.
            None => (0..order.len())
                .min_by(|&a, &b| core_load[a].cmp(&core_load[b]).then(a.cmp(&b)))
                .expect("chip has cores"),
        };
        // Surplus threads beyond the context count wrap around and
        // time-share the slots round-robin.
        let slot = core_load[pos] % slots_per_core[pos];
        placements[t] = Placement {
            core: order[pos],
            slot,
        };
        core_load[pos] += 1;
        core_intensity[pos] += traits[t].memory_intensity;
    }
    placements
}

/// Exhaustively search co-schedules of `traits` over the cores of
/// `chip` (SMT enabled), minimizing the variance of per-core memory
/// intensity — the objective whose optimum the paper's offline search
/// converges to for SMT co-scheduling. Exponential; intended for small
/// instances and for validating [`assign_threads`] in tests.
///
/// Returns `(best_placements, best_score)`.
///
/// # Panics
/// Panics if there are more threads than hardware contexts, or more
/// than 12 threads (search-space guard).
pub fn exhaustive_coschedule(chip: &ChipConfig, traits: &[ThreadTraits]) -> (Vec<Placement>, f64) {
    let n = traits.len();
    let total: usize = chip.cores.iter().map(|c| c.smt_contexts as usize).sum();
    assert!(n <= total, "more threads than contexts");
    assert!(n <= 12, "exhaustive search capped at 12 threads");

    let caps: Vec<usize> = chip.cores.iter().map(|c| c.smt_contexts as usize).collect();
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut cur = vec![0usize; n];

    fn score(assign: &[usize], traits: &[ThreadTraits], ncores: usize) -> f64 {
        let mut sums = vec![0.0f64; ncores];
        let mut counts = vec![0usize; ncores];
        for (t, &c) in assign.iter().enumerate() {
            sums[c] += traits[t].memory_intensity;
            counts[c] += 1;
        }
        let used: Vec<f64> = (0..ncores)
            .filter(|&c| counts[c] > 0)
            .map(|c| sums[c])
            .collect();
        if used.is_empty() {
            return 0.0;
        }
        let mean = used.iter().sum::<f64>() / used.len() as f64;
        used.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / used.len() as f64
    }

    fn rec(
        i: usize,
        n: usize,
        caps: &[usize],
        used: &mut Vec<usize>,
        cur: &mut Vec<usize>,
        traits: &[ThreadTraits],
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if i == n {
            let s = score(cur, traits, caps.len());
            if best.as_ref().map(|(_, b)| s < *b).unwrap_or(true) {
                *best = Some((cur.clone(), s));
            }
            return;
        }
        for c in 0..caps.len() {
            if used[c] < caps[c] {
                used[c] += 1;
                cur[i] = c;
                rec(i + 1, n, caps, used, cur, traits, best);
                used[c] -= 1;
            }
        }
    }

    let mut used = vec![0usize; caps.len()];
    rec(0, n, &caps, &mut used, &mut cur, traits, &mut best);
    let (assign, s) = best.expect("at least one assignment exists");

    // Convert core choices to concrete slots.
    let mut next_slot = vec![0usize; caps.len()];
    let placements = assign
        .iter()
        .map(|&c| {
            let p = Placement {
                core: c,
                slot: next_slot[c],
            };
            next_slot[c] += 1;
            p
        })
        .collect();
    (placements, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlpsim_uarch::{ChipConfig, CoreConfig};

    fn het_chip() -> ChipConfig {
        // 1 big + 2 medium + 2 small
        ChipConfig::heterogeneous(
            &[
                CoreConfig::small(),
                CoreConfig::big(),
                CoreConfig::medium(),
                CoreConfig::small(),
                CoreConfig::medium(),
            ],
            2.66,
        )
    }

    fn traits(v: &[(f64, f64)]) -> Vec<ThreadTraits> {
        v.iter()
            .map(|&(b, m)| ThreadTraits {
                big_core_benefit: b,
                memory_intensity: m,
            })
            .collect()
    }

    #[test]
    fn big_cores_first_ordering() {
        let chip = het_chip();
        let order = cores_biggest_first(&chip);
        assert_eq!(order[0], 1); // the big core
        assert_eq!(&order[1..3], &[2, 4]); // the mediums
        assert_eq!(&order[3..], &[0, 3]); // the smalls
    }

    #[test]
    fn single_thread_lands_on_big_core() {
        let chip = het_chip();
        let p = assign_threads(&chip, &traits(&[(2.0, 0.3)]), true);
        assert_eq!(p[0], Placement { core: 1, slot: 0 });
    }

    #[test]
    fn highest_benefit_thread_gets_the_big_core() {
        let chip = het_chip();
        let p = assign_threads(&chip, &traits(&[(1.1, 0.5), (3.0, 0.1), (1.5, 0.9)]), true);
        assert_eq!(p[1].core, 1, "benefit 3.0 thread must get the big core");
        // Others go to the medium cores before any small core.
        assert!([2, 4].contains(&p[0].core));
        assert!([2, 4].contains(&p[2].core));
    }

    #[test]
    fn spread_before_smt() {
        let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
        let tr = traits(&[(1.0, 0.5); 4]);
        let p = assign_threads(&chip, &tr, true);
        let mut cores: Vec<usize> = p.iter().map(|x| x.core).collect();
        cores.sort_unstable();
        assert_eq!(cores, vec![0, 1, 2, 3], "4 threads on 4 distinct cores");
        assert!(p.iter().all(|x| x.slot == 0));
    }

    #[test]
    fn smt_engaged_beyond_core_count() {
        let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
        let tr = traits(&[(1.0, 0.5); 6]);
        let p = assign_threads(&chip, &tr, true);
        let mut per_core = [0usize; 4];
        for x in &p {
            per_core[x.core] += 1;
        }
        assert_eq!(per_core.iter().sum::<usize>(), 6);
        assert!(
            per_core.iter().all(|&c| c <= 2),
            "max 2 per core for 6 threads"
        );
        // No slot collisions.
        let mut pairs: Vec<(usize, usize)> = p.iter().map(|x| (x.core, x.slot)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn symbiosis_pairs_memory_with_compute() {
        let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
        // Two memory hogs, two compute threads.
        let tr = traits(&[(1.0, 0.9), (1.0, 0.9), (1.0, 0.05), (1.0, 0.05)]);
        let p = assign_threads(&chip, &tr, true);
        // The two memory hogs must not share a core.
        assert_ne!(p[0].core, p[1].core, "memory hogs must be split");
        assert_ne!(p[2].core, p[3].core, "compute threads must be split");
    }

    #[test]
    fn no_smt_time_shares_beyond_core_count() {
        let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
        let tr = traits(&[(1.0, 0.5); 5]);
        let p = assign_threads(&chip, &tr, false);
        assert!(p.iter().all(|x| x.slot == 0), "no SMT slots without SMT");
        let mut per_core = [0usize; 2];
        for x in &p {
            per_core[x.core] += 1;
        }
        per_core.sort_unstable();
        assert_eq!(per_core, [2, 3], "balanced time-sharing");
    }

    #[test]
    fn overload_with_smt_time_shares() {
        let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
        let tr = traits(&[(1.0, 0.5); 8]); // 8 threads, 6 contexts
        let p = assign_threads(&chip, &tr, true);
        let mut slot_counts = std::collections::HashMap::new();
        for x in &p {
            *slot_counts.entry((x.core, x.slot)).or_insert(0usize) += 1;
        }
        assert_eq!(slot_counts.values().sum::<usize>(), 8);
        assert!(slot_counts.values().all(|&c| c <= 2));
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instance() {
        let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
        let tr = traits(&[(1.0, 0.8), (1.0, 0.7), (1.0, 0.1), (1.0, 0.2)]);
        let (best, best_score) = exhaustive_coschedule(&chip, &tr);
        // Greedy assignment must reach the same intensity balance.
        let greedy = assign_threads(&chip, &tr, true);
        let sum_for = |p: &[Placement], core: usize| -> f64 {
            p.iter()
                .zip(&tr)
                .filter(|(x, _)| x.core == core)
                .map(|(_, t)| t.memory_intensity)
                .sum()
        };
        let g = (sum_for(&greedy, 0) - sum_for(&greedy, 1)).abs();
        let b = (sum_for(&best, 0) - sum_for(&best, 1)).abs();
        assert!(g <= b + 1e-9, "greedy imbalance {g} vs exhaustive {b}");
        assert!(best_score >= 0.0);
    }

    #[test]
    #[should_panic(expected = "no threads")]
    fn empty_traits_panic() {
        assign_threads(
            &ChipConfig::homogeneous(1, CoreConfig::big(), 2.66),
            &[],
            true,
        );
    }
}
