//! Chrome trace-event JSON exporter.
//!
//! Emits the `{"traceEvents": [...]}` object format with `ph: "X"`
//! (complete) events, loadable in `chrome://tracing` and Perfetto.
//! Timestamps are in microseconds in the format; we map one core
//! cycle to one microsecond, so the viewer's time axis reads directly
//! in cycles. Lanes: `pid` is the core, `tid` distinguishes hardware
//! thread slots (pipeline events) from memory-system lanes (fills,
//! bus, DRAM banks).

use crate::{EventRing, TraceEvent};

/// tid lanes for memory-system events, offset past any realistic SMT
/// slot count so they never collide with pipeline lanes.
const TID_FILL_BASE: usize = 90; // + level (2..=4)
const TID_BUS: usize = 96;
const TID_DRAM_BASE: usize = 100; // + bank

fn level_name(level: u8) -> &'static str {
    match level {
        2 => "fill:L2",
        3 => "fill:LLC",
        4 => "fill:DRAM",
        _ => "fill:?",
    }
}

#[allow(clippy::too_many_arguments)]
fn push_complete(
    out: &mut String,
    first: &mut bool,
    name: &str,
    pid: usize,
    tid: usize,
    ts: u64,
    dur: u64,
    args: Option<(&str, u64)>,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    // Complete events with dur 0 render invisibly; clamp to 1 cycle.
    let dur = dur.max(1);
    out.push_str(&format!(
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid}"
    ));
    if let Some((k, v)) = args {
        out.push_str(&format!(",\"args\":{{\"{k}\":{v}}}"));
    }
    out.push('}');
}

/// Render the ring as a Chrome trace-event JSON string.
pub fn chrome_trace_json(ring: &EventRing) -> String {
    let mut out = String::with_capacity(ring.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for ev in ring.iter() {
        match *ev {
            TraceEvent::Fetch {
                core,
                slot,
                at,
                count,
            } => push_complete(
                &mut out,
                &mut first,
                "fetch",
                core,
                slot,
                at,
                1,
                Some(("count", count as u64)),
            ),
            TraceEvent::Issue {
                core,
                slot,
                at,
                count,
            } => push_complete(
                &mut out,
                &mut first,
                "issue",
                core,
                slot,
                at,
                1,
                Some(("count", count as u64)),
            ),
            TraceEvent::Commit {
                core,
                slot,
                at,
                count,
            } => push_complete(
                &mut out,
                &mut first,
                "commit",
                core,
                slot,
                at,
                1,
                Some(("count", count as u64)),
            ),
            TraceEvent::Fill {
                core,
                level,
                start,
                end,
            } => push_complete(
                &mut out,
                &mut first,
                level_name(level),
                core,
                TID_FILL_BASE + level as usize,
                start,
                end.saturating_sub(start),
                None,
            ),
            TraceEvent::Bus { core, start, end } => push_complete(
                &mut out,
                &mut first,
                "bus",
                core,
                TID_BUS,
                start,
                end.saturating_sub(start),
                None,
            ),
            TraceEvent::DramBank {
                core,
                bank,
                start,
                end,
            } => push_complete(
                &mut out,
                &mut first,
                "dram",
                core,
                TID_DRAM_BASE + bank as usize,
                start,
                end.saturating_sub(start),
                Some(("bank", bank as u64)),
            ),
        }
    }
    out.push_str(&format!(
        "],\"otherData\":{{\"dropped_events\":{},\"total_events\":{}}}}}",
        ring.dropped(),
        ring.total_recorded()
    ));
    out
}

/// Write the ring to `path` as Chrome trace-event JSON.
pub fn write_chrome_trace(path: &str, ring: &EventRing) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(ring))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ring() -> EventRing {
        let mut r = EventRing::new(16);
        r.push(TraceEvent::Commit {
            core: 0,
            slot: 1,
            at: 5,
            count: 4,
        });
        r.push(TraceEvent::Fill {
            core: 0,
            level: 4,
            start: 10,
            end: 200,
        });
        r.push(TraceEvent::Bus {
            core: 0,
            start: 150,
            end: 171,
        });
        r.push(TraceEvent::DramBank {
            core: 0,
            bank: 3,
            start: 30,
            end: 150,
        });
        r
    }

    #[test]
    fn emits_object_format_with_complete_events() {
        let json = chrome_trace_json(&sample_ring());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert!(json.contains("\"name\":\"commit\""));
        assert!(json.contains("\"name\":\"fill:DRAM\""));
        assert!(json.contains("\"dur\":190"));
        assert!(json.contains("\"args\":{\"bank\":3}"));
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        // No serde in the workspace: check brace/bracket balance and
        // that no NaN/unescaped control characters slip in.
        let json = chrome_trace_json(&sample_ring());
        let (mut braces, mut brackets) = (0i64, 0i64);
        for c in json.chars() {
            assert!(!c.is_control(), "control char in JSON output");
            match c {
                '{' => braces += 1,
                '}' => braces -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
            assert!(braces >= 0 && brackets >= 0);
        }
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
    }

    #[test]
    fn empty_ring_is_valid() {
        let r = EventRing::new(4);
        let json = chrome_trace_json(&r);
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn zero_duration_is_clamped_visible() {
        let mut r = EventRing::new(2);
        r.push(TraceEvent::Bus {
            core: 0,
            start: 7,
            end: 7,
        });
        let json = chrome_trace_json(&r);
        assert!(json.contains("\"dur\":1"));
    }
}
