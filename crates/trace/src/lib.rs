//! Observability layer for the tlpsim simulator (DESIGN.md §11).
//!
//! Three coupled facilities, all zero-overhead when disabled:
//!
//! * **CPI-stack cycle accounting** ([`CpiStacks`], [`CpiComponent`]):
//!   every non-commit cycle of each hardware thread is attributed to
//!   exactly one component, with the identity
//!   `sum(components) == measured cycles` enforced by the
//!   `cpi_accounting` integration suite.
//! * **Structural event tracing** ([`EventRing`], [`TraceEvent`]): a
//!   bounded overwrite-oldest ring of pipeline and memory-system
//!   events, exported as Chrome trace-event JSON
//!   ([`write_chrome_trace`]) loadable in `chrome://tracing` /
//!   Perfetto. Activated via `TLPSIM_TRACE=<path>[:<cap>]`
//!   ([`TraceConfig::from_env`]).
//! * **A unified counter registry** ([`CounterSnapshot`]): one
//!   string-keyed snapshot type that every stats struct exports into,
//!   so benches and the disk cache aggregate one shape instead of
//!   walking bespoke structs.
//!
//! The crate has zero dependencies and sits below `tlpsim-mem` and
//! `tlpsim-uarch` in the workspace graph. The simulator threads a
//! generic [`TraceSink`] parameter through its hot loops; the default
//! [`NopSink`] has `ENABLED == false` and empty inlined methods, so
//! every hook site guarded by `if S::ENABLED` is dead-code-eliminated
//! and the disabled path is bit- and speed-identical to an
//! uninstrumented build (verified by the golden-digest suite and the
//! `trace_overhead` bench guard).

mod chrome;
mod cpi;
mod event;
mod registry;
mod sink;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use cpi::{CpiComponent, CpiStacks, StackKey, N_COMPONENTS};
pub use event::{EventRing, TraceEvent, DEFAULT_RING_CAP};
pub use registry::{CounterSnapshot, CounterValue};
pub use sink::{NopSink, TraceSink, Tracer};

/// Parsed `TLPSIM_TRACE=<path>[:<cap>]` activation surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output path for the Chrome trace-event JSON.
    pub path: String,
    /// Ring capacity in events.
    pub cap: usize,
}

impl TraceConfig {
    /// Parse a `TLPSIM_TRACE` value: a path, optionally suffixed with
    /// `:<cap>` where `<cap>` is a positive event-count capacity. The
    /// split is on the *last* colon, and only when the suffix parses
    /// as a positive integer — so plain paths containing colons keep
    /// working.
    pub fn parse(value: &str) -> Option<TraceConfig> {
        let value = value.trim();
        if value.is_empty() {
            return None;
        }
        if let Some((path, cap)) = value.rsplit_once(':') {
            if let Ok(cap) = cap.trim().parse::<usize>() {
                if cap > 0 && !path.trim().is_empty() {
                    return Some(TraceConfig {
                        path: path.trim().to_string(),
                        cap,
                    });
                }
            }
        }
        Some(TraceConfig {
            path: value.to_string(),
            cap: DEFAULT_RING_CAP,
        })
    }

    /// Read the activation surface from the `TLPSIM_TRACE` environment
    /// variable. `None` means tracing stays disabled.
    pub fn from_env() -> Option<TraceConfig> {
        std::env::var("TLPSIM_TRACE")
            .ok()
            .as_deref()
            .and_then(Self::parse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_path() {
        let c = TraceConfig::parse("trace.json").unwrap();
        assert_eq!(c.path, "trace.json");
        assert_eq!(c.cap, DEFAULT_RING_CAP);
    }

    #[test]
    fn parse_path_with_cap() {
        let c = TraceConfig::parse("/tmp/t.json:4096").unwrap();
        assert_eq!(c.path, "/tmp/t.json");
        assert_eq!(c.cap, 4096);
    }

    #[test]
    fn parse_colon_in_path_without_numeric_suffix() {
        // A Windows-style or URL-ish path whose suffix is not a number
        // is treated as a whole path.
        let c = TraceConfig::parse("C:/traces/out.json").unwrap();
        assert_eq!(c.path, "C:/traces/out.json");
        assert_eq!(c.cap, DEFAULT_RING_CAP);
    }

    #[test]
    fn parse_rejects_empty_and_zero_cap() {
        assert_eq!(TraceConfig::parse(""), None);
        assert_eq!(TraceConfig::parse("   "), None);
        // cap 0 is not a valid capacity: the whole string is the path.
        let c = TraceConfig::parse("t.json:0").unwrap();
        assert_eq!(c.path, "t.json:0");
        assert_eq!(c.cap, DEFAULT_RING_CAP);
    }
}
