//! Per-thread CPI-stack cycle accounting (DESIGN.md §11).
//!
//! Every cycle a hardware thread context exists it is attributed to
//! exactly one [`CpiComponent`]. The taxonomy follows the interval
//! analysis the paper's authors built for per-thread cycle accounting
//! under SMT: a cycle is either productive (committing at the core's
//! width), lost to a structural limit of the thread itself (frontend,
//! ROB, FU, memory), lost to *sharing* (another context won the fetch
//! or issue arbitration), or idle (no runnable thread in the slot).

use std::collections::BTreeMap;

/// Number of CPI-stack components.
pub const N_COMPONENTS: usize = 11;

/// Where a hardware-thread cycle went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum CpiComponent {
    /// Productive work: the context committed or issued this cycle
    /// (the base component of the stack, bounded by issue width).
    Base = 0,
    /// Frontend-bound: fetch blocked on an I-cache miss or a
    /// mispredict redirect, with an empty window.
    Frontend = 1,
    /// The reorder buffer (private partition or shared pool) is full.
    RobFull = 2,
    /// The window head is ready but lost functional-unit arbitration
    /// with no other active context (single-thread structural stall).
    FuContention = 3,
    /// Fetch interference under SMT: the context could have fetched
    /// but another context held the fetch slots.
    SmtFetch = 4,
    /// Issue interference under SMT: the window head is ready but
    /// another active context won issue arbitration.
    SmtIssue = 5,
    /// Waiting on an L1 data hit in flight at the window head.
    L1 = 6,
    /// Waiting on an L2 hit in flight at the window head.
    L2 = 7,
    /// Waiting on an LLC hit in flight at the window head.
    Llc = 8,
    /// Waiting on DRAM at the window head.
    Dram = 9,
    /// No runnable thread resident (empty slot, barrier/lock block,
    /// or scheduler switch in progress).
    Idle = 10,
}

impl CpiComponent {
    /// All components, in stack order.
    pub const ALL: [CpiComponent; N_COMPONENTS] = [
        CpiComponent::Base,
        CpiComponent::Frontend,
        CpiComponent::RobFull,
        CpiComponent::FuContention,
        CpiComponent::SmtFetch,
        CpiComponent::SmtIssue,
        CpiComponent::L1,
        CpiComponent::L2,
        CpiComponent::Llc,
        CpiComponent::Dram,
        CpiComponent::Idle,
    ];

    /// Dense index into a per-thread component array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used as counter keys and JSON fields).
    pub fn name(self) -> &'static str {
        match self {
            CpiComponent::Base => "base",
            CpiComponent::Frontend => "frontend",
            CpiComponent::RobFull => "rob_full",
            CpiComponent::FuContention => "fu_contention",
            CpiComponent::SmtFetch => "smt_fetch",
            CpiComponent::SmtIssue => "smt_issue",
            CpiComponent::L1 => "l1",
            CpiComponent::L2 => "l2",
            CpiComponent::Llc => "llc",
            CpiComponent::Dram => "dram",
            CpiComponent::Idle => "idle",
        }
    }
}

/// Identity of one hardware thread context: `(core, slot)`.
pub type StackKey = (usize, usize);

/// Accumulated CPI stacks, keyed by hardware thread context.
///
/// `CpiStacks` is itself a [`crate::TraceSink`] (events are ignored),
/// so accounting can run without paying for event ringing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpiStacks {
    stacks: BTreeMap<StackKey, [u64; N_COMPONENTS]>,
}

impl CpiStacks {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `span` cycles of `comp` to context `(core, slot)`.
    #[inline]
    pub fn add(&mut self, core: usize, slot: usize, comp: CpiComponent, span: u64) {
        self.stacks.entry((core, slot)).or_insert([0; N_COMPONENTS])[comp.index()] += span;
    }

    /// The component array for one context, if it ever received cycles.
    pub fn stack(&self, core: usize, slot: usize) -> Option<&[u64; N_COMPONENTS]> {
        self.stacks.get(&(core, slot))
    }

    /// Total cycles attributed to one context across all components.
    pub fn total(&self, core: usize, slot: usize) -> u64 {
        self.stacks
            .get(&(core, slot))
            .map(|s| s.iter().sum())
            .unwrap_or(0)
    }

    /// Iterate `(key, components)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&StackKey, &[u64; N_COMPONENTS])> {
        self.stacks.iter()
    }

    /// Number of contexts with any attributed cycles.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// True when no cycles have been attributed.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Chip-wide sum of each component over all contexts.
    pub fn chip_totals(&self) -> [u64; N_COMPONENTS] {
        let mut out = [0u64; N_COMPONENTS];
        for s in self.stacks.values() {
            for (o, v) in out.iter_mut().zip(s.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Export every context's components into a counter snapshot under
    /// `cpi.core<c>.slot<s>.<component>` keys.
    pub fn counters_into(&self, snap: &mut crate::CounterSnapshot) {
        for ((core, slot), comps) in &self.stacks {
            for c in CpiComponent::ALL {
                snap.add_u64(
                    &format!("cpi.core{core}.slot{slot}.{}", c.name()),
                    comps[c.index()],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_per_context() {
        let mut s = CpiStacks::new();
        s.add(0, 0, CpiComponent::Base, 5);
        s.add(0, 0, CpiComponent::Dram, 7);
        s.add(1, 1, CpiComponent::Idle, 3);
        assert_eq!(s.total(0, 0), 12);
        assert_eq!(s.total(1, 1), 3);
        assert_eq!(s.total(2, 0), 0);
        assert_eq!(s.stack(0, 0).unwrap()[CpiComponent::Dram.index()], 7);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn chip_totals_sum_contexts() {
        let mut s = CpiStacks::new();
        s.add(0, 0, CpiComponent::Llc, 2);
        s.add(3, 1, CpiComponent::Llc, 5);
        assert_eq!(s.chip_totals()[CpiComponent::Llc.index()], 7);
    }

    #[test]
    fn component_names_are_unique_and_indexed() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, c) in CpiComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
        }
        assert_eq!(seen.len(), N_COMPONENTS);
    }

    #[test]
    fn counters_export_uses_stable_keys() {
        let mut s = CpiStacks::new();
        s.add(2, 1, CpiComponent::SmtIssue, 9);
        let mut snap = crate::CounterSnapshot::new();
        s.counters_into(&mut snap);
        assert_eq!(snap.get_u64("cpi.core2.slot1.smt_issue"), Some(9));
        assert_eq!(snap.get_u64("cpi.core2.slot1.base"), Some(0));
    }
}
