//! The zero-cost sink abstraction the simulator is generic over.

use crate::{CpiComponent, CpiStacks, EventRing, TraceEvent, DEFAULT_RING_CAP};

/// Receiver for cycle attributions and structural events.
///
/// The simulator's hot loops take `sink: &mut S` with
/// `S: TraceSink` and guard every hook site with
/// `if S::ENABLED { ... }`. `ENABLED` is an associated *constant*, so
/// for [`NopSink`] the branch folds to `if false` at monomorphization
/// time and the instrumented build is machine-code-identical to an
/// uninstrumented one — no virtual dispatch, no runtime flag checks.
pub trait TraceSink {
    /// Whether this sink observes anything. Hook sites must guard on
    /// this so disabled instrumentation is dead-code-eliminated.
    const ENABLED: bool;

    /// Attribute `span` cycles of hardware thread context
    /// `(core, slot)` to CPI-stack component `comp`.
    fn attr(&mut self, core: usize, slot: usize, comp: CpiComponent, span: u64);

    /// Record a structural event.
    fn event(&mut self, ev: TraceEvent);
}

/// The default sink: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopSink;

impl TraceSink for NopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn attr(&mut self, _core: usize, _slot: usize, _comp: CpiComponent, _span: u64) {}

    #[inline(always)]
    fn event(&mut self, _ev: TraceEvent) {}
}

/// Accounting-only sink: accumulates CPI stacks, ignores events.
impl TraceSink for CpiStacks {
    const ENABLED: bool = true;

    #[inline]
    fn attr(&mut self, core: usize, slot: usize, comp: CpiComponent, span: u64) {
        self.add(core, slot, comp, span);
    }

    #[inline]
    fn event(&mut self, _ev: TraceEvent) {}
}

/// Full sink: CPI stacks plus the bounded event ring.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// Accumulated per-context CPI stacks.
    pub stacks: CpiStacks,
    /// Bounded structural event ring.
    pub ring: EventRing,
}

impl Tracer {
    /// Tracer with a ring of `cap` events.
    pub fn new(cap: usize) -> Self {
        Tracer {
            stacks: CpiStacks::new(),
            ring: EventRing::new(cap),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_RING_CAP)
    }
}

impl TraceSink for Tracer {
    const ENABLED: bool = true;

    #[inline]
    fn attr(&mut self, core: usize, slot: usize, comp: CpiComponent, span: u64) {
        self.stacks.add(core, slot, comp, span);
    }

    #[inline]
    fn event(&mut self, ev: TraceEvent) {
        self.ring.push(ev);
    }
}

/// Forwarding impl so hook sites can pass `&mut sink` down a call
/// level without re-borrowing gymnastics.
impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn attr(&mut self, core: usize, slot: usize, comp: CpiComponent, span: u64) {
        (**self).attr(core, slot, comp, span);
    }

    #[inline(always)]
    fn event(&mut self, ev: TraceEvent) {
        (**self).event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_sink_is_zero_sized_and_disabled() {
        fn enabled<S: TraceSink>() -> bool {
            S::ENABLED
        }
        assert_eq!(std::mem::size_of::<NopSink>(), 0);
        assert!(!enabled::<NopSink>());
        assert!(!enabled::<&mut NopSink>());
    }

    #[test]
    fn tracer_routes_both_channels() {
        let mut t = Tracer::new(8);
        t.attr(1, 0, CpiComponent::Dram, 4);
        t.event(TraceEvent::Bus {
            core: 1,
            start: 10,
            end: 31,
        });
        assert_eq!(t.stacks.total(1, 0), 4);
        assert_eq!(t.ring.len(), 1);
    }

    #[test]
    fn cpistacks_sink_ignores_events() {
        let mut s = CpiStacks::new();
        TraceSink::event(
            &mut s,
            TraceEvent::Bus {
                core: 0,
                start: 0,
                end: 1,
            },
        );
        TraceSink::attr(&mut s, 0, 1, CpiComponent::Base, 2);
        assert_eq!(s.total(0, 1), 2);
    }

    #[test]
    fn forwarding_impl_reaches_inner_sink() {
        let mut t = Tracer::new(4);
        {
            let mut r = &mut t;
            TraceSink::attr(&mut r, 0, 0, CpiComponent::Idle, 1);
        }
        assert_eq!(t.stacks.total(0, 0), 1);
    }
}
