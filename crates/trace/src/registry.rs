//! The unified counter registry.
//!
//! Every stats-bearing struct in the simulator exports into one
//! string-keyed [`CounterSnapshot`] via a `counters_into` method, so
//! figure benches, the sweep executor, and the disk cache aggregate a
//! single shape instead of walking bespoke struct hierarchies. Keys
//! are dot-separated hierarchical names (`core3.issued`,
//! `mem.llc.misses`, `cpi.core0.slot1.dram`).

use std::collections::BTreeMap;

/// A counter's value: monotonic integral counts or derived ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CounterValue {
    /// An integral event count.
    Int(u64),
    /// A derived floating-point figure (rates, averages).
    Float(f64),
}

impl CounterValue {
    /// The value as f64 regardless of kind.
    pub fn as_f64(self) -> f64 {
        match self {
            CounterValue::Int(v) => v as f64,
            CounterValue::Float(v) => v,
        }
    }
}

/// An ordered, string-keyed snapshot of counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSnapshot {
    counters: BTreeMap<String, CounterValue>,
}

impl CounterSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the integer counter `key` (creating it at 0).
    /// Adding an integer to a float counter promotes the addend.
    pub fn add_u64(&mut self, key: &str, v: u64) {
        match self.counters.get_mut(key) {
            Some(CounterValue::Int(cur)) => *cur += v,
            Some(CounterValue::Float(cur)) => *cur += v as f64,
            None => {
                self.counters.insert(key.to_string(), CounterValue::Int(v));
            }
        }
    }

    /// Set the float counter `key` (floats are derived figures:
    /// last-writer-wins rather than summed).
    pub fn set_f64(&mut self, key: &str, v: f64) {
        self.counters
            .insert(key.to_string(), CounterValue::Float(v));
    }

    /// Look up a counter.
    pub fn get(&self, key: &str) -> Option<CounterValue> {
        self.counters.get(key).copied()
    }

    /// Look up an integer counter (None for floats or missing keys).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.counters.get(key) {
            Some(CounterValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Number of counters held.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no counters are held.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterate `(key, value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, CounterValue)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merge another snapshot into this one: integer counters sum,
    /// float counters take the other side's value.
    pub fn merge(&mut self, other: &CounterSnapshot) {
        for (k, v) in other.iter() {
            match v {
                CounterValue::Int(i) => self.add_u64(k, i),
                CounterValue::Float(f) => self.set_f64(k, f),
            }
        }
    }

    /// Render as a flat JSON object (keys sorted; floats rendered via
    /// Rust's shortest-roundtrip formatting, NaN/inf as null).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.counters.len() * 24 + 2);
        out.push('{');
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":"));
            match v {
                CounterValue::Int(x) => out.push_str(&x.to_string()),
                CounterValue::Float(x) if x.is_finite() => out.push_str(&format!("{x}")),
                CounterValue::Float(_) => out.push_str("null"),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut s = CounterSnapshot::new();
        s.add_u64("core0.issued", 10);
        s.add_u64("core0.issued", 5);
        s.set_f64("mem.llc.miss_rate", 0.25);
        assert_eq!(s.get_u64("core0.issued"), Some(15));
        assert_eq!(s.get("mem.llc.miss_rate"), Some(CounterValue::Float(0.25)));
        assert_eq!(s.get_u64("mem.llc.miss_rate"), None);
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn merge_sums_ints_and_overwrites_floats() {
        let mut a = CounterSnapshot::new();
        a.add_u64("n", 3);
        a.set_f64("rate", 0.5);
        let mut b = CounterSnapshot::new();
        b.add_u64("n", 4);
        b.add_u64("only_b", 1);
        b.set_f64("rate", 0.75);
        a.merge(&b);
        assert_eq!(a.get_u64("n"), Some(7));
        assert_eq!(a.get_u64("only_b"), Some(1));
        assert_eq!(a.get("rate"), Some(CounterValue::Float(0.75)));
    }

    #[test]
    fn json_is_sorted_and_flat() {
        let mut s = CounterSnapshot::new();
        s.add_u64("b", 2);
        s.add_u64("a", 1);
        s.set_f64("c", 1.5);
        assert_eq!(s.to_json(), "{\"a\":1,\"b\":2,\"c\":1.5}");
    }

    #[test]
    fn json_handles_nonfinite_and_empty() {
        let mut s = CounterSnapshot::new();
        assert_eq!(s.to_json(), "{}");
        s.set_f64("bad", f64::NAN);
        assert_eq!(s.to_json(), "{\"bad\":null}");
    }
}
