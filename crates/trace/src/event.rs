//! Bounded structural event tracing.
//!
//! Events are recorded into an overwrite-oldest ring so an arbitrarily
//! long run has bounded memory: when full, the oldest events drop and
//! a counter records how many were lost. Iteration yields surviving
//! events oldest-first, ready for the Chrome exporter.

/// Default ring capacity (events) when `TLPSIM_TRACE` gives no `:cap`.
pub const DEFAULT_RING_CAP: usize = 1 << 16;

/// One structural simulator event, timestamped in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `count` instructions dispatched into context `(core, slot)`.
    Fetch {
        core: usize,
        slot: usize,
        at: u64,
        count: u32,
    },
    /// `count` instructions issued from context `(core, slot)`.
    Issue {
        core: usize,
        slot: usize,
        at: u64,
        count: u32,
    },
    /// `count` instructions committed from context `(core, slot)`.
    Commit {
        core: usize,
        slot: usize,
        at: u64,
        count: u32,
    },
    /// A demand access from `core` that missed L1 and filled from
    /// `level` (2 = L2, 3 = LLC, 4 = DRAM), occupying `[start, end)`.
    Fill {
        core: usize,
        level: u8,
        start: u64,
        end: u64,
    },
    /// One line transfer over the off-chip bus on behalf of `core`.
    Bus { core: usize, start: u64, end: u64 },
    /// One DRAM bank access on behalf of `core`.
    DramBank {
        core: usize,
        bank: u8,
        start: u64,
        end: u64,
    },
}

impl TraceEvent {
    /// The core the event belongs to (trace-viewer process id).
    pub fn core(&self) -> usize {
        match *self {
            TraceEvent::Fetch { core, .. }
            | TraceEvent::Issue { core, .. }
            | TraceEvent::Commit { core, .. }
            | TraceEvent::Fill { core, .. }
            | TraceEvent::Bus { core, .. }
            | TraceEvent::DramBank { core, .. } => core,
        }
    }
}

/// Fixed-capacity overwrite-oldest event ring.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write position (wraps at `cap`).
    head: usize,
    /// Total events ever recorded (recorded - cap = dropped when full).
    total: u64,
}

impl EventRing {
    /// Ring with room for `cap` events (`cap == 0` is clamped to 1).
    pub fn new(cap: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
            total: 0,
        }
    }

    /// Record an event, overwriting the oldest if full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % self.cap;
        self.total += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterate surviving events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let split = if self.buf.len() < self.cap {
            0 // not yet wrapped: buffer is already oldest-first
        } else {
            self.head
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit_at(at: u64) -> TraceEvent {
        TraceEvent::Commit {
            core: 0,
            slot: 0,
            at,
            count: 1,
        }
    }

    fn times(r: &EventRing) -> Vec<u64> {
        r.iter()
            .map(|e| match e {
                TraceEvent::Commit { at, .. } => *at,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut r = EventRing::new(8);
        for t in 0..5 {
            r.push(commit_at(t));
        }
        assert_eq!(times(&r), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut r = EventRing::new(4);
        for t in 0..10 {
            r.push(commit_at(t));
        }
        assert_eq!(times(&r), vec![6, 7, 8, 9]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_recorded(), 10);
    }

    #[test]
    fn exact_capacity_boundary() {
        let mut r = EventRing::new(3);
        for t in 0..3 {
            r.push(commit_at(t));
        }
        assert_eq!(times(&r), vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        r.push(commit_at(3));
        assert_eq!(times(&r), vec![1, 2, 3]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn zero_cap_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(commit_at(1));
        r.push(commit_at(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(times(&r), vec![2]);
    }
}
