//! Golden-digest anchors: the simulator's observable behavior, frozen.
//!
//! The differential suite in `equivalence.rs` proves the fast-forward
//! and dense engines agree with *each other*, but both could drift
//! together if an "optimization" silently changed simulated behavior.
//! These tests pin a digest of the full [`RunResult`] for a spread of
//! configurations to values recorded from the pre-optimization stepper,
//! so any change to simulated timing — not just engine divergence —
//! fails loudly.
//!
//! To regenerate after an *intentional* model change (never for a
//! perf-only change):
//!
//! ```text
//! TLPSIM_PRINT_GOLDEN=1 cargo test -q -p tlpsim-uarch --test golden -- --nocapture
//! ```

use tlpsim_uarch::{
    ChipConfig, CoreConfig, FetchPolicy, MultiCore, RobSharing, RunResult, ThreadProgram,
};
use tlpsim_workloads::{parsec, spec, InstrStream, Segment};

/// FNV-1a over the `Debug` rendering of the full result. The Debug
/// format covers every field (cycles, per-thread stats, histograms,
/// cache/bus/DRAM counters), so any behavioral drift perturbs it.
fn digest(r: &RunResult) -> u64 {
    let s = format!("{r:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn print_mode() -> bool {
    std::env::var("TLPSIM_PRINT_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// FNV-1a over a string, used to derive a per-config pause cycle.
fn fnv_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `mk` with both engines, assert they agree, then check (or
/// print) the digest of the common result. Also kills the fast run at
/// a config-derived interior cycle, restores a freshly built sim from
/// the checkpoint, and requires the resumed run to land on the *same
/// golden digest* — checkpoint/restore must not perturb behavior.
fn check(name: &str, expected: u64, mk: impl Fn() -> MultiCore) {
    let mut fast = mk();
    fast.set_cycle_skipping(true);
    let rf = fast.run().expect("fast run completes");
    let mut dense = mk();
    dense.set_cycle_skipping(false);
    let rd = dense.run().expect("dense run completes");
    assert_eq!(rf, rd, "engines diverged on golden config {name}");

    let pause = 1 + fnv_str(name) % rd.cycles;
    let mut victim = mk();
    victim.set_cycle_skipping(true);
    match victim.run_slice(1 << 40, pause) {
        Ok(tlpsim_uarch::RunStatus::Paused) => {}
        other => panic!("{name}: expected pause at {pause}, got {other:?}"),
    }
    let bytes = victim.save_state();
    drop(victim);
    let mut resumed = mk();
    resumed.set_cycle_skipping(true);
    resumed.restore_state(&bytes).expect("restore");
    let rr = resumed.run().expect("resumed run completes");
    assert_eq!(
        rr, rd,
        "restore at cycle {pause} diverged on golden config {name}"
    );

    let d = digest(&rd);
    if print_mode() {
        println!("golden {name}: 0x{d:016x}");
    } else {
        assert_eq!(
            d, expected,
            "golden digest changed for {name}: got 0x{d:016x}, expected 0x{expected:016x} \
             — simulated behavior drifted from the recorded stepper"
        );
    }
}

fn multiprogram(chip: &ChipConfig) -> MultiCore {
    let mut sim = MultiCore::new(chip);
    let profiles = [
        spec::mcf_like(),
        spec::hmmer_like(),
        spec::libquantum_like(),
        spec::gamess_like(),
    ];
    let slots = chip.cores[0].smt_contexts as usize;
    for (i, p) in profiles.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(p, i as u64, 42),
            1_000,
            6_000,
        ));
        if slots > 1 {
            sim.pin(t, i % 2, (i / 2) % slots);
        } else {
            sim.pin(t, i % 2, 0);
        }
    }
    sim.prewarm();
    sim
}

#[test]
fn golden_big_smt_multiprogram() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    check("big_smt", 0xcd474bf05fa603a5, || multiprogram(&chip));
}

#[test]
fn golden_small_nosmt_multiprogram() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::small(), 2.66).without_smt();
    check("small_nosmt", 0xdb44fa3196340de9, || multiprogram(&chip));
}

#[test]
fn golden_icount_shared_rob() {
    let mut core = CoreConfig::big();
    core.fetch_policy = FetchPolicy::ICount;
    core.rob_sharing = RobSharing::Shared;
    let chip = ChipConfig::homogeneous(2, core, 2.66);
    check("icount_shared", 0x86e1e7c66d398dfa, || multiprogram(&chip));
}

#[test]
fn golden_barrier_parsec() {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let app = parsec::streamcluster_like();
    check("barrier_parsec", 0x6138e0d297f6bb6c, || {
        let w = app.instantiate(8, 3_000, 7);
        let mut sim = MultiCore::new(&chip);
        let n_cores = chip.cores.len();
        let max_barrier = w
            .threads
            .iter()
            .flatten()
            .filter_map(|s| match s {
                Segment::Barrier { id } => Some(*id),
                _ => None,
            })
            .max()
            .unwrap();
        for (i, segs) in w.threads.iter().enumerate() {
            let stream = InstrStream::new(&w.profile, i as u64, 99).with_shared_region(
                0x4000_0000_0000,
                w.shared_bytes,
                w.shared_frac,
            );
            let t = sim.add_thread(ThreadProgram::segmented(stream, segs.clone()));
            let slots = chip.cores[i % n_cores].smt_contexts as usize;
            sim.pin(t, i % n_cores, (i / n_cores) % slots);
        }
        sim.set_roi_barriers(0, max_barrier);
        sim.prewarm();
        sim
    });
}

#[test]
fn golden_time_sharing_overload() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66).without_smt();
    check("time_sharing", 0x425e41efe083d5f6, || {
        let mut sim = MultiCore::new(&chip);
        for i in 0..6u64 {
            let p = if i % 2 == 0 {
                spec::mcf_like()
            } else {
                spec::gcc_like()
            };
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(&p, i, 17),
                500,
                4_000,
            ));
            sim.pin(t, (i % 2) as usize, 0);
        }
        sim.prewarm();
        sim
    });
}
