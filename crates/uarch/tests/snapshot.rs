//! Checkpoint/restore bit-identity harness (DESIGN.md §12): pausing a
//! run at an arbitrary cycle with [`MultiCore::run_slice`], serializing
//! the engine with [`MultiCore::save_state`], rebuilding the simulation
//! structurally from scratch, restoring, and running to completion must
//! produce a [`RunResult`] **bit-identical** to the uninterrupted run —
//! in dense and fast-forward modes, with and without SMT, for
//! multiprogram and barrier/lock-synchronized workloads, and for
//! instrumented (CPI-stack) runs.
//!
//! Restores into a *differently shaped* simulation must be rejected,
//! never silently accepted.

use tlpsim_uarch::{
    ChipConfig, CoreConfig, CpiStacks, Cycle, MultiCore, RunResult, RunStatus, SnapshotSink,
    ThreadProgram, TraceSink,
};
use tlpsim_workloads::{parsec, spec, InstrStream, Segment, SplitMix64};

/// Run to completion without ever pausing.
fn run_plain<S: TraceSink + SnapshotSink>(mk: impl Fn() -> MultiCore<S>) -> (RunResult, S) {
    let mut sim = mk();
    let r = sim.run().expect("uninterrupted run completes");
    (r, sim.into_sink())
}

/// Pause at `pause_at`, checkpoint, drop the simulation (simulating a
/// process death), rebuild structurally, restore, and finish.
fn run_restored<S: TraceSink + SnapshotSink>(
    mk: impl Fn() -> MultiCore<S>,
    pause_at: Cycle,
) -> (RunResult, S) {
    let mut sim = mk();
    match sim
        .run_slice(1 << 40, pause_at)
        .expect("slice must not fail")
    {
        RunStatus::Done(r) => (r, sim.into_sink()), // finished before the pause point
        RunStatus::Paused => {
            let bytes = sim.save_state();
            drop(sim); // the "crash": all in-memory state is gone
            let mut fresh = mk();
            fresh
                .restore_state(&bytes)
                .expect("restore into identical structure");
            let r = fresh.run().expect("resumed run completes");
            (r, fresh.into_sink())
        }
    }
}

/// Run uninterrupted once, then assert that restoring at pause cycles
/// spread across the run reproduces that result exactly. Pause points:
/// early (mid-warmup), midpoint, just before the end, plus two
/// pseudo-random interior cycles (which also land inside fast-forward
/// windows when skipping is on).
fn check_restores<S: TraceSink + SnapshotSink + PartialEq + std::fmt::Debug>(
    mk: impl Fn() -> MultiCore<S>,
    seed: u64,
) -> RunResult {
    let (reference, ref_sink) = run_plain(&mk);
    let total = reference.cycles;
    let mut rng = SplitMix64::new(seed);
    let mut pauses = vec![1, total / 2, total.saturating_sub(1)];
    for _ in 0..2 {
        pauses.push(1 + rng.next_u64() % total.max(2));
    }
    for p in pauses {
        let (restored, sink) = run_restored(&mk, p);
        assert_eq!(restored, reference, "restore at cycle {p} diverged");
        assert_eq!(sink, ref_sink, "restored sink state at cycle {p} diverged");
    }
    reference
}

fn multiprogram_mix(chip: &ChipConfig, skip: bool) -> MultiCore {
    let mut sim = MultiCore::new(chip);
    sim.set_cycle_skipping(skip);
    let profiles = [
        spec::mcf_like(),
        spec::hmmer_like(),
        spec::libquantum_like(),
        spec::gamess_like(),
    ];
    let slots = chip.cores[0].smt_contexts as usize;
    for (i, p) in profiles.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(p, i as u64, 42),
            1_000,
            6_000,
        ));
        sim.pin(t, i % 2, if slots > 1 { (i / 2) % slots } else { 0 });
    }
    sim.prewarm();
    sim
}

#[test]
fn smt_dense_multiprogram_restore_bit_identical() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    check_restores(|| multiprogram_mix(&chip, false), 7);
}

#[test]
fn smt_fast_forward_multiprogram_restore_bit_identical() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    check_restores(|| multiprogram_mix(&chip, true), 11);
}

#[test]
fn nosmt_fast_forward_multiprogram_restore_bit_identical() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66).without_smt();
    check_restores(|| multiprogram_mix(&chip, true), 13);
}

#[test]
fn small_core_dense_multiprogram_restore_bit_identical() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::small(), 2.66);
    check_restores(|| multiprogram_mix(&chip, false), 17);
}

/// Barrier/lock-synchronized segmented workload (streamcluster-like):
/// the checkpoint must capture barrier arrival sets, lock queues, ROI
/// histogram recording state, and blocked-thread bookkeeping.
fn parsec_sim(chip: &ChipConfig, skip: bool) -> MultiCore {
    let app = parsec::streamcluster_like();
    let w = app.instantiate(6, 3_000, 7);
    let mut sim = MultiCore::new(chip);
    sim.set_cycle_skipping(skip);
    let n_cores = chip.cores.len();
    let max_barrier = w
        .threads
        .iter()
        .flatten()
        .filter_map(|s| match s {
            Segment::Barrier { id } => Some(*id),
            _ => None,
        })
        .max()
        .unwrap();
    for (i, segs) in w.threads.iter().enumerate() {
        let stream = InstrStream::new(&w.profile, i as u64, 99).with_shared_region(
            0x4000_0000_0000,
            w.shared_bytes,
            w.shared_frac,
        );
        let t = sim.add_thread(ThreadProgram::segmented(stream, segs.clone()));
        let slots = chip.cores[i % n_cores].smt_contexts as usize;
        sim.pin(t, i % n_cores, (i / n_cores) % slots);
    }
    sim.set_roi_barriers(0, max_barrier);
    sim.prewarm();
    sim
}

#[test]
fn barrier_parsec_restore_bit_identical() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let r = check_restores(|| parsec_sim(&chip, true), 23);
    // Blocked cycles prove the barriers/locks were live across at
    // least some of the checkpoints exercised above.
    assert!(r.threads.iter().map(|t| t.blocked_cycles).sum::<u64>() > 0);
}

#[test]
fn instrumented_run_restores_cpi_stacks() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let mk = || {
        let mut sim = MultiCore::with_sink(&chip, CpiStacks::new());
        sim.set_cycle_skipping(true);
        for (i, p) in [spec::mcf_like(), spec::gcc_like()].iter().enumerate() {
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(p, i as u64, 5),
                500,
                4_000,
            ));
            sim.pin(t, i % 2, 0);
        }
        sim.prewarm();
        sim
    };
    check_restores(mk, 29);
    let (_, stacks) = run_plain(mk);
    assert!(!stacks.is_empty(), "instrumented run must populate stacks");
}

/// Repeated pause/resume in-process (no serialization) must also be
/// invisible: `run_slice` in many short slices equals one long run.
#[test]
fn many_short_slices_equal_one_run() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let (reference, _) = run_plain(|| multiprogram_mix(&chip, true));
    let mut sim = multiprogram_mix(&chip, true);
    let mut stop = 0;
    let sliced = loop {
        stop += 97; // deliberately not a power of two
        match sim.run_slice(1 << 40, stop).expect("slice must not fail") {
            RunStatus::Done(r) => break r,
            RunStatus::Paused => continue,
        }
    };
    assert_eq!(sliced, reference, "sliced run diverged from unsliced");
}

/// Checkpoint bytes carried across *every* slice boundary: serialize
/// and restore into a fresh simulation at each pause, chaining
/// restores. This is the worst case for state leakage between the
/// serialized surface and anything rebuilt structurally.
#[test]
fn chained_restores_bit_identical() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let mk = || multiprogram_mix(&chip, true);
    let (reference, _) = run_plain(mk);
    let mut sim = mk();
    let mut stop = 0;
    let chained = loop {
        stop += 1_013;
        match sim.run_slice(1 << 40, stop).expect("slice must not fail") {
            RunStatus::Done(r) => break r,
            RunStatus::Paused => {
                let bytes = sim.save_state();
                sim = mk();
                sim.restore_state(&bytes).expect("chained restore");
            }
        }
    };
    assert_eq!(chained, reference, "chained restore run diverged");
}

#[test]
fn restore_rejects_different_structure() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let mut sim = multiprogram_mix(&chip, true);
    assert!(matches!(
        sim.run_slice(1 << 40, 500).expect("slice"),
        RunStatus::Paused
    ));
    let bytes = sim.save_state();

    // Different core class → different structural fingerprint.
    let other_chip = ChipConfig::homogeneous(2, CoreConfig::medium(), 2.66);
    let mut wrong = multiprogram_mix(&other_chip, true);
    assert!(
        wrong.restore_state(&bytes).is_err(),
        "core class mismatch accepted"
    );

    // Different thread placement → rejected.
    let mut moved = multiprogram_mix(&chip, true);
    moved.pin(0, 1, 1);
    assert!(
        moved.restore_state(&bytes).is_err(),
        "placement mismatch accepted"
    );

    // Same structure but truncated payload → rejected at every length.
    let mut ok = multiprogram_mix(&chip, true);
    for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            ok.restore_state(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes accepted"
        );
    }
    // The untruncated restore still works after the failed attempts.
    ok = multiprogram_mix(&chip, true);
    ok.restore_state(&bytes).expect("intact restore");
    let resumed = ok.run().expect("resumed run completes");
    let (reference, _) = run_plain(|| multiprogram_mix(&chip, true));
    assert_eq!(resumed, reference);
}
