//! CPI-stack accounting invariants (DESIGN.md §11).
//!
//! Two properties, checked over the same config × workload cells as the
//! fast-forward equivalence harness:
//!
//! 1. **Identity** — for every hardware thread context `(core, slot)`,
//!    the sum over all CPI components equals the core's measured cycle
//!    count exactly. Every simulated cycle of every context is
//!    attributed to exactly one component; nothing is dropped or
//!    double-counted.
//! 2. **Skip-equivalence** — the stacks collected with cycle skipping
//!    enabled are *bit-identical* to the stacks collected by the dense
//!    stepper. Fast-forwarded spans classify once at span start and
//!    weight by the span length; this must reproduce the dense
//!    per-cycle sum (the §9 constancy argument).
//!
//! Additionally, attaching a sink must not perturb simulation results:
//! the traced run's [`RunResult`] is compared against the untraced
//! golden path.

use tlpsim_uarch::{
    ChipConfig, CoreConfig, CpiStacks, FetchPolicy, MultiCore, RobSharing, RunResult, ThreadProgram,
};
use tlpsim_workloads::{parsec, spec, InstrStream, Segment};

/// Run one construction three ways — untraced (skip on), traced with
/// skip, traced dense — check the invariants, and return the traced
/// stacks for scenario-specific assertions.
fn check_invariants(mk: impl Fn(bool) -> MultiCore<CpiStacks>) -> CpiStacks {
    let mut fast = mk(true);
    let rf = fast.run().expect("traced fast run completes");
    let fast_stacks = fast.into_sink();

    let mut dense = mk(false);
    let rd = dense.run().expect("traced dense run completes");
    let dense_stacks = dense.into_sink();

    assert_eq!(rf, rd, "tracing: fast-forward result diverged from dense");
    assert_identity(&rf, &fast_stacks);
    assert_identity(&rd, &dense_stacks);
    assert_eq!(
        fast_stacks, dense_stacks,
        "CPI stacks must be bit-identical between skip and dense stepping"
    );
    fast_stacks
}

/// Every context's component sum must equal its core's cycle count.
fn assert_identity(r: &RunResult, stacks: &CpiStacks) {
    for ((core, slot), comps) in stacks.iter() {
        let sum: u64 = comps.iter().sum();
        let cycles = r.cores[*core].cycles;
        assert_eq!(
            sum, cycles,
            "core {core} slot {slot}: component sum {sum} != measured cycles {cycles}"
        );
    }
    // Every core contributes stacks for every slot it stepped.
    for (c, cs) in r.cores.iter().enumerate() {
        if cs.cycles > 0 {
            assert!(
                stacks.iter().any(|((core, _), _)| *core == c),
                "core {c} stepped {} cycles but produced no stack",
                cs.cycles
            );
        }
    }
}

fn multiprogram_mix(chip: &ChipConfig, skip: bool) -> MultiCore<CpiStacks> {
    let mut sim = MultiCore::with_sink(chip, CpiStacks::new());
    sim.set_cycle_skipping(skip);
    let profiles = [
        spec::mcf_like(),
        spec::hmmer_like(),
        spec::libquantum_like(),
        spec::gamess_like(),
    ];
    let slots_per_core = chip.cores[0].smt_contexts as usize;
    for (i, p) in profiles.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(p, i as u64, 42),
            1_000,
            6_000,
        ));
        if slots_per_core > 1 {
            sim.pin(t, i % 2, (i / 2) % slots_per_core);
        } else {
            sim.pin(t, i % 2, 0);
        }
    }
    sim.prewarm();
    sim
}

fn check_multiprogram(core: CoreConfig, smt: bool) -> CpiStacks {
    let mut chip = ChipConfig::homogeneous(2, core, 2.66);
    if !smt {
        chip = chip.without_smt();
    }
    check_invariants(|skip| multiprogram_mix(&chip, skip))
}

#[test]
fn big_smt_identity_and_skip_equivalence() {
    let stacks = check_multiprogram(CoreConfig::big(), true);
    // An SMT mix with mcf-like threads must show both DRAM-bound
    // cycles and SMT interference somewhere on the chip.
    let totals = stacks.chip_totals();
    assert!(totals[tlpsim_uarch::CpiComponent::Dram.index()] > 0);
    assert!(
        totals[tlpsim_uarch::CpiComponent::SmtFetch.index()]
            + totals[tlpsim_uarch::CpiComponent::SmtIssue.index()]
            > 0,
        "two threads per core must produce SMT interference cycles"
    );
}

#[test]
fn big_nosmt_identity_and_skip_equivalence() {
    let stacks = check_multiprogram(CoreConfig::big(), false);
    // Without SMT no cycle may be attributed to SMT interference.
    let totals = stacks.chip_totals();
    assert_eq!(totals[tlpsim_uarch::CpiComponent::SmtFetch.index()], 0);
    assert_eq!(totals[tlpsim_uarch::CpiComponent::SmtIssue.index()], 0);
}

#[test]
fn medium_smt_identity_and_skip_equivalence() {
    check_multiprogram(CoreConfig::medium(), true);
}

#[test]
fn medium_nosmt_identity_and_skip_equivalence() {
    check_multiprogram(CoreConfig::medium(), false);
}

#[test]
fn small_smt_identity_and_skip_equivalence() {
    check_multiprogram(CoreConfig::small(), true);
}

#[test]
fn small_nosmt_identity_and_skip_equivalence() {
    check_multiprogram(CoreConfig::small(), false);
}

#[test]
fn icount_shared_rob_identity_and_skip_equivalence() {
    let mut core = CoreConfig::big();
    core.fetch_policy = FetchPolicy::ICount;
    core.rob_sharing = RobSharing::Shared;
    check_multiprogram(core, true);
}

fn parsec_sim(
    chip: &ChipConfig,
    app: &tlpsim_workloads::ParsecApp,
    n_threads: usize,
    skip: bool,
) -> MultiCore<CpiStacks> {
    let w = app.instantiate(n_threads, 3_000, 7);
    let mut sim = MultiCore::with_sink(chip, CpiStacks::new());
    sim.set_cycle_skipping(skip);
    let n_cores = chip.cores.len();
    let max_barrier = w
        .threads
        .iter()
        .flatten()
        .filter_map(|s| match s {
            Segment::Barrier { id } => Some(*id),
            _ => None,
        })
        .max()
        .unwrap();
    for (i, segs) in w.threads.iter().enumerate() {
        let stream = InstrStream::new(&w.profile, i as u64, 99).with_shared_region(
            0x4000_0000_0000,
            w.shared_bytes,
            w.shared_frac,
        );
        let t = sim.add_thread(ThreadProgram::segmented(stream, segs.clone()));
        let slots = chip.cores[i % n_cores].smt_contexts as usize;
        sim.pin(t, i % n_cores, (i / n_cores) % slots);
    }
    sim.set_roi_barriers(0, max_barrier);
    sim.prewarm();
    sim
}

#[test]
fn barrier_heavy_parsec_identity_and_skip_equivalence() {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let app = parsec::streamcluster_like();
    let stacks = check_invariants(|skip| parsec_sim(&chip, &app, 8, skip));
    // Barrier waiting shows up as idle context cycles.
    assert!(stacks.chip_totals()[tlpsim_uarch::CpiComponent::Idle.index()] > 0);
}

#[test]
fn lock_heavy_parsec_identity_and_skip_equivalence() {
    let mut app = parsec::blackscholes_like();
    app.cs_frac = 0.9;
    app.max_parallelism = 64;
    app.imbalance = 0.0;
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    check_invariants(|skip| parsec_sim(&chip, &app, 4, skip));
}

#[test]
fn time_sharing_overload_identity_and_skip_equivalence() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66).without_smt();
    check_invariants(|skip| {
        let mut sim = MultiCore::with_sink(&chip, CpiStacks::new());
        sim.set_cycle_skipping(skip);
        for i in 0..6u64 {
            let p = if i % 2 == 0 {
                spec::mcf_like()
            } else {
                spec::gcc_like()
            };
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(&p, i, 17),
                500,
                4_000,
            ));
            sim.pin(t, (i % 2) as usize, 0);
        }
        sim.prewarm();
        sim
    });
}

#[test]
fn heterogeneous_chip_identity_and_skip_equivalence() {
    let chip = ChipConfig::heterogeneous(
        &[CoreConfig::big(), CoreConfig::medium(), CoreConfig::small()],
        2.66,
    );
    check_invariants(|skip| {
        let mut sim = MultiCore::with_sink(&chip, CpiStacks::new());
        sim.set_cycle_skipping(skip);
        let profiles = [
            spec::libquantum_like(),
            spec::milc_like(),
            spec::astar_like(),
        ];
        for (i, p) in profiles.iter().enumerate() {
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(p, i as u64, 5),
                1_000,
                5_000,
            ));
            sim.pin(t, i, 0);
        }
        sim.prewarm();
        sim
    });
}

/// A traced run must not perturb the simulation itself: same inputs,
/// with and without a sink, produce equal [`RunResult`]s.
#[test]
fn tracing_does_not_perturb_results() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let build_untraced = || {
        let mut sim = MultiCore::new(&chip);
        for i in 0..4u64 {
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(&spec::mcf_like(), i, 23),
                1_000,
                8_000,
            ));
            sim.pin(t, (i % 2) as usize, (i / 2) as usize);
        }
        sim.prewarm();
        sim
    };
    let build_traced = || {
        let mut sim = MultiCore::with_sink(&chip, tlpsim_uarch::Tracer::default());
        for i in 0..4u64 {
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(&spec::mcf_like(), i, 23),
                1_000,
                8_000,
            ));
            sim.pin(t, (i % 2) as usize, (i / 2) as usize);
        }
        sim.prewarm();
        sim
    };
    let r0 = build_untraced().run().expect("untraced run completes");
    let mut traced = build_traced();
    let r1 = traced.run().expect("traced run completes");
    assert_eq!(r0, r1, "attaching a sink changed simulation results");
    let tracer = traced.into_sink();
    assert!(tracer.ring.total_recorded() > 0, "events must be recorded");
    // Every populated context must have a stack obeying the identity.
    assert_identity(&r1, &tracer.stacks);
}
