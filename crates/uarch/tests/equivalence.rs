//! Differential harness: the event-driven fast-forward engine must
//! produce **bit-identical** [`RunResult`]s to the naive dense stepper
//! on every config × workload cell — same cycle counts, per-thread
//! stats, active-thread histograms, and cache/bus/DRAM counters.
//!
//! Every scenario builds the same simulation twice from identical
//! inputs, runs one with cycle skipping and one with the legacy dense
//! stepper ([`MultiCore::set_cycle_skipping`]), and asserts full
//! structural equality of the results.

use tlpsim_uarch::{
    ChipConfig, CoreConfig, FetchPolicy, MultiCore, RobSharing, RunResult, ThreadProgram,
};
use tlpsim_workloads::{parsec, spec, InstrStream, Segment};

/// Run the same construction twice (fast-forward vs dense) and return
/// `(fast result, dense result, cycles the fast engine skipped)`.
fn run_both(mk: impl Fn() -> MultiCore) -> (RunResult, RunResult, u64) {
    let mut fast = mk();
    fast.set_cycle_skipping(true);
    let rf = fast.run().expect("fast-forward run must complete");
    let mut dense = mk();
    dense.set_cycle_skipping(false);
    let rd = dense.run().expect("dense run must complete");
    assert_eq!(dense.skipped_cycles(), 0, "dense engine must never skip");
    (rf, rd, fast.skipped_cycles())
}

/// A 2-core multiprogram mix: two memory-bound programs (the case the
/// fast-forward targets) plus two compute-bound ones, filling the
/// first two contexts of each core.
fn multiprogram_mix(chip: &ChipConfig) -> MultiCore {
    let mut sim = MultiCore::new(chip);
    let profiles = [
        spec::mcf_like(),
        spec::hmmer_like(),
        spec::libquantum_like(),
        spec::gamess_like(),
    ];
    let slots_per_core = chip.cores[0].smt_contexts as usize;
    for (i, p) in profiles.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(p, i as u64, 42),
            1_000,
            6_000,
        ));
        if slots_per_core > 1 {
            sim.pin(t, i % 2, (i / 2) % slots_per_core);
        } else {
            // No SMT: two programs time-share each single context.
            sim.pin(t, i % 2, 0);
        }
    }
    sim.prewarm();
    sim
}

fn check_multiprogram(core: CoreConfig, smt: bool, expect_skip: bool) {
    let mut chip = ChipConfig::homogeneous(2, core, 2.66);
    if !smt {
        chip = chip.without_smt();
    }
    let (rf, rd, skipped) = run_both(|| multiprogram_mix(&chip));
    assert_eq!(rf, rd, "fast-forward diverged from dense stepping");
    if expect_skip {
        assert!(
            skipped > 0,
            "memory-bound mix should trigger at least one fast-forward"
        );
    }
}

#[test]
fn big_smt_multiprogram_bit_identical() {
    check_multiprogram(CoreConfig::big(), true, true);
}

#[test]
fn big_nosmt_multiprogram_bit_identical() {
    check_multiprogram(CoreConfig::big(), false, true);
}

#[test]
fn medium_smt_multiprogram_bit_identical() {
    check_multiprogram(CoreConfig::medium(), true, true);
}

#[test]
fn medium_nosmt_multiprogram_bit_identical() {
    check_multiprogram(CoreConfig::medium(), false, true);
}

#[test]
fn small_smt_multiprogram_bit_identical() {
    check_multiprogram(CoreConfig::small(), true, true);
}

#[test]
fn small_nosmt_multiprogram_bit_identical() {
    check_multiprogram(CoreConfig::small(), false, true);
}

/// Ablation variants exercise the non-default arbitration paths
/// (ICOUNT fetch ordering, shared ROB window).
#[test]
fn icount_shared_rob_multiprogram_bit_identical() {
    let mut core = CoreConfig::big();
    core.fetch_policy = FetchPolicy::ICount;
    core.rob_sharing = RobSharing::Shared;
    check_multiprogram(core, true, false);
}

/// Barrier-heavy multi-threaded app (streamcluster-like): blocked
/// threads yield their contexts, ROI histogram recording, barrier
/// release waves.
fn parsec_sim(chip: &ChipConfig, app: &tlpsim_workloads::ParsecApp, n_threads: usize) -> MultiCore {
    let w = app.instantiate(n_threads, 3_000, 7);
    let mut sim = MultiCore::new(chip);
    let n_cores = chip.cores.len();
    let max_barrier = w
        .threads
        .iter()
        .flatten()
        .filter_map(|s| match s {
            Segment::Barrier { id } => Some(*id),
            _ => None,
        })
        .max()
        .unwrap();
    for (i, segs) in w.threads.iter().enumerate() {
        let stream = InstrStream::new(&w.profile, i as u64, 99).with_shared_region(
            0x4000_0000_0000,
            w.shared_bytes,
            w.shared_frac,
        );
        let t = sim.add_thread(ThreadProgram::segmented(stream, segs.clone()));
        let slots = chip.cores[i % n_cores].smt_contexts as usize;
        sim.pin(t, i % n_cores, (i / n_cores) % slots);
    }
    sim.set_roi_barriers(0, max_barrier);
    sim.prewarm();
    sim
}

#[test]
fn barrier_heavy_parsec_bit_identical() {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let app = parsec::streamcluster_like();
    let (rf, rd, _) = run_both(|| parsec_sim(&chip, &app, 8));
    assert_eq!(rf, rd, "barrier-heavy run diverged");
    // Barriers must actually have been exercised.
    assert!(rd.threads.iter().map(|t| t.blocked_cycles).sum::<u64>() > 0);
}

#[test]
fn lock_heavy_parsec_bit_identical() {
    let mut app = parsec::blackscholes_like();
    app.cs_frac = 0.9;
    app.max_parallelism = 64;
    app.imbalance = 0.0;
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let (rf, rd, _) = run_both(|| parsec_sim(&chip, &app, 4));
    assert_eq!(rf, rd, "critical-section-heavy run diverged");
}

/// Time-sharing overload on a no-SMT chip: quantum expiry and context
/// switches must survive fast-forward (quantum ticks are replayed in
/// bulk).
#[test]
fn time_sharing_overload_bit_identical() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66).without_smt();
    let mk = || {
        let mut sim = MultiCore::new(&chip);
        for i in 0..6u64 {
            let p = if i % 2 == 0 {
                spec::mcf_like()
            } else {
                spec::gcc_like()
            };
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(&p, i, 17),
                500,
                4_000,
            ));
            sim.pin(t, (i % 2) as usize, 0);
        }
        sim.prewarm();
        sim
    };
    let (rf, rd, _) = run_both(mk);
    assert_eq!(rf, rd, "time-sharing run diverged");
}

/// Heterogeneous chip: all three core classes side by side.
#[test]
fn heterogeneous_chip_bit_identical() {
    let chip = ChipConfig::heterogeneous(
        &[CoreConfig::big(), CoreConfig::medium(), CoreConfig::small()],
        2.66,
    );
    let mk = || {
        let mut sim = MultiCore::new(&chip);
        let profiles = [
            spec::libquantum_like(),
            spec::milc_like(),
            spec::astar_like(),
        ];
        for (i, p) in profiles.iter().enumerate() {
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(p, i as u64, 5),
                1_000,
                5_000,
            ));
            sim.pin(t, i, 0);
        }
        sim.prewarm();
        sim
    };
    let (rf, rd, skipped) = run_both(mk);
    assert_eq!(rf, rd, "heterogeneous run diverged");
    assert!(skipped > 0, "memory-bound heterogeneous mix should skip");
}

/// The skip ratio on a memory-bound cell must be substantial — this is
/// the mechanism behind the PR's wall-clock speedup target.
#[test]
fn memory_bound_mix_skips_most_cycles() {
    if std::env::var("TLPSIM_NO_SKIP").is_ok_and(|v| !v.is_empty() && v != "0") {
        return; // escape hatch active: nothing to measure
    }
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);
    for i in 0..4u64 {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&spec::mcf_like(), i, 23),
            1_000,
            8_000,
        ));
        sim.pin(t, (i % 2) as usize, (i / 2) as usize);
    }
    sim.prewarm();
    let r = sim.run().expect("completes");
    let ratio = sim.skipped_cycles() as f64 / r.cycles as f64;
    assert!(
        ratio > 0.3,
        "mcf-like mix should skip a large fraction of cycles, got {ratio:.3} \
         ({} of {} cycles)",
        sim.skipped_cycles(),
        r.cycles
    );
}
