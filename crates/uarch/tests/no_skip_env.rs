//! `TLPSIM_NO_SKIP=1` escape hatch: forces the legacy dense stepper
//! even when cycle skipping is requested programmatically.
//!
//! This lives in its own integration-test binary so the env-var
//! mutation cannot race other tests: cargo runs each test binary in a
//! separate process, and this file's tests run single-threaded within
//! it (they serialize on env state via a mutex-free single test).

use tlpsim_uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
use tlpsim_workloads::{spec, InstrStream};

fn memory_bound_sim() -> MultiCore {
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);
    let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
        InstrStream::new(&spec::mcf_like(), 0, 11),
        500,
        4_000,
    ));
    sim.pin(t, 0, 0);
    sim.prewarm();
    sim
}

#[test]
fn no_skip_env_forces_dense_stepper() {
    // Sanity: without the variable the memory-bound run fast-forwards.
    std::env::remove_var("TLPSIM_NO_SKIP");
    let mut sim = memory_bound_sim();
    assert!(sim.cycle_skipping());
    let baseline = sim.run().expect("completes");
    assert!(sim.skipped_cycles() > 0, "control run should fast-forward");

    // With the hatch set, construction disables skipping...
    std::env::set_var("TLPSIM_NO_SKIP", "1");
    let mut sim = memory_bound_sim();
    assert!(!sim.cycle_skipping());
    // ...and it cannot be re-enabled programmatically.
    sim.set_cycle_skipping(true);
    assert!(!sim.cycle_skipping());
    let dense = sim.run().expect("completes");
    assert_eq!(
        sim.skipped_cycles(),
        0,
        "escape hatch must force dense steps"
    );
    assert_eq!(sim.skip_windows(), 0);

    // "0" and empty string mean "not set".
    std::env::set_var("TLPSIM_NO_SKIP", "0");
    assert!(memory_bound_sim().cycle_skipping());
    std::env::set_var("TLPSIM_NO_SKIP", "");
    assert!(memory_bound_sim().cycle_skipping());
    std::env::remove_var("TLPSIM_NO_SKIP");

    // And of course both paths agree on the result.
    assert_eq!(baseline, dense);
}
