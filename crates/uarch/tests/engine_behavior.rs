//! Behavioural tests of the core models and the multi-core engine.

use tlpsim_uarch::{ChipConfig, CoreConfig, MultiCore, RunError, ThreadProgram};
use tlpsim_workloads::{parsec, spec, BenchmarkProfile, InstrStream, Segment};

const BUDGET: u64 = 20_000;

/// Run `n` copies of `profile` on a chip, one per (core, slot) pair.
fn run_multiprogram(
    chip: &ChipConfig,
    profile: &BenchmarkProfile,
    placements: &[(usize, usize)],
) -> tlpsim_uarch::RunResult {
    let mut sim = MultiCore::new(chip);
    for (i, &(core, slot)) in placements.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram(
            InstrStream::new(profile, i as u64, 42),
            BUDGET,
        ));
        sim.pin(t, core, slot);
    }
    sim.prewarm();
    sim.run().expect("run must complete")
}

fn solo_ipc(chip: &ChipConfig, profile: &BenchmarkProfile) -> f64 {
    let r = run_multiprogram(chip, profile, &[(0, 0)]);
    r.threads[0].ipc(BUDGET)
}

#[test]
fn single_thread_commits_budget() {
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let r = run_multiprogram(&chip, &spec::hmmer_like(), &[(0, 0)]);
    assert!(r.threads[0].committed >= BUDGET);
    let ipc = r.threads[0].ipc(BUDGET);
    assert!((0.5..4.0).contains(&ipc), "big-core hmmer IPC {ipc}");
}

#[test]
fn big_beats_medium_beats_small_on_compute_code() {
    let p = spec::hmmer_like();
    let big = solo_ipc(&ChipConfig::homogeneous(1, CoreConfig::big(), 2.66), &p);
    let med = solo_ipc(&ChipConfig::homogeneous(1, CoreConfig::medium(), 2.66), &p);
    let small = solo_ipc(&ChipConfig::homogeneous(1, CoreConfig::small(), 2.66), &p);
    assert!(big > med * 1.2, "big {big} vs medium {med}");
    assert!(med > small * 1.05, "medium {med} vs small {small}");
}

#[test]
fn memory_bound_code_is_slow_everywhere() {
    let hmmer = solo_ipc(
        &ChipConfig::homogeneous(1, CoreConfig::big(), 2.66),
        &spec::hmmer_like(),
    );
    let mcf = solo_ipc(
        &ChipConfig::homogeneous(1, CoreConfig::big(), 2.66),
        &spec::mcf_like(),
    );
    assert!(
        mcf < hmmer / 3.0,
        "mcf IPC {mcf} should be far below hmmer {hmmer}"
    );
}

#[test]
fn memory_bound_code_cares_less_about_core_type() {
    let p = spec::mcf_like();
    let big = solo_ipc(&ChipConfig::homogeneous(1, CoreConfig::big(), 2.66), &p);
    let small = solo_ipc(&ChipConfig::homogeneous(1, CoreConfig::small(), 2.66), &p);
    // Ratio should be much smaller than for compute-bound code.
    let ratio = big / small;
    assert!(
        ratio < 2.5,
        "memory-bound big/small ratio {ratio} suspiciously large"
    );
}

#[test]
fn smt_increases_throughput_but_slows_each_thread() {
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let p = spec::gcc_like();
    let solo = solo_ipc(&chip, &p);
    let duo = run_multiprogram(&chip, &p, &[(0, 0), (0, 1)]);
    let t0 = duo.threads[0].ipc(BUDGET);
    let t1 = duo.threads[1].ipc(BUDGET);
    assert!(
        t0 < solo && t1 < solo,
        "SMT threads must be slower than solo"
    );
    assert!(
        t0 + t1 > solo * 1.1,
        "SMT total {t0}+{t1} should beat solo {solo}"
    );
}

#[test]
fn six_way_smt_runs_and_keeps_scaling_throughput() {
    // Memory-bound code is where deep SMT keeps paying off.
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let p = spec::astar_like();
    let duo = run_multiprogram(&chip, &p, &[(0, 0), (0, 1)]);
    let six = run_multiprogram(&chip, &p, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
    let thr2: f64 = duo.threads.iter().map(|t| t.ipc(BUDGET)).sum();
    let thr6: f64 = six.threads.iter().map(|t| t.ipc(BUDGET)).sum();
    assert!(thr6 > thr2, "6-way SMT {thr6} should beat 2-way {thr2}");
}

#[test]
fn time_sharing_without_smt_halves_throughput() {
    let mut chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66).without_smt();
    // Short quanta so several switches fall inside the tiny test budget.
    chip.quantum_cycles = 3_000;
    chip.switch_penalty_cycles = 300;
    let p = spec::hmmer_like();
    let solo = solo_ipc(&chip, &p);
    // Two threads pinned to the same single context: round-robin quanta.
    let duo = run_multiprogram(&chip, &p, &[(0, 0), (0, 0)]);
    for t in &duo.threads {
        let ipc = t.ipc(BUDGET);
        assert!(
            ipc < solo * 0.65,
            "time-shared IPC {ipc} should be about half of solo {solo}"
        );
    }
}

#[test]
fn mispredicts_hurt() {
    let mut low = spec::hmmer_like();
    low.mispredict_rate = 0.0;
    let mut high = low.clone();
    high.mispredict_rate = 0.15;
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let a = solo_ipc(&chip, &low);
    let b = solo_ipc(&chip, &high);
    assert!(b < a * 0.93, "mispredicts {b} vs clean {a}");
}

#[test]
fn threads_on_separate_cores_outrun_smt_sharing() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let p = spec::gcc_like();
    let spread = run_multiprogram(&chip, &p, &[(0, 0), (1, 0)]);
    let packed = run_multiprogram(&chip, &p, &[(0, 0), (0, 1)]);
    let thr_spread: f64 = spread.threads.iter().map(|t| t.ipc(BUDGET)).sum();
    let thr_packed: f64 = packed.threads.iter().map(|t| t.ipc(BUDGET)).sum();
    assert!(
        thr_spread > thr_packed * 1.15,
        "spread {thr_spread} vs packed {thr_packed}"
    );
}

#[test]
fn determinism_across_runs() {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let p = spec::bzip2_like();
    let a = run_multiprogram(&chip, &p, &[(0, 0), (1, 0), (0, 1)]);
    let b = run_multiprogram(&chip, &p, &[(0, 0), (1, 0), (0, 1)]);
    assert_eq!(a, b);
}

#[test]
fn unpinned_thread_is_an_error() {
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);
    sim.add_thread(ThreadProgram::multiprogram(
        InstrStream::new(&spec::hmmer_like(), 0, 1),
        1000,
    ));
    assert_eq!(sim.run(), Err(RunError::UnassignedThread(0)));
}

// ---------- multi-threaded (segmented) workloads ----------

/// Instantiate an app and pin threads one per context, round-robin over
/// cores first (spread-before-SMT).
fn run_parsec(
    chip: &ChipConfig,
    app: &tlpsim_workloads::ParsecApp,
    n_threads: usize,
    phase_instrs: u64,
) -> tlpsim_uarch::RunResult {
    let w = app.instantiate(n_threads, phase_instrs, 7);
    let mut sim = MultiCore::new(chip);
    let n_cores = chip.cores.len();
    let shared_base = 0x4000_0000_0000u64;
    let max_barrier = w
        .threads
        .iter()
        .flatten()
        .filter_map(|s| match s {
            Segment::Barrier { id } => Some(*id),
            _ => None,
        })
        .max()
        .unwrap();
    for (i, segs) in w.threads.iter().enumerate() {
        let stream = InstrStream::new(&w.profile, i as u64, 99).with_shared_region(
            shared_base,
            w.shared_bytes,
            w.shared_frac,
        );
        let t = sim.add_thread(ThreadProgram::segmented(stream, segs.clone()));
        let core = i % n_cores;
        let slot = i / n_cores;
        let slots = chip.cores[core].smt_contexts as usize;
        sim.pin(t, core, slot % slots);
    }
    sim.set_roi_barriers(0, max_barrier);
    sim.prewarm();
    sim.run().expect("parsec run must complete")
}

#[test]
fn parsec_app_completes_and_blocks_at_barriers() {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let app = parsec::streamcluster_like();
    let r = run_parsec(&chip, &app, 8, 4_000);
    assert!(r.threads.iter().all(|t| t.finish_cycle.is_some()));
    // Imbalance + barriers mean someone must have waited.
    let total_blocked: u64 = r.threads.iter().map(|t| t.blocked_cycles).sum();
    assert!(total_blocked > 0, "no barrier waiting observed");
}

#[test]
fn active_thread_histogram_varies_for_imbalanced_app() {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let app = parsec::dedup_like(); // high imbalance
    let r = run_parsec(&chip, &app, 8, 6_000);
    let recorded: u64 = r.active_histogram.iter().sum();
    assert!(recorded > 0, "ROI histogram empty");
    // Full-activity is not 100% of the time for an imbalanced app.
    let full = r.active_fraction(8);
    assert!(full < 0.95, "dedup-like should not be fully active: {full}");
}

#[test]
fn critical_sections_serialize() {
    // An app that is one big critical section cannot speed up with
    // more threads.
    let mut app = parsec::blackscholes_like();
    app.cs_frac = 0.95;
    app.max_parallelism = 64;
    app.imbalance = 0.0;
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let r2 = run_parsec(&chip, &app, 2, 8_000);
    let r4 = run_parsec(&chip, &app, 4, 8_000);
    // 4 threads do the same serialized work; no big win possible.
    let speedup = r2.cycles as f64 / r4.cycles as f64;
    assert!(
        speedup < 1.3,
        "serialized app should not scale: speedup {speedup}"
    );
}

#[test]
fn scalable_app_scales() {
    let mut app = parsec::blackscholes_like();
    app.imbalance = 0.0;
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let r1 = run_parsec(&chip, &app, 1, 24_000);
    let r4 = run_parsec(&chip, &app, 4, 24_000);
    let speedup = r1.cycles as f64 / r4.cycles as f64;
    assert!(
        speedup > 2.0,
        "blackscholes-like should scale to 4 cores: {speedup}"
    );
}

#[test]
fn serial_phase_runs_single_threaded() {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let app = parsec::bodytrack_like(); // serial_frac = 0.18
    let w = app.instantiate(4, 10_000, 3);
    assert!(w.serial_init > 0);
    let r = run_parsec(&chip, &app, 4, 10_000);
    // During the serial phases only one thread is runnable; the ROI
    // histogram excludes them, so instead check blocked time exists for
    // workers but thread 0 commits more instructions.
    let c0 = r.threads[0].committed;
    let cmax = r.threads[1..].iter().map(|t| t.committed).max().unwrap();
    assert!(c0 > cmax, "thread 0 must carry the serial work");
}
