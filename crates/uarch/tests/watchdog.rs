//! The stall watchdog: a schedule that cannot make progress must abort
//! with `RunError::Stalled` and a usable diagnostic snapshot instead of
//! spinning forever.

use tlpsim_uarch::{
    ChipConfig, CoreConfig, MultiCore, ProgramState, RunError, ThreadProgram,
    DEFAULT_WATCHDOG_CYCLES,
};
use tlpsim_workloads::{spec, InstrStream, Segment};

/// Two segmented threads where only one ever reaches barrier 0: the
/// barrier needs both segmented threads, so the waiter starves.
fn stalled_sim() -> MultiCore {
    let chip = ChipConfig::homogeneous(2, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);
    let profile = spec::gcc_like();
    let waiter = sim.add_thread(ThreadProgram::segmented(
        InstrStream::new(&profile, 0, 1),
        vec![
            Segment::Compute { instrs: 500 },
            Segment::Barrier { id: 0 },
            Segment::Compute { instrs: 500 },
        ],
    ));
    let runner = sim.add_thread(ThreadProgram::segmented(
        InstrStream::new(&profile, 1, 2),
        vec![Segment::Compute { instrs: 500 }],
    ));
    sim.pin(waiter, 0, 0);
    sim.pin(runner, 1, 0);
    sim
}

#[test]
fn watchdog_fires_on_starved_barrier() {
    let mut sim = stalled_sim();
    sim.set_watchdog(20_000);
    match sim.run() {
        Err(RunError::Stalled { cycle, snapshot }) => {
            // Fires promptly: well before the old hard-coded 3M window.
            assert!(cycle < 200_000, "stall declared only at cycle {cycle}");
            assert_eq!(snapshot.window, 20_000);
            assert!(snapshot.committed >= 1_000, "both compute phases ran");
            // The snapshot names the starved barrier: 1 of 2 arrived.
            assert_eq!(snapshot.barriers, vec![(0, 1, 2)]);
            // The waiter is visible as blocked at barrier 0.
            let blocked = snapshot
                .contexts
                .iter()
                .filter(|c| c.state == Some(ProgramState::AtBarrier(0)))
                .count();
            assert_eq!(blocked, 1, "snapshot: {snapshot}");
            // Nothing is in flight anywhere: the chip is truly idle.
            assert!(snapshot.contexts.iter().all(|c| c.pending_mem_ops == 0));
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}

#[test]
fn watchdog_window_is_configurable() {
    let mut fast = stalled_sim();
    fast.set_watchdog(5_000);
    let mut slow = stalled_sim();
    slow.set_watchdog(400_000);
    let fast_cycle = match fast.run() {
        Err(RunError::Stalled { cycle, .. }) => cycle,
        other => panic!("expected Stalled, got {other:?}"),
    };
    let slow_cycle = match slow.run() {
        Err(RunError::Stalled { cycle, .. }) => cycle,
        other => panic!("expected Stalled, got {other:?}"),
    };
    assert!(
        fast_cycle < slow_cycle,
        "5k window fired at {fast_cycle}, 400k window at {slow_cycle}"
    );
}

#[test]
fn healthy_run_is_untouched_by_a_tight_watchdog() {
    let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);
    let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
        InstrStream::new(&spec::hmmer_like(), 0, 1),
        0,
        5_000,
    ));
    sim.pin(t, 0, 0);
    sim.prewarm();
    sim.set_watchdog(50_000);
    let run = sim.run().expect("healthy run completes");
    assert!(run.threads[0].finish_cycle.is_some());
}

#[test]
fn default_window_matches_constant() {
    // The default must stay generous enough for slow-but-live runs.
    assert_eq!(DEFAULT_WATCHDOG_CYCLES, 3_000_000);
}

/// Regression: a fast-forward larger than the watchdog window over a
/// zero-commit stretch must still raise `Stalled` — at exactly the
/// cycle the dense stepper would, with an identical snapshot. The
/// starved barrier quiesces the whole chip, so the skip engine's next
/// event is unbounded and the jump would otherwise sail past the
/// window.
#[test]
fn stall_is_bit_identical_under_fast_forward() {
    for window in [5_000u64, 20_000, 131_072, 400_000] {
        let mut fast = stalled_sim();
        fast.set_cycle_skipping(true);
        fast.set_watchdog(window);
        let mut dense = stalled_sim();
        dense.set_cycle_skipping(false);
        dense.set_watchdog(window);
        let ef = fast.run().expect_err("starved barrier must stall");
        let ed = dense.run().expect_err("starved barrier must stall");
        assert_eq!(
            ef, ed,
            "fast-forward stall diverged from dense at window={window}"
        );
    }
}

/// Regression: fast-forward must not bypass the power-of-two check
/// cadence. The dense stepper only inspects progress on cycles that
/// are multiples of the check period, so the reported stall cycle is
/// always aligned to it — skipped runs included.
#[test]
fn stall_cycle_respects_check_cadence() {
    let window = 20_000u64;
    // Mirrors the engine's cadence: (window/4) rounded up to a power
    // of two, capped at 64Ki cycles.
    let check_period = (window / 4).next_power_of_two().clamp(1, 0x1_0000);
    let mut sim = stalled_sim();
    sim.set_cycle_skipping(true);
    sim.set_watchdog(window);
    match sim.run() {
        Err(RunError::Stalled { cycle, .. }) => {
            assert_eq!(
                cycle % check_period,
                0,
                "stall at {cycle} not aligned to check period {check_period}"
            );
            assert!(
                sim.skipped_cycles() > 0,
                "quiescent chip should fast-forward"
            );
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}

/// Checkpoint/restore must re-arm the watchdog exactly: the progress
/// baselines (`last commits` / `last progress cycle`) travel inside the
/// snapshot and the check cadence is re-derived from the restored
/// window, so a run restored mid-starvation declares the stall at the
/// *same cycle* with the *same snapshot* as the uninterrupted run —
/// the restore neither resets the no-progress clock (which would delay
/// detection) nor forgets pre-checkpoint progress (which would
/// false-positive).
#[test]
fn watchdog_rearms_across_restore() {
    use tlpsim_uarch::RunStatus;
    let window = 20_000u64;
    let mk = |skip: bool| {
        let mut sim = stalled_sim();
        sim.set_cycle_skipping(skip);
        sim.set_watchdog(window);
        sim
    };
    for skip in [false, true] {
        let reference = mk(skip).run().expect_err("starved barrier must stall");
        let stall_cycle = match &reference {
            RunError::Stalled { cycle, .. } => *cycle,
            other => panic!("expected Stalled, got {other:?}"),
        };
        // Pause both while threads still commit and deep into the
        // no-progress stretch (past half the window).
        for pause in [500, stall_cycle - window / 2] {
            let mut sim = mk(skip);
            match sim.run_slice(1 << 40, pause) {
                Ok(RunStatus::Paused) => {}
                other => panic!("expected pause at {pause}, got {other:?}"),
            }
            let bytes = sim.save_state();
            let mut restored = mk(skip);
            restored.restore_state(&bytes).expect("restore");
            let e = restored.run().expect_err("restored run must still stall");
            assert_eq!(
                e, reference,
                "restore at {pause} (skip={skip}) changed the stall verdict"
            );
        }
    }
}

/// A cycle limit hit inside a skipped window must report the same
/// `CycleLimit` error as the dense stepper, at the same final cycle.
#[test]
fn cycle_limit_is_bit_identical_under_fast_forward() {
    // mcf-like misses constantly, so fast-forward is active when the
    // limit lands mid-window.
    let mk = || {
        let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
        let mut sim = MultiCore::new(&chip);
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&spec::mcf_like(), 0, 3),
            0,
            1_000_000,
        ));
        sim.pin(t, 0, 0);
        sim.prewarm();
        sim
    };
    let mut fast = mk();
    fast.set_cycle_skipping(true);
    let mut dense = mk();
    dense.set_cycle_skipping(false);
    let limit = 30_000;
    let ef = fast.run_with_limit(limit).expect_err("limit must trip");
    let ed = dense.run_with_limit(limit).expect_err("limit must trip");
    assert_eq!(ef, ed, "cycle-limit behaviour diverged");
    assert_eq!(fast.now(), dense.now(), "final cycle diverged");
}
