//! Profiling driver: run the bench sweep's compute-bound cell with the
//! dense stepper a few times (`gprofng collect app` / `perf record`
//! target). Not a benchmark — it exists so the dense path can be
//! profiled without the sweep harness around it.

use tlpsim_uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
use tlpsim_workloads::{spec, InstrStream};

fn compute_bound_sim(budget: u64) -> MultiCore {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);
    for i in 0..8u64 {
        let p = if i % 2 == 0 {
            spec::hmmer_like()
        } else {
            spec::gamess_like()
        };
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&p, i, 31),
            1_000,
            budget,
        ));
        sim.pin(t, (i % 4) as usize, (i / 4) as usize);
    }
    sim.prewarm();
    sim
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let dense = std::env::args().nth(2).as_deref() != Some("skip");
    for _ in 0..reps {
        let mut sim = compute_bound_sim(120_000);
        sim.set_cycle_skipping(!dense);
        let t0 = std::time::Instant::now();
        let r = sim.run().expect("completes");
        println!(
            "cycles={} instrs={} wall={:.3}s",
            r.cycles,
            r.threads.iter().map(|t| t.committed).sum::<u64>(),
            t0.elapsed().as_secs_f64()
        );
    }
}
