//! The multi-core engine: steps every core cycle by cycle and provides
//! the OS-level behaviour of the paper's setup — thread-to-context
//! assignment, barrier and lock synchronization (blocked threads yield
//! their hardware context), round-robin time-sharing when several
//! software threads share one context, and the active-thread histogram.
//!
//! ## Event-driven cycle skipping
//!
//! Memory-bound regions leave every hardware context waiting on a fill
//! whose arrival cycle is already known (the memory system computes
//! completion times at access time). Instead of burning one loop
//! iteration per quiescent cycle, the engine asks every core for its
//! earliest possible next event ([`CoreModel::next_event`]) — the
//! minimum over in-flight completion times, fetch unblock times and
//! scheduler quantum expiries — and jumps `now` directly to the cycle
//! before it, replaying the skipped span's bookkeeping (cycle counters,
//! the active-thread histogram, round-robin arbiter rotation, quantum
//! ticks, watchdog checks) in closed form. Results are **bit-identical**
//! to dense stepping (enforced by `tests/equivalence.rs`); set
//! `TLPSIM_NO_SKIP=1` or call
//! [`set_cycle_skipping`](MultiCore::set_cycle_skipping) to force the
//! legacy dense stepper when debugging.

use tlpsim_mem::{snap_ensure, Cycle, FastMap, MemorySystem, SnapError, SnapReader, SnapWriter};
use tlpsim_trace::{NopSink, TraceSink};

use crate::config::ChipConfig;
use crate::core_model::{CoreModel, Drained, Pending};
use crate::program::{ProgramState, ThreadCtl, ThreadProgram};
use crate::snapio::SnapshotSink;
use crate::stats::{RunResult, ThreadStats};
use crate::ThreadId;

/// Default watchdog window: declare a stall if no instruction commits
/// for this many cycles.
pub const DEFAULT_WATCHDOG_CYCLES: Cycle = 3_000_000;

/// `TLPSIM_NO_SKIP=1` (any value other than `0`/empty) forces the
/// legacy dense stepper — the debugging escape hatch.
fn no_skip_env() -> bool {
    std::env::var("TLPSIM_NO_SKIP")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// State of one hardware context at the moment a stall was declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSnapshot {
    /// Core index.
    pub core: usize,
    /// SMT slot index within the core.
    pub slot: usize,
    /// Thread currently resident on the context, if any.
    pub resident: Option<ThreadId>,
    /// Scheduling state of the resident thread.
    pub state: Option<ProgramState>,
    /// Software threads queued on this context (time-sharing).
    pub queued_threads: usize,
    /// Instructions occupying this context's ROB partition.
    pub rob_occupancy: usize,
    /// Memory operations in flight (unissued or awaiting the hierarchy).
    pub pending_mem_ops: usize,
}

/// State of one simulated lock at the moment a stall was declared
/// (grant pointer + waiter queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSnapshot {
    /// Lock id.
    pub id: u32,
    /// Thread currently granted the lock.
    pub held_by: Option<ThreadId>,
    /// Threads queued behind the grant, in arrival order.
    pub waiters: Vec<ThreadId>,
}

/// Diagnostic snapshot attached to [`RunError::Stalled`]: everything
/// needed to see *why* nothing commits — per-context ROB occupancy and
/// pending memory operations, plus barrier arrival counts and lock
/// grant pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSnapshot {
    /// Cycle at which the stall was declared.
    pub cycle: Cycle,
    /// The no-commit window that expired.
    pub window: Cycle,
    /// Instructions committed chip-wide up to the stall.
    pub committed: u64,
    /// Per-context state, in (core, slot) order.
    pub contexts: Vec<ContextSnapshot>,
    /// Open barriers as `(id, arrived, needed)`.
    pub barriers: Vec<(u32, usize, usize)>,
    /// Lock grant state.
    pub locks: Vec<LockSnapshot>,
}

impl std::fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "stalled at cycle {} ({} commits total; no commit for {} cycles)",
            self.cycle, self.committed, self.window
        )?;
        for c in &self.contexts {
            writeln!(
                f,
                "  core {}.{}: resident={:?} state={:?} queued={} rob={} pending_mem={}",
                c.core,
                c.slot,
                c.resident,
                c.state,
                c.queued_threads,
                c.rob_occupancy,
                c.pending_mem_ops
            )?;
        }
        for (id, arrived, needed) in &self.barriers {
            writeln!(f, "  barrier {id}: {arrived}/{needed} arrived")?;
        }
        for l in &self.locks {
            writeln!(
                f,
                "  lock {}: held_by={:?} waiters={:?}",
                l.id, l.held_by, l.waiters
            )?;
        }
        Ok(())
    }
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A thread was added but never pinned to a hardware context.
    UnassignedThread(ThreadId),
    /// No instruction committed within the watchdog window — the
    /// schedule stalled (e.g. a barrier whose participants cannot all
    /// run). Carries a diagnostic snapshot of the whole chip.
    Stalled {
        /// Cycle at which the stall was declared.
        cycle: Cycle,
        /// Chip state at the moment of the stall.
        snapshot: Box<StallSnapshot>,
    },
    /// The cycle limit was exceeded.
    CycleLimit {
        /// The limit that was hit.
        limit: Cycle,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnassignedThread(t) => write!(f, "thread {t} was never pinned"),
            RunError::Stalled { cycle, snapshot } => {
                write!(f, "no forward progress by cycle {cycle}: {snapshot}")
            }
            RunError::CycleLimit { limit } => write!(f, "exceeded cycle limit {limit}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Outcome of [`MultiCore::run_slice`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Every thread reached its finish point; the run is complete.
    Done(RunResult),
    /// The slice boundary was reached with the run still live. Call
    /// [`run_slice`](MultiCore::run_slice) again — in this process or
    /// after a checkpoint/restore round-trip — to continue; the final
    /// result is bit-identical to an unsliced run.
    Paused,
}

/// Version byte of the engine snapshot format (bumped on any wire
/// change so stale checkpoint files fail loudly instead of decoding
/// into garbage).
const SNAP_VERSION: u64 = 1;

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<ThreadId>,
    waiters: std::collections::VecDeque<ThreadId>,
}

/// The simulated chip: cores + memory + software threads.
///
/// Generic over a [`TraceSink`] that receives CPI-stack attributions
/// and structural events from every layer. The default [`NopSink`]
/// monomorphizes all instrumentation away, so `MultiCore` (without a
/// type argument) is the plain, uninstrumented simulator; build with
/// [`with_sink`](Self::with_sink) to record.
#[derive(Debug)]
pub struct MultiCore<S: TraceSink = NopSink> {
    chip: ChipConfig,
    cores: Vec<CoreModel>,
    mem: MemorySystem,
    threads: Vec<ThreadCtl>,
    blocked_since: Vec<Cycle>,
    barriers: FastMap<u32, usize>,
    locks: FastMap<u32, LockState>,
    n_segmented: usize,
    runnable: usize,
    now: Cycle,
    hist: Vec<u64>,
    roi_barriers: Option<(u32, u32)>,
    recording: bool,
    events: Vec<Drained>,
    /// Second buffer the per-cycle `events` are swapped into while they
    /// resolve, so both retain their capacity across event cycles and
    /// the steady-state step never allocates.
    events_scratch: Vec<Drained>,
    /// Chip-wide committed-instruction total, maintained incrementally
    /// from each core's per-cycle commit count (replaces an O(threads)
    /// re-sum every cycle in the run loop's watchdog and skip gates).
    total_committed: u64,
    watchdog_window: Cycle,
    /// Fast-forward over quiescent cycles (default on; disabled by
    /// `TLPSIM_NO_SKIP=1` or [`set_cycle_skipping`](Self::set_cycle_skipping)).
    skip_enabled: bool,
    /// Cycles covered by fast-forward jumps instead of dense steps.
    skipped_cycles: Cycle,
    /// Number of fast-forward jumps taken.
    skip_windows: u64,
    /// Cached [`MemorySystem::next_event`] result (`Cycle::MAX` = none)
    /// and the fills version it was computed at.
    mem_ev_cache: Cycle,
    mem_ev_version: u64,
    /// Watchdog baseline: commit total at the last observed progress.
    wd_last_commits: u64,
    /// Cycle of the last observed progress (watchdog baseline).
    wd_last_cycle: Cycle,
    /// Commit total at the previous skip-gate evaluation.
    skip_prev_committed: u64,
    /// A logical run is in progress: a paused slice resumes without
    /// re-initializing the histogram and watchdog baselines. Loop
    /// state that used to live in `run_with_limit` locals is hoisted
    /// into the fields above so a checkpoint taken between slices
    /// captures it.
    run_active: bool,
    /// Trace sink receiving cycle attributions and structural events.
    sink: S,
}

impl MultiCore<NopSink> {
    /// Build an idle, uninstrumented chip.
    pub fn new(chip: &ChipConfig) -> Self {
        Self::with_sink(chip, NopSink)
    }
}

impl<S: TraceSink> MultiCore<S> {
    /// Build an idle chip recording into `sink`.
    pub fn with_sink(chip: &ChipConfig, sink: S) -> Self {
        let cores = chip
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| CoreModel::new(*c, i, chip.quantum_cycles))
            .collect();
        MultiCore {
            cores,
            mem: MemorySystem::new(&chip.memory),
            threads: Vec::new(),
            blocked_since: Vec::new(),
            barriers: FastMap::default(),
            locks: FastMap::default(),
            n_segmented: 0,
            runnable: 0,
            now: 0,
            hist: Vec::new(),
            roi_barriers: None,
            recording: true,
            events: Vec::new(),
            events_scratch: Vec::new(),
            total_committed: 0,
            watchdog_window: DEFAULT_WATCHDOG_CYCLES,
            skip_enabled: !no_skip_env(),
            skipped_cycles: 0,
            skip_windows: 0,
            mem_ev_cache: 0,
            mem_ev_version: u64::MAX,
            wd_last_commits: 0,
            wd_last_cycle: 0,
            skip_prev_committed: 0,
            run_active: false,
            sink,
            chip: chip.clone(),
        }
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the chip and return the sink with everything it
    /// recorded.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Enable or disable event-driven cycle skipping (the fast-forward
    /// over provably-quiescent cycles). On by default; results are
    /// bit-identical either way, so this only exists for debugging and
    /// for the differential test harness. The `TLPSIM_NO_SKIP=1`
    /// environment variable forces it off at construction time.
    pub fn set_cycle_skipping(&mut self, enabled: bool) {
        self.skip_enabled = enabled && !no_skip_env();
    }

    /// Whether event-driven cycle skipping is active.
    pub fn cycle_skipping(&self) -> bool {
        self.skip_enabled
    }

    /// Cycles covered by fast-forward jumps so far (for skip-ratio
    /// reporting; deliberately *not* part of [`RunResult`], which must
    /// stay bit-identical between the skipping and dense engines).
    pub fn skipped_cycles(&self) -> Cycle {
        self.skipped_cycles
    }

    /// Number of fast-forward jumps taken so far.
    pub fn skip_windows(&self) -> u64 {
        self.skip_windows
    }

    /// Configure the stall watchdog: if no instruction commits anywhere
    /// on the chip for `window` cycles, [`run`](Self::run) aborts with
    /// [`RunError::Stalled`] carrying a [`StallSnapshot`] instead of
    /// spinning forever. The default is [`DEFAULT_WATCHDOG_CYCLES`].
    pub fn set_watchdog(&mut self, window: Cycle) {
        self.watchdog_window = window.max(1);
    }

    /// Register a software thread; returns its id. The thread still has
    /// to be [`pin`](Self::pin)ned to a hardware context.
    pub fn add_thread(&mut self, program: ThreadProgram) -> ThreadId {
        if program.budget().is_none() {
            self.n_segmented += 1;
        }
        self.threads.push(ThreadCtl::new(program));
        self.blocked_since.push(0);
        self.runnable += 1;
        self.threads.len() - 1
    }

    /// Pin thread `tid` to `(core, slot)`. Several threads pinned to the
    /// same slot time-share it round-robin (the no-SMT overload case).
    ///
    /// # Panics
    /// Panics if the ids are out of range.
    pub fn pin(&mut self, tid: ThreadId, core: usize, slot: usize) {
        let quantum = self.chip.quantum_cycles;
        let s = &mut self.cores[core].slots_mut()[slot];
        s.threads.push_back(tid);
        if s.threads.len() == 1 {
            s.on_switch_in(0, 0, quantum);
        }
        let t = &mut self.threads[tid];
        t.core = core;
        t.slot = slot;
    }

    /// Record the active-thread histogram only between the releases of
    /// these two barrier ids (the ROI of a multi-threaded app).
    pub fn set_roi_barriers(&mut self, first: u32, last: u32) {
        self.roi_barriers = Some((first, last));
        self.recording = false;
    }

    /// Functionally warm every thread's cache footprint (SimPoint-style
    /// warming), then zero the memory counters. Call once, before
    /// [`run`](Self::run). Threads must already be pinned.
    ///
    /// Warming walks each thread's code, cold-region tail, shared region
    /// and hot set through the real tag arrays of the core it is pinned
    /// to, so capacity sharing between SMT co-runners is respected.
    pub fn prewarm(&mut self) {
        // Interleave threads round-robin so no single thread's footprint
        // monopolizes the recency order of shared caches.
        let walks: Vec<(usize, Vec<(bool, tlpsim_mem::Addr)>)> = self
            .threads
            .iter()
            .map(|t| (t.core, t.program.prewarm_addrs()))
            .collect();
        let longest = walks.iter().map(|(_, w)| w.len()).max().unwrap_or(0);
        for i in 0..longest {
            for (core, walk) in &walks {
                if let Some(&(is_code, addr)) = walk.get(i) {
                    let kind = if is_code {
                        tlpsim_mem::AccessKind::Fetch
                    } else {
                        tlpsim_mem::AccessKind::Load
                    };
                    self.mem.prewarm_line(*core, kind, addr);
                }
            }
        }
        self.mem.reset_counters();
    }

    /// Run until every thread reached its finish point.
    ///
    /// # Errors
    /// Returns [`RunError`] on unpinned threads, deadlock, or when an
    /// internal safety cycle limit (2^40) is exceeded.
    pub fn run(&mut self) -> Result<RunResult, RunError> {
        self.run_with_limit(1 << 40)
    }

    /// Like [`run`](Self::run) with an explicit cycle limit.
    ///
    /// # Errors
    /// Returns [`RunError`] on unpinned threads, deadlock, or when
    /// `limit` is exceeded.
    pub fn run_with_limit(&mut self, limit: Cycle) -> Result<RunResult, RunError> {
        match self.run_slice(limit, Cycle::MAX)? {
            RunStatus::Done(r) => Ok(r),
            RunStatus::Paused => unreachable!("stop_at == Cycle::MAX never pauses"),
        }
    }

    /// Run until every thread finishes, `limit` is exceeded, or the
    /// simulated clock reaches `stop_at` — whichever comes first.
    ///
    /// Returning [`RunStatus::Paused`] at a slice boundary leaves the
    /// engine in a resumable state: call `run_slice` again to
    /// continue, or [`save_state`](Self::save_state) /
    /// [`restore_state`](Self::restore_state) around the pause to
    /// checkpoint. Slicing is invisible to the simulation — the final
    /// [`RunResult`] is bit-identical to an unsliced run regardless of
    /// where (or how often) it pauses, because a dense step of a
    /// provably-quiet cycle performs exactly the mutations
    /// fast-forwarding it would (the §9 slot-event contract), and the
    /// watchdog baselines live in fields captured by checkpoints.
    ///
    /// The loop alternates dense stepping with event-driven
    /// fast-forward: after each dense cycle it computes the earliest
    /// cycle at which *any* component can act ([`Self::next_event`])
    /// and bulk-skips the provably-idle span in between, replaying the
    /// per-cycle bookkeeping (including watchdog checks at the exact
    /// power-of-two cadence the dense loop uses) in closed form.
    /// Results are bit-identical to dense stepping.
    ///
    /// # Errors
    /// Returns [`RunError`] on unpinned threads, deadlock, or when
    /// `limit` is exceeded.
    pub fn run_slice(&mut self, limit: Cycle, stop_at: Cycle) -> Result<RunStatus, RunError> {
        if !self.run_active {
            for (i, t) in self.threads.iter().enumerate() {
                if t.core == usize::MAX {
                    return Err(RunError::UnassignedThread(i));
                }
            }
            self.hist = vec![0; self.threads.len() + 1];
            self.wd_last_commits = 0;
            self.wd_last_cycle = 0;
            // Gate for the quiescence scan: a cycle that committed
            // instructions is certainly busy, so `next_event` would
            // return `now + 1` and even the cached per-slot scan would
            // be wasted. `total_committed` is maintained incrementally
            // by `step`, so both this gate and the watchdog read it
            // for free.
            self.total_committed = self.threads.iter().map(|t| t.committed).sum();
            self.skip_prev_committed = self.total_committed;
            self.run_active = true;
        }

        // Check cadence: cheap power-of-two mask, fine enough that the
        // watchdog fires within ~1.25x its window even for small windows.
        let check_mask = (self.watchdog_window / 4)
            .next_power_of_two()
            .clamp(1, 0x1_0000)
            - 1;
        let check_period = check_mask + 1;
        // Round `c` up to the next watchdog check cycle (`c & mask == 0`).
        let next_check = |c: Cycle| c.div_ceil(check_period) * check_period;
        while !self.finished() {
            if self.now >= stop_at {
                return Ok(RunStatus::Paused);
            }
            self.step();
            if self.now > limit {
                self.run_active = false;
                return Err(RunError::CycleLimit { limit });
            }
            if self.now & check_mask == 0 {
                let committed = self.total_committed;
                if committed == self.wd_last_commits {
                    if self.now - self.wd_last_cycle > self.watchdog_window {
                        self.run_active = false;
                        return Err(RunError::Stalled {
                            cycle: self.now,
                            snapshot: Box::new(self.stall_snapshot()),
                        });
                    }
                } else {
                    self.wd_last_commits = committed;
                    self.wd_last_cycle = self.now;
                }
            }

            // Only consider a jump while the run is still live: after
            // the final thread finishes, the loop must exit exactly
            // like the dense stepper (an empty chip has no events and
            // would otherwise "fast-forward" into a phantom stall).
            if !self.skip_enabled || self.finished() {
                continue;
            }
            let committed = self.total_committed;
            let progressed = committed != self.skip_prev_committed;
            self.skip_prev_committed = committed;
            if progressed {
                continue; // chip is visibly busy; don't bother scanning
            }
            // Fast-forward: earliest cycle at which anything can change.
            let event_at = self.next_event();
            if event_at <= self.now + 1 {
                continue; // busy next cycle; keep stepping densely
            }
            // Last provably-idle cycle we may jump to. `event_at` can be
            // `Cycle::MAX` (true deadlock: only the watchdog/limit end
            // the run), so cap by the cycle at which the dense loop
            // would return `CycleLimit` (it errors *after* executing
            // cycle `limit + 1`).
            let mut jump_to = event_at - 1;
            let mut outcome = None;
            if limit.saturating_add(1) <= jump_to {
                jump_to = limit + 1;
                outcome = Some(RunError::CycleLimit { limit });
            }
            if stop_at < jump_to {
                // Never jump past the slice boundary. The pause lands
                // mid-quiet-window; the remaining span is re-derived on
                // resume (dense steps of quiet cycles equal the
                // fast-forward, so the split is invisible). Any limit
                // outcome lies past the boundary too.
                jump_to = stop_at;
                outcome = None;
            }
            // Replay the watchdog checks the dense loop would run inside
            // the window, at the same mask cadence. Commit counts are
            // frozen across the window, so the dense sequence collapses
            // to: one progress update at the first check cycle (if there
            // was progress since the last check), then a stall at the
            // first check cycle more than a window past the last
            // progress point.
            if committed != self.wd_last_commits {
                let c0 = next_check(self.now + 1);
                if c0 <= jump_to {
                    self.wd_last_commits = committed;
                    self.wd_last_cycle = c0;
                }
            }
            if committed == self.wd_last_commits {
                let stall_at =
                    next_check((self.wd_last_cycle + self.watchdog_window + 1).max(self.now + 1));
                // The dense loop checks the limit before the watchdog,
                // so a stall can only be declared at cycles <= limit.
                if stall_at <= jump_to.min(limit) {
                    // The stall fires before the limit or the next event.
                    self.fast_forward(stall_at - self.now);
                    self.run_active = false;
                    return Err(RunError::Stalled {
                        cycle: self.now,
                        snapshot: Box::new(self.stall_snapshot()),
                    });
                }
            }
            if jump_to > self.now {
                self.fast_forward(jump_to - self.now);
            }
            if let Some(err) = outcome {
                self.run_active = false;
                return Err(err);
            }
        }
        self.run_active = false;
        Ok(RunStatus::Done(self.result()))
    }

    /// The earliest cycle `>= now + 1` at which any core or the memory
    /// system can act or change observable state. `Cycle::MAX` means
    /// nothing will ever happen again (a true deadlock — only the
    /// watchdog or the cycle limit ends the run).
    fn next_event(&mut self) -> Cycle {
        debug_assert!(self.events.is_empty(), "events must drain every cycle");
        let now = self.now;
        let mut ev = Cycle::MAX;
        for core in self.cores.iter_mut() {
            ev = ev.min(core.next_event(now, &self.threads));
            if ev <= now + 1 {
                return ev;
            }
        }
        // Defense in depth: never jump past an in-flight fill arrival.
        // Core-side state (`done_at`, `fetch_blocked_until`) already
        // mirrors every fill a core waits on, so this only tightens the
        // jump, never loosens it. The scan walks every in-flight fill,
        // so its result is cached until a new fill is recorded (the
        // fills version changes) or the cached arrival passes.
        let version = self.mem.fills_version();
        if version != self.mem_ev_version || self.mem_ev_cache <= now {
            self.mem_ev_cache = self.mem.next_event(now).unwrap_or(Cycle::MAX);
            self.mem_ev_version = version;
        }
        ev.min(self.mem_ev_cache).max(now + 1)
    }

    /// Jump `now` forward by `span` provably-idle cycles, replaying the
    /// bookkeeping dense stepping would have accumulated: per-core
    /// cycle/busy counters and arbiter rotation ([`CoreModel::fast_forward`]),
    /// the active-thread histogram, and the skip statistics.
    fn fast_forward(&mut self, span: Cycle) {
        let now = self.now;
        for core in self.cores.iter_mut() {
            core.fast_forward(now, span, &self.threads, &mut self.sink);
        }
        if self.recording {
            self.hist[self.runnable] += span;
        }
        self.now += span;
        self.skipped_cycles += span;
        self.skip_windows += 1;
    }

    /// Capture the diagnostic state attached to [`RunError::Stalled`].
    fn stall_snapshot(&self) -> StallSnapshot {
        let mut contexts = Vec::new();
        for (ci, core) in self.cores.iter().enumerate() {
            for (si, slot) in core.slots().iter().enumerate() {
                let resident = slot.resident();
                contexts.push(ContextSnapshot {
                    core: ci,
                    slot: si,
                    resident,
                    state: resident.map(|t| self.threads[t].state),
                    queued_threads: slot.threads.len(),
                    rob_occupancy: slot.rob_occupancy(),
                    pending_mem_ops: slot.pending_mem_ops(self.now),
                });
            }
        }
        let mut barriers: Vec<(u32, usize, usize)> = self
            .barriers
            .iter()
            .map(|(&id, &arrived)| (id, arrived, self.n_segmented))
            .collect();
        barriers.sort_unstable();
        let mut locks: Vec<LockSnapshot> = self
            .locks
            .iter()
            .map(|(&id, l)| LockSnapshot {
                id,
                held_by: l.held_by,
                waiters: l.waiters.iter().copied().collect(),
            })
            .collect();
        locks.sort_unstable_by_key(|l| l.id);
        StallSnapshot {
            cycle: self.now,
            window: self.watchdog_window,
            committed: self.threads.iter().map(|t| t.committed).sum(),
            contexts,
            barriers,
            locks,
        }
    }

    fn finished(&self) -> bool {
        self.threads.iter().all(|t| t.finish_cycle.is_some())
    }

    /// Advance the whole chip by one cycle.
    fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        if self.skip_enabled {
            // Per-core micro-skip: even on a busy chip cycle, most
            // cores usually have nothing to do. A core whose next
            // event lies beyond `now` provably mutates nothing this
            // cycle except the bulk-accumulable bookkeeping (the same
            // §9 contract that licenses whole-chip jumps), so replay
            // that in closed form instead of walking its pipeline.
            // Cross-core influences all flow through drain events
            // (resolved below, invalidating every cache) or through
            // shared-memory timing, which only matters on a core's own
            // next access — itself an event.
            let prev = now - 1;
            for core in self.cores.iter_mut() {
                if core.next_event(prev, &self.threads) > now {
                    core.fast_forward(prev, 1, &self.threads, &mut self.sink);
                } else {
                    self.total_committed += core.cycle(
                        now,
                        &mut self.mem,
                        &mut self.threads,
                        &mut self.events,
                        &mut self.sink,
                    );
                }
            }
        } else {
            for core in self.cores.iter_mut() {
                self.total_committed += core.cycle(
                    now,
                    &mut self.mem,
                    &mut self.threads,
                    &mut self.events,
                    &mut self.sink,
                );
            }
        }
        // Swap the drained events into the scratch buffer to resolve
        // them (resolve needs `&mut self`); both Vecs keep their
        // capacity, so event cycles stop re-allocating the buffer.
        let had_events = !self.events.is_empty();
        if had_events {
            std::mem::swap(&mut self.events, &mut self.events_scratch);
            for i in 0..self.events_scratch.len() {
                let ev = self.events_scratch[i];
                self.resolve(ev);
            }
            self.events_scratch.clear();
        }
        self.reschedule_slots();
        if had_events {
            // Thread-state transitions and context switches change
            // chip-global inputs (fetch eligibility, active-context
            // counts, slot residency) that every core's cached
            // next-event results may depend on. They all originate
            // from drain events, so this is the one invalidation
            // point.
            for core in self.cores.iter_mut() {
                core.invalidate_events();
            }
        }
        if self.recording {
            self.hist[self.runnable] += 1;
        }
    }

    fn set_state(&mut self, tid: ThreadId, state: ProgramState) {
        let old = self.threads[tid].state;
        if old == state {
            return;
        }
        let was_runnable = old == ProgramState::Runnable;
        let is_runnable = state == ProgramState::Runnable;
        if was_runnable && !is_runnable {
            self.runnable -= 1;
            self.blocked_since[tid] = self.now;
        } else if !was_runnable && is_runnable {
            self.runnable += 1;
            self.threads[tid].blocked_cycles += self.now - self.blocked_since[tid];
        }
        self.threads[tid].state = state;
    }

    fn resolve(&mut self, ev: Drained) {
        match ev.pending {
            Pending::Block(ProgramState::AtBarrier(id)) => {
                self.set_state(ev.tid, ProgramState::AtBarrier(id));
                let arrived = self.barriers.entry(id).or_insert(0);
                *arrived += 1;
                if *arrived == self.n_segmented {
                    self.barriers.remove(&id);
                    for t in 0..self.threads.len() {
                        if self.threads[t].state == ProgramState::AtBarrier(id) {
                            self.set_state(t, ProgramState::Runnable);
                        }
                    }
                    if let Some((first, last)) = self.roi_barriers {
                        if id == first {
                            self.recording = true;
                        }
                        if id == last {
                            self.recording = false;
                        }
                    }
                }
            }
            Pending::Block(ProgramState::WaitingLock(id)) => {
                let lock = self.locks.entry(id).or_default();
                if lock.held_by.is_none() {
                    lock.held_by = Some(ev.tid);
                    self.threads[ev.tid].program.grant_lock();
                    // Thread keeps running; the grant lets the next fetch
                    // enter the critical section.
                } else {
                    lock.waiters.push_back(ev.tid);
                    self.set_state(ev.tid, ProgramState::WaitingLock(id));
                }
            }
            Pending::Block(ProgramState::Runnable) => {
                // Critical-section exit: release the lock and hand it on.
                if let Some(id) = self.threads[ev.tid].program.take_release() {
                    let lock = self.locks.entry(id).or_default();
                    debug_assert_eq!(lock.held_by, Some(ev.tid));
                    lock.held_by = None;
                    if let Some(next) = lock.waiters.pop_front() {
                        lock.held_by = Some(next);
                        self.threads[next].program.grant_lock();
                        self.set_state(next, ProgramState::Runnable);
                    }
                }
            }
            Pending::Block(ProgramState::Finished) => unreachable!("not a block reason"),
            Pending::Finish => {
                self.set_state(ev.tid, ProgramState::Finished);
                if self.threads[ev.tid].finish_cycle.is_none() {
                    self.threads[ev.tid].finish_cycle = Some(self.now);
                }
                // Free the context for any queued thread.
                let quantum = self.chip.quantum_cycles;
                let penalty = self.chip.switch_penalty_cycles;
                let now = self.now;
                let s = &mut self.cores[ev.core].slots_mut()[ev.slot];
                debug_assert_eq!(s.resident(), Some(ev.tid));
                s.threads.pop_front();
                if !s.threads.is_empty() {
                    s.on_switch_in(now, penalty, quantum);
                }
            }
            Pending::Switch => {
                let quantum = self.chip.quantum_cycles;
                let penalty = self.chip.switch_penalty_cycles;
                let now = self.now;
                let s = &mut self.cores[ev.core].slots_mut()[ev.slot];
                if s.threads.len() > 1 {
                    s.threads.rotate_left(1);
                }
                s.on_switch_in(now, penalty, quantum);
            }
        }
    }

    /// If a slot's resident thread is blocked while another queued
    /// thread is runnable, rotate the runnable one in (the OS would).
    fn reschedule_slots(&mut self) {
        let quantum = self.chip.quantum_cycles;
        let penalty = self.chip.switch_penalty_cycles;
        let now = self.now;
        for core in self.cores.iter_mut() {
            for s in core.slots_mut() {
                if s.threads.len() < 2 || s.pending.is_some() || !s.is_drained() {
                    continue;
                }
                let resident_runnable = s
                    .resident()
                    .map(|t| self.threads[t].state == ProgramState::Runnable)
                    .unwrap_or(false);
                if resident_runnable {
                    continue;
                }
                if let Some(pos) = s
                    .threads
                    .iter()
                    .position(|&t| self.threads[t].state == ProgramState::Runnable)
                {
                    s.threads.rotate_left(pos);
                    s.on_switch_in(now, penalty, quantum);
                }
            }
        }
    }

    fn result(&self) -> RunResult {
        RunResult {
            cycles: self.now,
            threads: self
                .threads
                .iter()
                .map(|t| ThreadStats {
                    committed: t.committed,
                    start_cycle: t.start_cycle,
                    finish_cycle: t.finish_cycle,
                    blocked_cycles: t.blocked_cycles,
                })
                .collect(),
            cores: self.cores.iter().map(|c| c.stats().clone()).collect(),
            mem: self.mem.stats(),
            active_histogram: self.hist.clone(),
        }
    }

    /// The configuration this chip was built from.
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Hash of everything a checkpoint does *not* serialize: the chip
    /// configuration, thread count and placement, program shapes and
    /// the ROI window. Restoring into a chip whose fingerprint differs
    /// is refused — the snapshot's mutable state would be meaningless.
    fn structural_fingerprint(&self) -> u64 {
        let placements: Vec<(usize, usize, Option<u64>, Option<u64>)> = self
            .threads
            .iter()
            .map(|t| (t.core, t.slot, t.program.warmup(), t.program.budget()))
            .collect();
        let desc = format!(
            "{:?}|{}|{}|{:?}|{:?}",
            self.chip,
            self.threads.len(),
            self.n_segmented,
            self.roi_barriers,
            placements
        );
        fnv1a64(desc.as_bytes())
    }
}

impl<S: TraceSink + SnapshotSink> MultiCore<S> {
    /// Serialize the complete mutable simulation state — every core's
    /// pipeline and scheduler, the memory hierarchy, thread programs,
    /// synchronization state, watchdog baselines and the trace sink —
    /// such that [`restore_state`](Self::restore_state) into a
    /// structurally-identical chip continues **bit-identically** to a
    /// run that was never interrupted (DESIGN.md §12).
    ///
    /// Structure (configs, thread placement) is not serialized; the
    /// caller rebuilds it deterministically and the restore validates
    /// a structural fingerprint plus per-section invariants.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.marker(b"TLPS");
        w.u64(SNAP_VERSION);
        w.u64(self.structural_fingerprint());
        w.u64(self.now);
        w.usize(self.runnable);
        w.u64(self.total_committed);
        w.u64(self.watchdog_window);
        w.bool(self.recording);
        w.bool(self.run_active);
        w.u64(self.wd_last_commits);
        w.u64(self.wd_last_cycle);
        w.u64(self.skip_prev_committed);
        // Diagnostic only (excluded from RunResult), but serialized so
        // skip-ratio reporting stays meaningful across a restore.
        w.u64(self.skipped_cycles);
        w.u64(self.skip_windows);
        w.u64_slice(&self.hist);
        w.u64_slice(&self.blocked_since);
        // Hash maps are serialized in sorted key order so identical
        // states always produce identical bytes.
        let mut barriers: Vec<(u32, usize)> =
            self.barriers.iter().map(|(&id, &n)| (id, n)).collect();
        barriers.sort_unstable();
        w.usize(barriers.len());
        for (id, arrived) in barriers {
            w.u32(id);
            w.usize(arrived);
        }
        let mut locks: Vec<(u32, &LockState)> = self.locks.iter().map(|(&id, l)| (id, l)).collect();
        locks.sort_unstable_by_key(|&(id, _)| id);
        w.usize(locks.len());
        for (id, l) in locks {
            w.u32(id);
            w.opt_u64(l.held_by.map(|t| t as u64));
            w.usize(l.waiters.len());
            for &t in &l.waiters {
                w.usize(t);
            }
        }
        for t in &self.threads {
            t.snap_save(&mut w);
        }
        for c in &self.cores {
            c.snap_save(&mut w);
        }
        self.mem.snap_save(&mut w);
        self.sink.snap_save(&mut w);
        w.finish()
    }

    /// Restore state saved by [`save_state`](Self::save_state) into
    /// this chip. The chip must have been rebuilt structurally first
    /// (same configuration, same threads pinned to the same contexts,
    /// same ROI window); anything that disagrees is a typed
    /// [`SnapError`], never silent corruption. On success the next
    /// [`run_slice`](Self::run_slice) continues exactly where the
    /// saved run stopped.
    ///
    /// # Errors
    /// [`SnapError`] on version/fingerprint mismatch, truncation, or
    /// any structural disagreement; the chip may be partially
    /// overwritten and must not be used except to retry a restore.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        r.marker(b"TLPS")?;
        let ver = r.u64()?;
        snap_ensure(
            ver == SNAP_VERSION,
            format!("snapshot format v{ver}, this build reads v{SNAP_VERSION}"),
        )?;
        let fp = r.u64()?;
        snap_ensure(
            fp == self.structural_fingerprint(),
            "structural fingerprint mismatch: snapshot was taken of a different \
             chip/thread configuration",
        )?;
        self.now = r.u64()?;
        self.runnable = r.usize()?;
        self.total_committed = r.u64()?;
        self.watchdog_window = r.u64()?.max(1);
        self.recording = r.bool()?;
        self.run_active = r.bool()?;
        self.wd_last_commits = r.u64()?;
        self.wd_last_cycle = r.u64()?;
        self.skip_prev_committed = r.u64()?;
        self.skipped_cycles = r.u64()?;
        self.skip_windows = r.u64()?;
        let hist = r.u64_vec()?;
        snap_ensure(
            hist.len() == self.threads.len() + 1 || hist.is_empty(),
            format!(
                "histogram has {} bins for {} threads",
                hist.len(),
                self.threads.len()
            ),
        )?;
        self.hist = hist;
        let blocked_since = r.u64_vec()?;
        snap_ensure(
            blocked_since.len() == self.threads.len(),
            format!("blocked_since has {} entries", blocked_since.len()),
        )?;
        self.blocked_since = blocked_since;
        let nthreads = self.threads.len();
        let nbar = r.bounded_len()?;
        self.barriers.clear();
        for _ in 0..nbar {
            let id = r.u32()?;
            let arrived = r.usize()?;
            snap_ensure(
                arrived <= self.n_segmented,
                format!(
                    "barrier {id} arrival count {arrived} > {}",
                    self.n_segmented
                ),
            )?;
            self.barriers.insert(id, arrived);
        }
        let nlocks = r.bounded_len()?;
        self.locks.clear();
        for _ in 0..nlocks {
            let id = r.u32()?;
            let held_by = match r.opt_u64()? {
                Some(t) => {
                    let t = usize::try_from(t)
                        .map_err(|_| tlpsim_mem::snap_mismatch("lock holder id overflow"))?;
                    snap_ensure(t < nthreads, format!("lock {id} held by thread {t}"))?;
                    Some(t)
                }
                None => None,
            };
            let nwait = r.bounded_len()?;
            let mut waiters = std::collections::VecDeque::with_capacity(nwait);
            for _ in 0..nwait {
                let t = r.usize()?;
                snap_ensure(t < nthreads, format!("lock {id} waiter thread {t}"))?;
                waiters.push_back(t);
            }
            self.locks.insert(id, LockState { held_by, waiters });
        }
        for t in self.threads.iter_mut() {
            t.snap_restore(&mut r)?;
        }
        snap_ensure(
            self.runnable
                == self
                    .threads
                    .iter()
                    .filter(|t| t.state == ProgramState::Runnable)
                    .count(),
            "runnable count disagrees with restored thread states",
        )?;
        for c in self.cores.iter_mut() {
            c.snap_restore(&mut r, nthreads)?;
        }
        self.mem.snap_restore(&mut r)?;
        self.sink.snap_restore(&mut r)?;
        r.expect_end()?;
        // Rebuilt caches and scratch: drained-event buffers are empty
        // at every step boundary, and the cached memory next-event
        // describes pre-restore state.
        self.events.clear();
        self.events_scratch.clear();
        self.mem_ev_cache = 0;
        self.mem_ev_version = u64::MAX;
        Ok(())
    }
}

/// FNV-1a over a byte string (fingerprints only — not a wire format).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
