//! Snapshot plumbing shared across the crate (DESIGN.md §12): wire
//! helpers for the enums serialized by several modules, and the
//! [`SnapshotSink`] trait that lets trace sinks participate in
//! checkpoint/restore.

use tlpsim_mem::{snap_ensure, snap_mismatch, Addr, SnapError, SnapReader, SnapWriter};
use tlpsim_trace::{CpiComponent, CpiStacks, NopSink, Tracer, N_COMPONENTS};
use tlpsim_workloads::{Instr, InstrKind};

use crate::program::ProgramState;

/// Stable one-byte tag for an [`InstrKind`] (the declaration order is
/// frozen — it also indexes [`crate::CoreStats::committed`]).
pub(crate) fn kind_tag(k: InstrKind) -> u8 {
    match k {
        InstrKind::IntAlu => 0,
        InstrKind::IntMul => 1,
        InstrKind::IntDiv => 2,
        InstrKind::FpAlu => 3,
        InstrKind::Load => 4,
        InstrKind::Store => 5,
        InstrKind::Branch => 6,
    }
}

/// Inverse of [`kind_tag`].
pub(crate) fn kind_from_tag(t: u8) -> Result<InstrKind, SnapError> {
    Ok(match t {
        0 => InstrKind::IntAlu,
        1 => InstrKind::IntMul,
        2 => InstrKind::IntDiv,
        3 => InstrKind::FpAlu,
        4 => InstrKind::Load,
        5 => InstrKind::Store,
        6 => InstrKind::Branch,
        _ => return Err(snap_mismatch(format!("instruction kind tag {t}"))),
    })
}

/// Encode a [`ProgramState`] as tag byte + (possibly unused) id.
pub(crate) fn save_pstate(st: ProgramState, w: &mut SnapWriter) {
    let (tag, id) = match st {
        ProgramState::Runnable => (0u8, 0u32),
        ProgramState::AtBarrier(id) => (1, id),
        ProgramState::WaitingLock(id) => (2, id),
        ProgramState::Finished => (3, 0),
    };
    w.u8(tag);
    w.u32(id);
}

/// Inverse of [`save_pstate`].
pub(crate) fn load_pstate(r: &mut SnapReader<'_>) -> Result<ProgramState, SnapError> {
    let tag = r.u8()?;
    let id = r.u32()?;
    Ok(match tag {
        0 => ProgramState::Runnable,
        1 => ProgramState::AtBarrier(id),
        2 => ProgramState::WaitingLock(id),
        3 => ProgramState::Finished,
        _ => return Err(snap_mismatch(format!("program state tag {tag}"))),
    })
}

/// Serialize one dynamic instruction verbatim.
pub(crate) fn save_instr(i: &Instr, w: &mut SnapWriter) {
    w.u8(kind_tag(i.kind));
    w.u16(i.src1_dist);
    w.u16(i.src2_dist);
    w.u64(i.addr.0);
    w.u64(i.fetch_addr.0);
    w.bool(i.mispredicted);
}

/// Inverse of [`save_instr`].
pub(crate) fn load_instr(r: &mut SnapReader<'_>) -> Result<Instr, SnapError> {
    Ok(Instr {
        kind: kind_from_tag(r.u8()?)?,
        src1_dist: r.u16()?,
        src2_dist: r.u16()?,
        addr: Addr(r.u64()?),
        fetch_addr: Addr(r.u64()?),
        mispredicted: r.bool()?,
    })
}

/// Trace sinks that can participate in checkpoint/restore.
///
/// [`MultiCore::save_state`](crate::MultiCore::save_state) serializes
/// the sink's accumulated state alongside the pipeline and memory
/// state, so a restored instrumented run continues its CPI accounting
/// exactly where the saved run stopped. Implemented for the bundled
/// sinks: [`NopSink`] (nothing to save), [`CpiStacks`] (full stacks),
/// and [`Tracer`] (stacks only — the event ring is a bounded
/// overwrite-oldest *diagnostic*, not part of the result surface, so a
/// restored ring simply restarts empty).
pub trait SnapshotSink {
    /// Serialize the sink's accumulated state.
    fn snap_save(&self, w: &mut SnapWriter);
    /// Restore state saved by [`snap_save`](Self::snap_save).
    ///
    /// # Errors
    /// [`SnapError`] on truncation or structural mismatch.
    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

impl SnapshotSink for NopSink {
    fn snap_save(&self, _w: &mut SnapWriter) {}
    fn snap_restore(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

fn save_stacks(s: &CpiStacks, w: &mut SnapWriter) {
    w.marker(b"CPIS");
    w.usize(s.len());
    for (&(core, slot), comps) in s.iter() {
        w.usize(core);
        w.usize(slot);
        w.u64_slice(comps);
    }
}

fn restore_stacks(s: &mut CpiStacks, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
    r.marker(b"CPIS")?;
    let n = r.bounded_len()?;
    let mut fresh = CpiStacks::new();
    for _ in 0..n {
        let core = r.usize()?;
        let slot = r.usize()?;
        let comps = r.u64_vec()?;
        snap_ensure(
            comps.len() == N_COMPONENTS,
            format!(
                "cpi stack has {} components, expected {N_COMPONENTS}",
                comps.len()
            ),
        )?;
        for (i, &v) in comps.iter().enumerate() {
            // Adding 0 still creates the entry, reproducing contexts
            // that were touched but never accumulated that component.
            fresh.add(core, slot, CpiComponent::ALL[i], v);
        }
    }
    *s = fresh;
    Ok(())
}

impl SnapshotSink for CpiStacks {
    fn snap_save(&self, w: &mut SnapWriter) {
        save_stacks(self, w);
    }
    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        restore_stacks(self, r)
    }
}

impl SnapshotSink for Tracer {
    fn snap_save(&self, w: &mut SnapWriter) {
        save_stacks(&self.stacks, w);
    }
    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        restore_stacks(&mut self.stacks, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_round_trip() {
        for k in [
            InstrKind::IntAlu,
            InstrKind::IntMul,
            InstrKind::IntDiv,
            InstrKind::FpAlu,
            InstrKind::Load,
            InstrKind::Store,
            InstrKind::Branch,
        ] {
            assert_eq!(kind_from_tag(kind_tag(k)).unwrap(), k);
        }
        assert!(kind_from_tag(7).is_err());
    }

    #[test]
    fn pstate_round_trip() {
        for st in [
            ProgramState::Runnable,
            ProgramState::AtBarrier(3),
            ProgramState::WaitingLock(99),
            ProgramState::Finished,
        ] {
            let mut w = SnapWriter::new();
            save_pstate(st, &mut w);
            let bytes = w.finish();
            let mut r = SnapReader::new(&bytes);
            assert_eq!(load_pstate(&mut r).unwrap(), st);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn cpi_stacks_round_trip_including_zero_entries() {
        let mut s = CpiStacks::new();
        s.add(0, 1, CpiComponent::Dram, 17);
        s.add(2, 0, CpiComponent::Base, 0); // touched, all-zero entry
        let mut w = SnapWriter::new();
        s.snap_save(&mut w);
        let bytes = w.finish();
        let mut restored = CpiStacks::new();
        restored.add(9, 9, CpiComponent::Idle, 5); // must be wiped
        let mut r = SnapReader::new(&bytes);
        restored.snap_restore(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(restored, s);
    }
}
