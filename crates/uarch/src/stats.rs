//! Simulation results and statistics.

use tlpsim_mem::{Cycle, MemStats};
use tlpsim_trace::CounterSnapshot;
use tlpsim_workloads::InstrKind;

/// Names of the [`CoreStats::committed`] instruction-class bins, in
/// index order.
const COMMIT_CLASS_NAMES: [&str; 7] = [
    "int_alu", "int_mul", "int_div", "fp", "load", "store", "branch",
];

/// Per-core activity statistics (consumed by the power model).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles with at least one runnable resident thread.
    pub busy_cycles: u64,
    /// Sum over cycles of the number of runnable resident threads
    /// (i.e. the time integral of SMT occupancy).
    pub active_ctx_cycles: u64,
    /// Committed instructions by class:
    /// `[int_alu, int_mul, int_div, fp, load, store, branch]`.
    pub committed: [u64; 7],
    /// Instructions dispatched into the ROB.
    pub dispatched: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Busy cycles in which no context dispatched any instruction.
    pub fetch_idle_cycles: u64,
}

impl CoreStats {
    pub(crate) fn record_commit(&mut self, kind: InstrKind) {
        let idx = match kind {
            InstrKind::IntAlu => 0,
            InstrKind::IntMul => 1,
            InstrKind::IntDiv => 2,
            InstrKind::FpAlu => 3,
            InstrKind::Load => 4,
            InstrKind::Store => 5,
            InstrKind::Branch => 6,
        };
        self.committed[idx] += 1;
    }

    /// Total committed instructions.
    pub fn total_committed(&self) -> u64 {
        self.committed.iter().sum()
    }

    /// Committed instructions per non-idle cycle.
    pub fn busy_ipc(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.busy_cycles as f64
        }
    }

    /// Average SMT occupancy while busy.
    pub fn avg_occupancy(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.active_ctx_cycles as f64 / self.busy_cycles as f64
        }
    }

    /// Publish this core's pipeline counters under `core{core}.*`.
    pub fn counters_into(&self, core: usize, snap: &mut CounterSnapshot) {
        let p = format!("core{core}");
        snap.add_u64(&format!("{p}.cycles"), self.cycles);
        snap.add_u64(&format!("{p}.busy_cycles"), self.busy_cycles);
        snap.add_u64(&format!("{p}.active_ctx_cycles"), self.active_ctx_cycles);
        snap.add_u64(&format!("{p}.dispatched"), self.dispatched);
        snap.add_u64(&format!("{p}.issued"), self.issued);
        snap.add_u64(&format!("{p}.fetch_idle_cycles"), self.fetch_idle_cycles);
        for (name, count) in COMMIT_CLASS_NAMES.iter().zip(self.committed) {
            snap.add_u64(&format!("{p}.committed.{name}"), count);
        }
    }
}

/// Per-thread outcome of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadStats {
    /// Committed instructions.
    pub committed: u64,
    /// Cycle at which the warmup window ended (multiprogram threads).
    pub start_cycle: Option<Cycle>,
    /// Cycle at which the thread's budget committed (multiprogram) or
    /// its program finished (segmented).
    pub finish_cycle: Option<Cycle>,
    /// Cycles spent blocked on barriers/locks.
    pub blocked_cycles: u64,
}

impl ThreadStats {
    /// Instructions per cycle over the measurement window: `budget`
    /// instructions between the end of warmup and the finish point
    /// (0 if unfinished).
    pub fn ipc(&self, budget: u64) -> f64 {
        match (self.start_cycle, self.finish_cycle) {
            (Some(s), Some(f)) if f > s => budget as f64 / (f - s) as f64,
            (None, Some(f)) if f > 0 => budget as f64 / f as f64,
            _ => 0.0,
        }
    }
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    /// Total cycles simulated.
    pub cycles: Cycle,
    /// Per-thread outcomes (indexed by [`crate::ThreadId`]).
    pub threads: Vec<ThreadStats>,
    /// Per-core activity.
    pub cores: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// `active_histogram[k]` = cycles during which exactly `k` threads
    /// were runnable (index 0 = none). For multi-threaded apps this is
    /// recorded over the ROI; it reproduces Figure 1.
    pub active_histogram: Vec<u64>,
}

impl RunResult {
    /// Wall-clock of the run at `freq_ghz`, in nanoseconds.
    pub fn wall_ns(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / freq_ghz
    }

    /// Fraction of (histogram-recorded) time with exactly `k` runnable
    /// threads.
    pub fn active_fraction(&self, k: usize) -> f64 {
        let total: u64 = self.active_histogram.iter().sum();
        if total == 0 || k >= self.active_histogram.len() {
            0.0
        } else {
            self.active_histogram[k] as f64 / total as f64
        }
    }

    /// Flatten the whole run into a [`CounterSnapshot`] — the unified
    /// registry format every layer (pipeline, memory, threads) publishes
    /// into. Snapshots from sweep cells can be merged or diffed without
    /// knowing which subsystem a counter came from.
    pub fn counters(&self) -> CounterSnapshot {
        let mut snap = CounterSnapshot::new();
        self.counters_into(&mut snap);
        snap
    }

    /// Publish this run's counters into an existing snapshot.
    pub fn counters_into(&self, snap: &mut CounterSnapshot) {
        snap.add_u64("run.cycles", self.cycles);
        for (c, cs) in self.cores.iter().enumerate() {
            cs.counters_into(c, snap);
        }
        for (t, ts) in self.threads.iter().enumerate() {
            let p = format!("thread{t}");
            snap.add_u64(&format!("{p}.committed"), ts.committed);
            snap.add_u64(&format!("{p}.blocked_cycles"), ts.blocked_cycles);
            if let Some(f) = ts.finish_cycle {
                snap.add_u64(&format!("{p}.finish_cycle"), f);
            }
        }
        for (k, cycles) in self.active_histogram.iter().enumerate() {
            snap.add_u64(&format!("run.active_histogram.{k}"), *cycles);
        }
        self.mem.counters_into(snap);
    }
}
