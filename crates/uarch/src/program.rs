//! What a software thread executes: an instruction supply plus the
//! control structure around it (budgets, barriers, critical sections).

use tlpsim_workloads::{InstrStream, Segment};

use crate::Cycle;

/// Scheduling-relevant state of a software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramState {
    /// Has instructions to execute.
    Runnable,
    /// Waiting at a barrier (yielded its core).
    AtBarrier(u32),
    /// Waiting for a lock (yielded its core).
    WaitingLock(u32),
    /// All segments finished.
    Finished,
}

/// What the program hands the fetch stage next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FetchOutcome {
    /// A fetchable instruction.
    Instr(tlpsim_workloads::Instr),
    /// The thread must block once its in-flight instructions drain.
    Block(ProgramState),
    /// The thread is done once its in-flight instructions drain.
    Finish,
}

/// The program executed by one software thread.
///
/// Two flavours mirror the paper's two workload classes:
///
/// * [`ThreadProgram::multiprogram`]: an unbounded stream with an
///   instruction *budget*; the engine records the cycle at which the
///   budget commits (the paper restarts programs so that the machine
///   stays fully loaded until every program has executed its sample, so
///   the stream keeps supplying instructions after the budget).
/// * [`ThreadProgram::segmented`]: a PARSEC-like thread: compute
///   segments interleaved with barriers and critical sections.
#[derive(Debug, Clone)]
pub struct ThreadProgram {
    stream: InstrStream,
    kind: ProgramKind,
}

#[derive(Debug, Clone)]
enum ProgramKind {
    Multiprogram {
        warmup: u64,
        budget: u64,
    },
    Segmented {
        segments: Vec<Segment>,
        /// Index of the current segment.
        pos: usize,
        /// Instructions left in the current compute/critical segment.
        remaining: u64,
        /// Set while inside a critical section (lock currently held).
        holding_lock: Option<u32>,
        /// Set once the engine granted the lock for the segment at `pos`.
        lock_granted: bool,
    },
}

impl ThreadProgram {
    /// A single-threaded program: `budget` instructions measured, stream
    /// continues indefinitely (multi-program methodology, Section 3.2).
    ///
    /// A default warmup of `budget / 2` instructions runs before the
    /// measurement window to populate the caches, mirroring the
    /// simulation warmup of the paper's SimPoint methodology. Use
    /// [`multiprogram_with_warmup`](Self::multiprogram_with_warmup) for
    /// explicit control.
    pub fn multiprogram(stream: InstrStream, budget: u64) -> Self {
        let warmup = budget / 2;
        Self::multiprogram_with_warmup(stream, warmup, budget)
    }

    /// Like [`multiprogram`](Self::multiprogram) with an explicit warmup
    /// instruction count (may be 0).
    pub fn multiprogram_with_warmup(stream: InstrStream, warmup: u64, budget: u64) -> Self {
        assert!(budget > 0, "budget must be positive");
        ThreadProgram {
            stream,
            kind: ProgramKind::Multiprogram { warmup, budget },
        }
    }

    /// One thread of a multi-threaded application.
    pub fn segmented(stream: InstrStream, segments: Vec<Segment>) -> Self {
        ThreadProgram {
            stream,
            kind: ProgramKind::Segmented {
                segments,
                pos: 0,
                remaining: 0,
                holding_lock: None,
                lock_granted: false,
            },
        }
    }

    /// Pre-warm footprint of the underlying stream (see
    /// [`InstrStream::prewarm_addrs`]).
    pub fn prewarm_addrs(&self) -> Vec<(bool, tlpsim_mem::Addr)> {
        self.stream.prewarm_addrs()
    }

    /// Instruction budget for multiprogram threads (None for segmented).
    pub fn budget(&self) -> Option<u64> {
        match &self.kind {
            ProgramKind::Multiprogram { budget, .. } => Some(*budget),
            ProgramKind::Segmented { .. } => None,
        }
    }

    /// Warmup instructions before the measurement window (multiprogram).
    pub fn warmup(&self) -> Option<u64> {
        match &self.kind {
            ProgramKind::Multiprogram { warmup, .. } => Some(*warmup),
            ProgramKind::Segmented { .. } => None,
        }
    }

    /// Called by the engine's fetch stage. Advances segment state.
    pub(crate) fn next_fetch(&mut self) -> FetchOutcome {
        match &mut self.kind {
            ProgramKind::Multiprogram { .. } => {
                FetchOutcome::Instr(self.stream.next().expect("stream is unbounded"))
            }
            ProgramKind::Segmented {
                segments,
                pos,
                remaining,
                holding_lock,
                lock_granted,
            } => {
                loop {
                    if *remaining > 0 {
                        *remaining -= 1;
                        return FetchOutcome::Instr(
                            self.stream.next().expect("stream is unbounded"),
                        );
                    }
                    // Current segment exhausted; release any held lock.
                    if holding_lock.is_some() {
                        // Engine observes the release via take_release().
                        return FetchOutcome::Block(ProgramState::Runnable);
                    }
                    let Some(seg) = segments.get(*pos) else {
                        return FetchOutcome::Finish;
                    };
                    match *seg {
                        Segment::Compute { instrs } => {
                            *pos += 1;
                            if instrs == 0 {
                                continue;
                            }
                            *remaining = instrs;
                        }
                        Segment::Barrier { id } => {
                            *pos += 1;
                            return FetchOutcome::Block(ProgramState::AtBarrier(id));
                        }
                        Segment::Critical { lock, instrs } => {
                            if *lock_granted {
                                *lock_granted = false;
                                *pos += 1;
                                *holding_lock = Some(lock);
                                if instrs == 0 {
                                    return FetchOutcome::Block(ProgramState::Runnable);
                                }
                                *remaining = instrs;
                            } else {
                                return FetchOutcome::Block(ProgramState::WaitingLock(lock));
                            }
                        }
                    }
                }
            }
        }
    }

    /// If the thread just finished a critical section, returns the lock
    /// to release (the engine calls this after every drained block).
    pub(crate) fn take_release(&mut self) -> Option<u32> {
        match &mut self.kind {
            ProgramKind::Segmented { holding_lock, .. } => holding_lock.take(),
            _ => None,
        }
    }

    /// The engine granted the lock this thread was waiting for.
    pub(crate) fn grant_lock(&mut self) {
        if let ProgramKind::Segmented { lock_granted, .. } = &mut self.kind {
            *lock_granted = true;
        }
    }

    /// Serialize the program's mutable state: the stream cursor plus
    /// the segment position. Budgets and the segment list itself are
    /// structural (deterministic from the cell) and only validated.
    pub(crate) fn snap_save(&self, w: &mut tlpsim_mem::SnapWriter) {
        w.marker(b"PROG");
        self.stream.snap_save(w);
        match &self.kind {
            ProgramKind::Multiprogram { warmup, budget } => {
                w.u8(0);
                w.u64(*warmup);
                w.u64(*budget);
            }
            ProgramKind::Segmented {
                segments,
                pos,
                remaining,
                holding_lock,
                lock_granted,
            } => {
                w.u8(1);
                w.usize(segments.len());
                w.usize(*pos);
                w.u64(*remaining);
                match holding_lock {
                    Some(id) => {
                        w.bool(true);
                        w.u32(*id);
                    }
                    None => {
                        w.bool(false);
                        w.u32(0);
                    }
                }
                w.bool(*lock_granted);
            }
        }
    }

    /// Restore state saved by [`snap_save`](Self::snap_save).
    pub(crate) fn snap_restore(
        &mut self,
        r: &mut tlpsim_mem::SnapReader<'_>,
    ) -> Result<(), tlpsim_mem::SnapError> {
        use tlpsim_mem::{snap_ensure, snap_mismatch};
        r.marker(b"PROG")?;
        self.stream.snap_restore(r)?;
        let tag = r.u8()?;
        match (&mut self.kind, tag) {
            (ProgramKind::Multiprogram { warmup, budget }, 0) => {
                let sw = r.u64()?;
                let sb = r.u64()?;
                snap_ensure(
                    sw == *warmup && sb == *budget,
                    format!(
                        "multiprogram warmup/budget: structure {warmup}/{budget}, \
                         snapshot {sw}/{sb}"
                    ),
                )?;
            }
            (
                ProgramKind::Segmented {
                    segments,
                    pos,
                    remaining,
                    holding_lock,
                    lock_granted,
                },
                1,
            ) => {
                let nseg = r.usize()?;
                snap_ensure(
                    nseg == segments.len(),
                    format!("program has {} segments, snapshot {nseg}", segments.len()),
                )?;
                let p = r.usize()?;
                snap_ensure(
                    p <= segments.len(),
                    format!("segment position {p} past {} segments", segments.len()),
                )?;
                *pos = p;
                *remaining = r.u64()?;
                let held = r.bool()?;
                let id = r.u32()?;
                *holding_lock = held.then_some(id);
                *lock_granted = r.bool()?;
            }
            _ => return Err(snap_mismatch(format!("program kind tag {tag}"))),
        }
        Ok(())
    }
}

/// Per-thread dependence-tracking ring: done-times of the last
/// [`RING`] dynamic instructions.
pub(crate) const RING: usize = 1024;

/// Bookkeeping the engine keeps per software thread, including the
/// pipeline state that survives context switches (staged instruction,
/// sequence numbers, dependence ring).
#[derive(Debug)]
pub(crate) struct ThreadCtl {
    pub program: ThreadProgram,
    pub state: ProgramState,
    /// Committed instructions.
    pub committed: u64,
    /// Cycle at which the warmup window ended (measurement start).
    pub start_cycle: Option<Cycle>,
    /// Cycle the multiprogram budget committed (or segmented finished).
    pub finish_cycle: Option<Cycle>,
    /// Cycles spent blocked (barrier/lock).
    pub blocked_cycles: u64,
    /// Assigned core (usize::MAX until pinned).
    pub core: usize,
    /// Assigned hardware context slot on that core.
    pub slot: usize,
    /// Instruction pulled from the program but not yet dispatched.
    pub staged: Option<tlpsim_workloads::Instr>,
    /// Last I-cache line fetched (for fetch-line-crossing detection).
    pub last_fetch_line: Option<tlpsim_mem::LineAddr>,
    /// Next dynamic sequence number.
    pub next_seq: u64,
    /// done-at times of recent instructions, indexed by `seq % RING`.
    pub done_ring: Vec<Cycle>,
}

impl ThreadCtl {
    pub(crate) fn new(program: ThreadProgram) -> Self {
        ThreadCtl {
            program,
            state: ProgramState::Runnable,
            committed: 0,
            start_cycle: None,
            finish_cycle: None,
            blocked_cycles: 0,
            core: usize::MAX,
            slot: usize::MAX,
            staged: None,
            last_fetch_line: None,
            next_seq: 0,
            done_ring: vec![0; RING],
        }
    }

    /// Serialize everything mutable about this thread, including the
    /// pipeline state that survives context switches. The (core, slot)
    /// pin is structural and only validated on restore.
    pub(crate) fn snap_save(&self, w: &mut tlpsim_mem::SnapWriter) {
        w.marker(b"THRD");
        self.program.snap_save(w);
        crate::snapio::save_pstate(self.state, w);
        w.u64(self.committed);
        w.opt_u64(self.start_cycle);
        w.opt_u64(self.finish_cycle);
        w.u64(self.blocked_cycles);
        w.usize(self.core);
        w.usize(self.slot);
        match &self.staged {
            Some(i) => {
                w.bool(true);
                crate::snapio::save_instr(i, w);
            }
            None => w.bool(false),
        }
        w.opt_u64(self.last_fetch_line.map(|l| l.0));
        w.u64(self.next_seq);
        w.u64_slice(&self.done_ring);
    }

    /// Restore state saved by [`snap_save`](Self::snap_save).
    pub(crate) fn snap_restore(
        &mut self,
        r: &mut tlpsim_mem::SnapReader<'_>,
    ) -> Result<(), tlpsim_mem::SnapError> {
        use tlpsim_mem::snap_ensure;
        r.marker(b"THRD")?;
        self.program.snap_restore(r)?;
        self.state = crate::snapio::load_pstate(r)?;
        self.committed = r.u64()?;
        self.start_cycle = r.opt_u64()?;
        self.finish_cycle = r.opt_u64()?;
        self.blocked_cycles = r.u64()?;
        let core = r.usize()?;
        let slot = r.usize()?;
        snap_ensure(
            core == self.core && slot == self.slot,
            format!(
                "thread pinned to core {}.{}, snapshot says {core}.{slot}",
                self.core, self.slot
            ),
        )?;
        self.staged = if r.bool()? {
            Some(crate::snapio::load_instr(r)?)
        } else {
            None
        };
        self.last_fetch_line = r.opt_u64()?.map(tlpsim_mem::LineAddr);
        self.next_seq = r.u64()?;
        let ring = r.u64_vec()?;
        snap_ensure(
            ring.len() == RING,
            format!("done ring has {} entries, expected {RING}", ring.len()),
        )?;
        self.done_ring = ring;
        Ok(())
    }
}
