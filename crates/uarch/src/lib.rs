//! # tlpsim-uarch — cycle-stepped multi-core simulator
//!
//! The execution engine reproducing the paper's Sniper-based setup: a
//! multi-core of big (4-wide out-of-order), medium (2-wide out-of-order)
//! and small (2-wide in-order) cores per Table 1, with SMT support:
//!
//! * **out-of-order cores** model a reorder buffer with *static
//!   per-thread partitioning* and a *round-robin fetch policy* (the
//!   paper's SMT model, after Raasch & Reinhardt), per-class functional
//!   units shared across SMT contexts each cycle, oldest-ready issue,
//!   non-blocking loads through the [`tlpsim_mem`] hierarchy, and
//!   fetch-redirect branch-misprediction penalties;
//! * **in-order cores** are scoreboarded 2-wide pipelines with
//!   fine-grained multithreading over 2 hardware contexts;
//! * the **engine** ([`MultiCore`]) steps all cores cycle by cycle,
//!   routes memory accesses, implements OS-level behaviour — threads
//!   blocked on barriers/locks *yield the core* (freeing the SMT
//!   context), surplus threads time-share a context round-robin when
//!   SMT is disabled — and samples the active-thread histogram that
//!   reproduces Figure 1.
//!
//! The simulator is trace-driven in the statistical sense: instruction
//! streams come from [`tlpsim_workloads`] generators; wrong-path
//! execution is approximated by fetch-redirect stalls, the standard
//! trace-driven treatment.
//!
//! # Example: one big SMT core running two programs
//!
//! ```
//! use tlpsim_uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
//! use tlpsim_workloads::{spec, InstrStream};
//!
//! let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
//! let mut sim = MultiCore::new(&chip);
//! for (i, prof) in [spec::hmmer_like(), spec::mcf_like()].iter().enumerate() {
//!     let t = sim.add_thread(ThreadProgram::multiprogram(
//!         InstrStream::new(prof, i as u64, 42),
//!         10_000,
//!     ));
//!     sim.pin(t, 0, i); // both on core 0, SMT contexts 0 and 1
//! }
//! let result = sim.run().expect("no deadlock");
//! assert!(result.threads.iter().all(|t| t.finish_cycle.is_some()));
//! ```

mod config;
mod core_model;
mod engine;
mod program;
mod snapio;
mod stats;

pub use config::{ChipConfig, CoreClass, CoreConfig, FetchPolicy, FuConfig, RobSharing};
pub use core_model::CoreModel;
pub use engine::{
    ContextSnapshot, LockSnapshot, MultiCore, RunError, RunStatus, StallSnapshot,
    DEFAULT_WATCHDOG_CYCLES,
};
pub use program::{ProgramState, ThreadProgram};
pub use snapio::SnapshotSink;
pub use stats::{CoreStats, RunResult, ThreadStats};

/// Identifies a software thread within one simulation.
pub type ThreadId = usize;

pub use tlpsim_mem::Cycle;

/// Re-exported observability surface: construct a [`MultiCore`] with
/// [`MultiCore::with_sink`] and one of these sinks to collect CPI
/// stacks and/or structural events.
pub use tlpsim_trace::{
    CounterSnapshot, CounterValue, CpiComponent, CpiStacks, NopSink, TraceSink, Tracer,
};
