//! Core and chip configurations (Table 1 of the paper).

use tlpsim_mem::{BusConfig, DramConfig, MemoryConfig, PrivateCacheConfig};

/// Pipeline organization class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreClass {
    /// Out-of-order issue within a reorder-buffer window.
    OutOfOrder,
    /// In-order (scoreboarded) issue; fine-grained multithreading.
    InOrder,
}

/// SMT fetch policy (Tullsen et al.). The paper simulates round-robin;
/// ICOUNT is provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FetchPolicy {
    /// Rotate fetch priority across contexts each cycle (the paper's
    /// configuration, after Raasch & Reinhardt).
    #[default]
    RoundRobin,
    /// Prioritize the context with the fewest in-flight instructions
    /// (ICOUNT), which starves stalled threads less resources.
    ICount,
}

/// How the reorder buffer is divided among SMT contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RobSharing {
    /// Equal static partitions per active context (the paper's model).
    #[default]
    StaticPartition,
    /// Fully shared: any context may fill the whole window (bounded by
    /// total occupancy). Provided for the ablation study.
    Shared,
}

/// Functional-unit counts (issue slots per class per cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuConfig {
    /// Integer ALUs (also execute branches).
    pub int_alu: u8,
    /// Load/store ports.
    pub ldst: u8,
    /// Integer multiply/divide units.
    pub muldiv: u8,
    /// Floating-point units.
    pub fp: u8,
}

/// Microarchitectural parameters of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Pipeline class.
    pub class: CoreClass,
    /// Fetch/dispatch/issue/commit width.
    pub width: u8,
    /// Reorder-buffer entries (ignored for in-order cores).
    pub rob_size: u16,
    /// Functional units.
    pub fus: FuConfig,
    /// Maximum SMT hardware contexts.
    pub smt_contexts: u8,
    /// Cycles from branch execute to fetch redirect on a mispredict.
    pub mispredict_penalty: u64,
    /// SMT fetch policy.
    pub fetch_policy: FetchPolicy,
    /// ROB division among contexts.
    pub rob_sharing: RobSharing,
}

impl CoreConfig {
    /// Big core: 4-wide OoO, 128-entry ROB, 3 int + 2 ld/st + 1 mul/div
    /// + 1 FP, up to 6 SMT threads (Table 1).
    pub fn big() -> Self {
        CoreConfig {
            class: CoreClass::OutOfOrder,
            width: 4,
            rob_size: 128,
            fus: FuConfig {
                int_alu: 3,
                ldst: 2,
                muldiv: 1,
                fp: 1,
            },
            smt_contexts: 6,
            mispredict_penalty: 12,
            fetch_policy: FetchPolicy::default(),
            rob_sharing: RobSharing::default(),
        }
    }

    /// Medium core: 2-wide OoO, 32-entry ROB, 2 int + 1 ld/st + 1
    /// mul/div + 1 FP, up to 3 SMT threads (Table 1).
    pub fn medium() -> Self {
        CoreConfig {
            class: CoreClass::OutOfOrder,
            width: 2,
            rob_size: 32,
            fus: FuConfig {
                int_alu: 2,
                ldst: 1,
                muldiv: 1,
                fp: 1,
            },
            smt_contexts: 3,
            mispredict_penalty: 9,
            fetch_policy: FetchPolicy::default(),
            rob_sharing: RobSharing::default(),
        }
    }

    /// Small core: 2-wide in-order, 2 int + 1 ld/st + 1 mul/div + 1 FP,
    /// up to 2 threads via fine-grained multithreading (Table 1).
    pub fn small() -> Self {
        CoreConfig {
            class: CoreClass::InOrder,
            width: 2,
            rob_size: 16, // in-flight buffer, not a true ROB
            fus: FuConfig {
                int_alu: 2,
                ldst: 1,
                muldiv: 1,
                fp: 1,
            },
            smt_contexts: 2,
            mispredict_penalty: 6,
            fetch_policy: FetchPolicy::default(),
            rob_sharing: RobSharing::default(),
        }
    }

    /// Private-cache geometry matching this core type (Table 1 sizes,
    /// selected by width/class).
    pub fn matching_caches(&self) -> PrivateCacheConfig {
        match (self.class, self.width) {
            (CoreClass::OutOfOrder, 4..) => PrivateCacheConfig::big(),
            (CoreClass::OutOfOrder, _) => PrivateCacheConfig::medium(),
            (CoreClass::InOrder, _) => PrivateCacheConfig::small(),
        }
    }
}

/// A full chip: per-core configurations plus the shared memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Core microarchitectures (index = core id).
    pub cores: Vec<CoreConfig>,
    /// Memory system (must have one private-cache entry per core).
    pub memory: MemoryConfig,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Time-sharing quantum in cycles (used when several software
    /// threads share one hardware context).
    pub quantum_cycles: u64,
    /// Pipeline-refill / OS overhead charged on a context switch.
    pub switch_penalty_cycles: u64,
}

impl ChipConfig {
    /// A homogeneous chip of `n` identical cores with matching private
    /// caches and default shared resources.
    pub fn homogeneous(n: usize, core: CoreConfig, freq_ghz: f64) -> Self {
        Self::heterogeneous(&vec![core; n], freq_ghz)
    }

    /// A chip from an explicit per-core list.
    ///
    /// # Panics
    /// Panics if `cores` is empty.
    pub fn heterogeneous(cores: &[CoreConfig], freq_ghz: f64) -> Self {
        assert!(!cores.is_empty(), "a chip needs at least one core");
        let per_core = cores.iter().map(|c| c.matching_caches()).collect();
        ChipConfig {
            cores: cores.to_vec(),
            memory: MemoryConfig {
                per_core,
                llc: MemoryConfig::default_llc(),
                crossbar_latency: 5,
                dram: DramConfig::default(),
                bus: BusConfig::default(),
                freq_ghz,
            },
            freq_ghz,
            quantum_cycles: 20_000,
            switch_penalty_cycles: 1_000,
        }
    }

    /// Total hardware thread contexts on the chip.
    pub fn total_contexts(&self) -> usize {
        self.cores.iter().map(|c| c.smt_contexts as usize).sum()
    }

    /// Disable SMT: every core exposes a single hardware context.
    pub fn without_smt(mut self) -> Self {
        for c in &mut self.cores {
            c.smt_contexts = 1;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_parameters() {
        let b = CoreConfig::big();
        assert_eq!((b.width, b.rob_size, b.smt_contexts), (4, 128, 6));
        assert_eq!(b.fus.int_alu, 3);
        assert_eq!(b.fus.ldst, 2);
        let m = CoreConfig::medium();
        assert_eq!((m.width, m.rob_size, m.smt_contexts), (2, 32, 3));
        let s = CoreConfig::small();
        assert_eq!(s.class, CoreClass::InOrder);
        assert_eq!(s.smt_contexts, 2);
    }

    #[test]
    fn matching_caches_follow_core_type() {
        assert_eq!(
            CoreConfig::big().matching_caches(),
            PrivateCacheConfig::big()
        );
        assert_eq!(
            CoreConfig::medium().matching_caches(),
            PrivateCacheConfig::medium()
        );
        assert_eq!(
            CoreConfig::small().matching_caches(),
            PrivateCacheConfig::small()
        );
    }

    #[test]
    fn chip_builders() {
        let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
        assert_eq!(chip.cores.len(), 4);
        assert_eq!(chip.memory.per_core.len(), 4);
        assert_eq!(chip.total_contexts(), 24);
        let nosmt = chip.without_smt();
        assert_eq!(nosmt.total_contexts(), 4);
    }

    #[test]
    fn heterogeneous_chip_mixes_caches() {
        let chip = ChipConfig::heterogeneous(&[CoreConfig::big(), CoreConfig::small()], 2.66);
        assert_eq!(chip.memory.per_core[0], PrivateCacheConfig::big());
        assert_eq!(chip.memory.per_core[1], PrivateCacheConfig::small());
    }
}
