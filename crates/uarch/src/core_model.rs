//! The per-core pipeline model.
//!
//! One [`CoreModel`] simulates one core (out-of-order or in-order) with
//! its SMT hardware contexts ("slots"). Each cycle performs, in order:
//! commit, issue, fetch/dispatch, and drain detection. The model is
//! trace-driven: branch mispredictions stall fetch from the offending
//! context until the branch executes plus a redirect penalty (wrong-path
//! instructions are not simulated).
//!
//! ## SMT resource sharing (the paper's model)
//!
//! * **ROB**: statically partitioned among *active* contexts
//!   (`rob_size / active_contexts`), re-split when threads block or
//!   wake, per Raasch & Reinhardt's static partitioning.
//! * **Fetch**: round-robin — one context fetches up to `width`
//!   instructions per cycle.
//! * **Issue**: shared `width` and shared functional units per cycle;
//!   round-robin priority rotation across contexts. In-order cores issue
//!   from a single context per cycle (fine-grained multithreading,
//!   skipping stalled contexts).
//! * **Commit**: shared `width`, round-robin across contexts.

use std::collections::VecDeque;

use tlpsim_mem::{AccessKind, Addr, Cycle, HitLevel, MemorySystem};
use tlpsim_trace::{CpiComponent, TraceEvent, TraceSink};
use tlpsim_workloads::InstrKind;

use crate::config::{CoreClass, CoreConfig, FetchPolicy, RobSharing};
use crate::program::{FetchOutcome, ProgramState, ThreadCtl, RING};
use crate::stats::CoreStats;
use crate::ThreadId;

const RING_MASK: u64 = (RING as u64) - 1;

/// Max unissued entries inspected per context per cycle (scheduler
/// selection-logic depth).
const ISSUE_SCAN: usize = 32;
/// Calendar-wheel span in cycles. Ready-times within `WHEEL` cycles of
/// the last maturation sweep go in O(1) wheel buckets; anything
/// farther (long memory latencies) takes the sorted far-calendar.
const WHEEL: usize = 64;
const WHEEL_MASK: u64 = (WHEEL as u64) - 1;
/// Sentinel producer meaning "no register dependence".
const NO_DEP: u64 = u64::MAX;
/// Number of functional-unit pools (classes) in [`FuConfig`]:
/// int-ALU/branch, mul/div, FP, load/store.
const FU_CLASSES: usize = 4;

/// The functional-unit pool an instruction kind issues through.
#[inline]
fn fu_class(kind: InstrKind) -> usize {
    match kind {
        InstrKind::IntAlu | InstrKind::Branch => 0,
        InstrKind::IntMul | InstrKind::IntDiv => 1,
        InstrKind::FpAlu => 2,
        InstrKind::Load | InstrKind::Store => 3,
    }
}

/// Why a context stopped fetching and must drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// Thread will block (barrier / lock / critical-section boundary).
    Block(ProgramState),
    /// Thread finished its program.
    Finish,
    /// Time-sharing quantum expired; rotate the slot's thread queue.
    Switch,
}

/// An event the engine must resolve at end of cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Drained {
    pub tid: ThreadId,
    pub core: usize,
    pub slot: usize,
    pub pending: Pending,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    kind: InstrKind,
    prod1: u64,
    prod2: u64,
    addr: Addr,
    mispredicted: bool,
    issued: bool,
    done_at: Cycle,
    /// Producers not yet issued. While non-zero the entry is provably
    /// not ready (an unissued producer cannot have completed); at zero
    /// `ready_part` is its final ready-time.
    nwait: u8,
    /// Head of this entry's consumer wake chain: consumers that
    /// dispatched before this entry issued, encoded as
    /// `(consumer_seq - seq) << 1 | port` (0 = empty; deltas are ≥ 1
    /// and bounded by the ROB size, so they fit easily). `port`
    /// selects which of the consumer's two links continues the chain.
    whead: u32,
    /// Chain continuation for this entry's wait on `prod1` (port 0).
    wnext1: u32,
    /// Chain continuation for this entry's wait on `prod2` (port 1).
    wnext2: u32,
    /// Running max of already-issued producers' done-times.
    ready_part: Cycle,
    /// Hit level of an issued load (1 = L1 … 4 = DRAM; 0 = unset).
    /// Maintained only when tracing is enabled; feeds the CPI-stack
    /// classification of head-of-window memory stalls.
    level: u8,
}

/// One SMT hardware context.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Threads assigned to this context; front = resident.
    pub threads: VecDeque<ThreadId>,
    quantum_left: u64,
    fetch_blocked_until: Cycle,
    /// Sequence number of an in-flight mispredicted branch gating fetch.
    awaiting_redirect: Option<u64>,
    rob: VecDeque<RobEntry>,
    /// Seqs of not-yet-issued ROB entries, in program order (= seq
    /// order). This is the scheduler's *window*: the dense model
    /// inspects only the first [`ISSUE_SCAN`] of these each cycle. A
    /// seq maps to its ROB index as `seq - rob.front().seq`.
    ///
    /// Readiness itself is not re-derived by walking this queue.
    /// Dependences are thread-local, so an entry's ready-time becomes
    /// known — and final, since done-times never change after issue —
    /// the moment its last producer issues. That event is delivered
    /// eagerly through the wake chains in [`RobEntry`]; complete
    /// entries park in the calendar ([`cal_wheel`](Self::cal_wheel) /
    /// [`cal_far`](Self::cal_far)) until their ready cycle and in
    /// [`active`](Self::active) afterwards, so the issue scan touches
    /// only entries that can actually issue (DESIGN.md §10).
    unissued: VecDeque<u64>,
    /// Calendar wheel for complete entries (both producers issued)
    /// whose ready-time is in the near future: bucket `r & WHEEL_MASK`
    /// holds `(r, seq)` pairs becoming ready at cycle `r`, for `r`
    /// within [`WHEEL`] cycles of the last maturation sweep
    /// ([`cal_last`](Self::cal_last)). Push and pop are O(1);
    /// `cal_occ` mirrors bucket non-emptiness so maturation after a
    /// quiet gap visits only occupied buckets and the next wake-up
    /// falls out of a rotate + `trailing_zeros`. The wheel (with
    /// [`cal_far`](Self::cal_far)) is also the slot's exact issue
    /// wake-up when nothing is ready: the front entry of `unissued`
    /// always has every earlier instruction issued, hence is complete,
    /// hence is in the calendar, in `active`, or in `spin` — so no
    /// wake can be missed.
    cal_wheel: [Vec<(Cycle, u64)>; WHEEL],
    /// Bit `r & WHEEL_MASK` set ⇔ that wheel bucket is non-empty.
    cal_occ: u64,
    /// Cycle up to (and including) which wheel buckets are drained.
    cal_last: Cycle,
    /// Far calendar: `(ready_at, seq)` beyond the wheel span (long
    /// memory latencies), sorted descending so maturation pops the
    /// earliest from the tail.
    cal_far: Vec<(Cycle, u64)>,
    /// Complete entries whose ready-time has arrived but which have
    /// not issued yet (functional-unit or window pressure), one
    /// seq-sorted list per functional-unit class. The issue scan
    /// merges the list heads in program order and skips a list
    /// entirely the moment its FU pool runs out — a saturated unit
    /// costs O(1) per scan instead of a denial per waiting entry.
    active: [Vec<u64>; FU_CLASSES],
    /// Entries with a dependence distance too long for the done-ring
    /// to be trusted (`> ready_cache_max_dist`; cannot happen with the
    /// bundled generators, whose dependence distances are ≤ 96).
    /// Re-derived from the ring every scan, exactly like the dense
    /// model's aliased reads.
    spin: Vec<u64>,
    pub(crate) pending: Option<Pending>,
    /// A ready-now entry appeared outside the issue scan (dispatch of
    /// a born-ready instruction): scan next cycle regardless of
    /// `issue_wake`.
    issue_dirty: bool,
    /// Earliest cycle at which a future issue scan can find work, when
    /// the last full scan found nothing ready (exact: dependences are
    /// thread-local, so readiness only changes through this slot's own
    /// issues, the calendar maturing, or a new dispatch).
    issue_wake: Cycle,
}

impl Slot {
    fn new() -> Self {
        Slot {
            threads: VecDeque::new(),
            quantum_left: 0,
            fetch_blocked_until: 0,
            awaiting_redirect: None,
            rob: VecDeque::new(),
            unissued: VecDeque::new(),
            cal_wheel: std::array::from_fn(|_| Vec::new()),
            cal_occ: 0,
            cal_last: 0,
            cal_far: Vec::new(),
            active: std::array::from_fn(|_| Vec::new()),
            spin: Vec::new(),
            pending: None,
            issue_dirty: true,
            issue_wake: 0,
        }
    }

    /// The resident (front) thread, if any.
    pub fn resident(&self) -> Option<ThreadId> {
        self.threads.front().copied()
    }

    pub(crate) fn is_drained(&self) -> bool {
        self.rob.is_empty()
    }

    /// Number of instructions currently occupying this context's ROB
    /// partition (watchdog diagnostics).
    pub(crate) fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Memory operations in the ROB that have not completed by `now`
    /// (unissued, or issued and still waiting on the hierarchy).
    pub(crate) fn pending_mem_ops(&self, now: Cycle) -> usize {
        self.rob
            .iter()
            .filter(|e| e.kind.is_mem() && (!e.issued || e.done_at > now))
            .count()
    }

    /// Reset per-residency state after a context switch.
    pub(crate) fn on_switch_in(&mut self, now: Cycle, switch_penalty: u64, quantum: u64) {
        debug_assert!(self.rob.is_empty());
        debug_assert!(self.unissued.is_empty());
        // An empty ROB has nothing unissued, so the scheduler's
        // queues drained with it.
        debug_assert!(self.cal_occ == 0);
        debug_assert!(self.cal_far.is_empty());
        debug_assert!(self.active.iter().all(Vec::is_empty));
        debug_assert!(self.spin.is_empty());
        self.cal_last = now;
        self.fetch_blocked_until = now + switch_penalty;
        self.awaiting_redirect = None;
        self.quantum_left = quantum;
        self.issue_dirty = true;
        self.issue_wake = 0;
    }

    /// Park a complete entry until its ready cycle `r` (`> now`).
    #[inline]
    fn cal_push(&mut self, r: Cycle, seq: u64) {
        if r <= self.cal_last + WHEEL as u64 {
            let b = (r & WHEEL_MASK) as usize;
            self.cal_wheel[b].push((r, seq));
            self.cal_occ |= 1 << b;
        } else {
            // Descending by ready-time; ties pop in either order and
            // land identically (the active insert sorts by seq).
            let i = self.cal_far.partition_point(|&(t, _)| t > r);
            self.cal_far.insert(i, (r, seq));
        }
    }

    /// Move every calendar entry with ready-time `<= now` into
    /// `active` (seq-sorted insert into its class list). Visits only
    /// the wheel buckets that were occupied in the span since the
    /// last sweep.
    fn cal_mature(&mut self, now: Cycle) {
        let base = self.rob.front().map_or(0, |e| e.seq);
        if self.cal_occ != 0 {
            let span = now - self.cal_last;
            // Bit mask of bucket positions covering (cal_last, now].
            let range = if span >= WHEEL as u64 {
                !0u64
            } else if span == 0 {
                0
            } else {
                (!0u64 >> (WHEEL as u64 - span))
                    .rotate_left(((self.cal_last + 1) & WHEEL_MASK) as u32)
            };
            let mut bits = self.cal_occ & range;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut i = 0;
                while i < self.cal_wheel[b].len() {
                    let (r, seq) = self.cal_wheel[b][i];
                    if r <= now {
                        self.cal_wheel[b].swap_remove(i);
                        let c = fu_class(self.rob[(seq - base) as usize].kind);
                        let j = self.active[c].partition_point(|&q| q < seq);
                        self.active[c].insert(j, seq);
                    } else {
                        i += 1;
                    }
                }
                if self.cal_wheel[b].is_empty() {
                    self.cal_occ &= !(1 << b);
                }
            }
        }
        while let Some(&(r, seq)) = self.cal_far.last() {
            if r > now {
                break;
            }
            self.cal_far.pop();
            let c = fu_class(self.rob[(seq - base) as usize].kind);
            let j = self.active[c].partition_point(|&q| q < seq);
            self.active[c].insert(j, seq);
        }
        self.cal_last = now;
    }

    /// Earliest calendar ready-time after `now` (`Cycle::MAX` if the
    /// calendar is empty). Exact once [`cal_mature`](Self::cal_mature)
    /// has run for `now`: every wheel entry then lies within
    /// `(now, now + WHEEL]`, so its bucket position decodes its cycle.
    #[inline]
    fn cal_next(&self, now: Cycle) -> Cycle {
        let mut next = self.cal_far.last().map_or(Cycle::MAX, |&(r, _)| r);
        if self.cal_occ != 0 {
            let rot = self.cal_occ.rotate_right(((now + 1) & WHEEL_MASK) as u32);
            let w = now + 1 + rot.trailing_zeros() as u64;
            if w < next {
                next = w;
            }
        }
        next
    }

    /// Serialize every mutable field of this hardware context,
    /// including the scheduler's calendar and wake-chain state —
    /// nothing is re-derived on restore, so the restored slot issues
    /// in exactly the order the saved one would have.
    pub(crate) fn snap_save(&self, w: &mut tlpsim_mem::SnapWriter) {
        w.marker(b"SLOT");
        w.usize(self.threads.len());
        for &t in &self.threads {
            w.usize(t);
        }
        w.u64(self.quantum_left);
        w.u64(self.fetch_blocked_until);
        w.opt_u64(self.awaiting_redirect);
        w.usize(self.rob.len());
        for e in &self.rob {
            w.u64(e.seq);
            w.u8(crate::snapio::kind_tag(e.kind));
            w.u64(e.prod1);
            w.u64(e.prod2);
            w.u64(e.addr.0);
            w.bool(e.mispredicted);
            w.bool(e.issued);
            w.u64(e.done_at);
            w.u8(e.nwait);
            w.u32(e.whead);
            w.u32(e.wnext1);
            w.u32(e.wnext2);
            w.u64(e.ready_part);
            w.u8(e.level);
        }
        w.usize(self.unissued.len());
        for &q in &self.unissued {
            w.u64(q);
        }
        for b in &self.cal_wheel {
            w.usize(b.len());
            for &(r, q) in b {
                w.u64(r);
                w.u64(q);
            }
        }
        w.u64(self.cal_occ);
        w.u64(self.cal_last);
        w.usize(self.cal_far.len());
        for &(r, q) in &self.cal_far {
            w.u64(r);
            w.u64(q);
        }
        for l in &self.active {
            w.usize(l.len());
            for &q in l {
                w.u64(q);
            }
        }
        w.usize(self.spin.len());
        for &q in &self.spin {
            w.u64(q);
        }
        match self.pending {
            None => w.u8(0),
            Some(Pending::Block(st)) => {
                w.u8(1);
                crate::snapio::save_pstate(st, w);
            }
            Some(Pending::Finish) => w.u8(2),
            Some(Pending::Switch) => w.u8(3),
        }
        w.bool(self.issue_dirty);
        w.u64(self.issue_wake);
    }

    /// Restore state saved by [`snap_save`](Self::snap_save);
    /// `nthreads` bounds the thread ids this slot may reference.
    pub(crate) fn snap_restore(
        &mut self,
        r: &mut tlpsim_mem::SnapReader<'_>,
        nthreads: usize,
    ) -> Result<(), tlpsim_mem::SnapError> {
        use tlpsim_mem::{snap_ensure, snap_mismatch};
        r.marker(b"SLOT")?;
        let nt = r.bounded_len()?;
        self.threads.clear();
        for _ in 0..nt {
            let t = r.usize()?;
            snap_ensure(
                t < nthreads,
                format!("slot queues thread {t}, only {nthreads} exist"),
            )?;
            self.threads.push_back(t);
        }
        self.quantum_left = r.u64()?;
        self.fetch_blocked_until = r.u64()?;
        self.awaiting_redirect = r.opt_u64()?;
        let nrob = r.bounded_len()?;
        self.rob.clear();
        for _ in 0..nrob {
            self.rob.push_back(RobEntry {
                seq: r.u64()?,
                kind: crate::snapio::kind_from_tag(r.u8()?)?,
                prod1: r.u64()?,
                prod2: r.u64()?,
                addr: Addr(r.u64()?),
                mispredicted: r.bool()?,
                issued: r.bool()?,
                done_at: r.u64()?,
                nwait: r.u8()?,
                whead: r.u32()?,
                wnext1: r.u32()?,
                wnext2: r.u32()?,
                ready_part: r.u64()?,
                level: r.u8()?,
            });
        }
        let nun = r.bounded_len()?;
        self.unissued.clear();
        for _ in 0..nun {
            self.unissued.push_back(r.u64()?);
        }
        for b in self.cal_wheel.iter_mut() {
            let n = r.bounded_len()?;
            b.clear();
            for _ in 0..n {
                b.push((r.u64()?, r.u64()?));
            }
        }
        self.cal_occ = r.u64()?;
        let occ_from_buckets = self
            .cal_wheel
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, b)| m | (u64::from(!b.is_empty()) << i));
        snap_ensure(
            self.cal_occ == occ_from_buckets,
            "calendar occupancy mask disagrees with bucket contents",
        )?;
        self.cal_last = r.u64()?;
        let nfar = r.bounded_len()?;
        self.cal_far.clear();
        for _ in 0..nfar {
            self.cal_far.push((r.u64()?, r.u64()?));
        }
        for l in self.active.iter_mut() {
            let n = r.bounded_len()?;
            l.clear();
            for _ in 0..n {
                l.push(r.u64()?);
            }
        }
        let nspin = r.bounded_len()?;
        self.spin.clear();
        for _ in 0..nspin {
            self.spin.push(r.u64()?);
        }
        self.pending = match r.u8()? {
            0 => None,
            1 => Some(Pending::Block(crate::snapio::load_pstate(r)?)),
            2 => Some(Pending::Finish),
            3 => Some(Pending::Switch),
            t => return Err(snap_mismatch(format!("pending tag {t}"))),
        };
        self.issue_dirty = r.bool()?;
        self.issue_wake = r.u64()?;
        Ok(())
    }
}

/// Inputs to [`CoreModel::classify_slot`] that are uniform across a
/// core's slots within one cycle (or one fast-forward span).
#[derive(Debug, Clone, Copy)]
struct ClassifyCtx {
    /// Contexts with a runnable resident thread.
    active: usize,
    /// Per-context ROB partition cap.
    cap: usize,
    /// Shared-window chip (occupancy enforced chip-wide).
    shared_rob: bool,
    /// Total ROB occupancy across contexts.
    total_occ: usize,
    /// Total ROB size.
    rob_size: usize,
    /// Evaluation cycle.
    now: Cycle,
}

/// Cycle-stepped model of one core.
#[derive(Debug)]
pub struct CoreModel {
    cfg: CoreConfig,
    core_id: usize,
    slots: Vec<Slot>,
    /// Round-robin grant pointers (advance past the last serviced
    /// context, the standard starvation-free RR arbiter).
    rr_fetch: usize,
    rr_issue: usize,
    rr_commit: usize,
    stats: CoreStats,
    /// Cached per-slot [`next_event`](Self::next_event) results.
    ev_cache: Vec<Cycle>,
    /// Bit `i` set = `ev_cache[i]` is valid: slot `i` has not been
    /// mutated since the value was computed (its event can only have
    /// *expired*, which the `> now` check at use-site handles).
    ev_valid: u64,
    /// Longest dependence distance for which a ready-time may be
    /// cached in `unissued`: `RING - rob_size`. Beyond it the
    /// producer's `done_ring` slot could be re-dispatched while the
    /// consumer is still in flight, so readiness must be re-derived
    /// from the ring each scan (see [`Slot::unissued`]).
    ready_cache_max_dist: u64,
    /// Persistent scratch for the ICOUNT fetch-order sort — reused
    /// across cycles so the hot path never allocates.
    fetch_order: Vec<usize>,
    #[allow(dead_code)] // reserved for engine-side quantum refresh
    quantum: u64,
}

impl CoreModel {
    /// Build an idle core.
    pub fn new(cfg: CoreConfig, core_id: usize, quantum: u64) -> Self {
        let slots: Vec<Slot> = (0..cfg.smt_contexts).map(|_| Slot::new()).collect();
        debug_assert!(slots.len() <= 64, "event-cache bitmask is u64");
        CoreModel {
            ready_cache_max_dist: (RING as u64).saturating_sub(u64::from(cfg.rob_size)),
            cfg,
            core_id,
            ev_cache: vec![0; slots.len()],
            ev_valid: 0,
            fetch_order: Vec::new(),
            slots,
            rr_fetch: 0,
            rr_issue: 0,
            rr_commit: 0,
            stats: CoreStats::default(),
            quantum,
        }
    }

    /// Drop every cached next-event result. Called by the engine
    /// whenever chip-global inputs to the per-slot scans change:
    /// thread-state transitions (barrier/lock wakeups alter fetch
    /// eligibility and the active-context count behind the ROB
    /// partition cap) and slot residency changes (context switches).
    pub(crate) fn invalidate_events(&mut self) {
        self.ev_valid = 0;
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    #[allow(dead_code)] // symmetric accessor; engine uses slots_mut
    pub(crate) fn slots(&self) -> &[Slot] {
        &self.slots
    }

    pub(crate) fn slots_mut(&mut self) -> &mut [Slot] {
        &mut self.slots
    }

    /// Number of contexts whose resident thread is runnable.
    fn active_contexts(&self, threads: &[ThreadCtl]) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.resident()
                    .map(|t| threads[t].state == ProgramState::Runnable)
                    .unwrap_or(false)
            })
            .count()
    }

    /// Current per-context ROB partition cap.
    fn partition_cap(&self, active: usize) -> usize {
        match self.cfg.rob_sharing {
            RobSharing::StaticPartition => (self.cfg.rob_size as usize) / active.max(1),
            // Shared window: any context may fill it; total occupancy is
            // enforced separately in fetch_dispatch.
            RobSharing::Shared => self.cfg.rob_size as usize,
        }
    }

    /// Total ROB occupancy across contexts (shared-window accounting).
    fn total_occupancy(&self) -> usize {
        self.slots.iter().map(|s| s.rob.len()).sum()
    }

    /// Advance this core by one cycle. Returns the number of
    /// instructions committed.
    pub(crate) fn cycle<S: TraceSink>(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        threads: &mut [ThreadCtl],
        events: &mut Vec<Drained>,
        sink: &mut S,
    ) -> u64 {
        let nslots = self.slots.len();
        let active = self.active_contexts(threads);
        self.stats.cycles += 1;
        if active > 0 {
            self.stats.busy_cycles += 1;
            self.stats.active_ctx_cycles += active as u64;
        }
        let cap = self.partition_cap(active);

        // Fully unpopulated core: nothing can happen this cycle.
        if active == 0 && self.slots.iter().all(|s| s.threads.is_empty()) {
            if S::ENABLED {
                for i in 0..nslots {
                    sink.attr(self.core_id, i, CpiComponent::Idle, 1);
                }
            }
            return 0;
        }

        // Burst-step bypass (DESIGN.md §10): a slot whose cached next
        // event lies strictly beyond `now` provably neither commits,
        // issues, nor dispatches this cycle (the §9 slot-event
        // contract), so the phase loops skip it wholesale and the slot
        // coasts through its quiet window without re-entering the
        // scheduler. With skipping disabled the cache is never
        // populated (`ev_valid == 0`), so the dense stepper remains
        // the untouched reference path.
        let mut quiet = 0u64;
        let mut bits = self.ev_valid;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.ev_cache[i] > now {
                quiet |= 1 << i;
            }
        }

        let (committed, commit_grants) = self.commit(now, threads, quiet, sink);
        // Re-mask against the bits still valid after each phase: a
        // phase that invalidates a slot's cached event (e.g. a
        // shared-ROB commit opens dispatch room for *every* slot) has
        // made the start-of-cycle mask stale for the phases after it.
        let quiet = quiet & self.ev_valid;
        let issue_grants = self.issue(now, mem, threads, quiet, sink);
        let quiet = quiet & self.ev_valid;
        self.fetch_dispatch(now, mem, threads, cap, quiet, sink);

        // Time-sharing quantum accounting. The decrement itself keeps
        // the cached `now + quantum_left` event invariant; only the
        // Switch transition invalidates.
        let mut inv = 0u64;
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.threads.len() > 1 && s.pending.is_none() {
                if let Some(t) = s.threads.front() {
                    if threads[*t].state == ProgramState::Runnable {
                        s.quantum_left = s.quantum_left.saturating_sub(1);
                        if s.quantum_left == 0 {
                            s.pending = Some(Pending::Switch);
                            inv |= 1 << i;
                        }
                    }
                }
            }
        }

        // Drain detection.
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(p) = s.pending {
                if s.rob.is_empty() {
                    inv |= 1 << i;
                    if let Some(tid) = s.resident() {
                        s.pending = None;
                        events.push(Drained {
                            tid,
                            core: self.core_id,
                            slot: i,
                            pending: p,
                        });
                    } else {
                        s.pending = None;
                    }
                }
            }
        }
        self.ev_valid &= !inv;

        if S::ENABLED {
            // CPI-stack attribution: exactly one component per slot per
            // cycle, evaluated on end-of-cycle state. A slot that was
            // granted commit or issue bandwidth this cycle did useful
            // work (Base); everything else classifies by what its
            // window head is provably waiting on.
            let cx = ClassifyCtx {
                active,
                cap,
                shared_rob: self.cfg.rob_sharing == RobSharing::Shared,
                total_occ: self.total_occupancy(),
                rob_size: self.cfg.rob_size as usize,
                now,
            };
            let grants = commit_grants | issue_grants;
            for (i, s) in self.slots.iter().enumerate() {
                let comp = Self::classify_slot(s, threads, grants & (1 << i) != 0, cx);
                sink.attr(self.core_id, i, comp, 1);
            }
        }

        let _ = nslots;
        committed
    }

    /// Attribute the current cycle of one hardware context to a CPI
    /// stack component. Evaluated on end-of-cycle state; inside a
    /// provably-quiet window (the §9 slot-event contract) every
    /// predicate read here is constant — no grants happen, the window
    /// head's identity/`done_at`/`level` are frozen, thread states and
    /// residency only change at engine event cycles, and
    /// `fetch_blocked_until` either stays `<= now` or lies beyond the
    /// window (it is itself an event) — so
    /// [`fast_forward`](Self::fast_forward) can evaluate once and
    /// weight by the span, reproducing the dense per-cycle sum exactly.
    fn classify_slot(
        s: &Slot,
        threads: &[ThreadCtl],
        granted: bool,
        cx: ClassifyCtx,
    ) -> CpiComponent {
        let Some(tid) = s.resident() else {
            return CpiComponent::Idle;
        };
        if threads[tid].state != ProgramState::Runnable {
            return CpiComponent::Idle;
        }
        if granted {
            return CpiComponent::Base;
        }
        match s.rob.front() {
            Some(head) if head.issued => {
                // In flight (a completed head would have committed, so
                // `done_at > now` here). Loads charge the level the
                // fill is coming from; non-memory latency charges the
                // window when it is the binding constraint, else base.
                match head.kind {
                    InstrKind::Load => match head.level {
                        1 => CpiComponent::L1,
                        2 => CpiComponent::L2,
                        3 => CpiComponent::Llc,
                        4 => CpiComponent::Dram,
                        _ => CpiComponent::Base,
                    },
                    InstrKind::Store => CpiComponent::Base,
                    _ => {
                        if s.rob.len() >= cx.cap || (cx.shared_rob && cx.total_occ >= cx.rob_size) {
                            CpiComponent::RobFull
                        } else {
                            CpiComponent::Base
                        }
                    }
                }
            }
            Some(_) => {
                // Unissued window head: all older instructions have
                // committed, so its producers are complete — it is
                // provably ready and simply lost issue arbitration
                // (width or functional units).
                if cx.active > 1 {
                    CpiComponent::SmtIssue
                } else {
                    CpiComponent::FuContention
                }
            }
            None => {
                if s.pending.is_some() {
                    // Drained block/finish/switch boundary awaiting the
                    // engine: the context has nothing to run.
                    CpiComponent::Idle
                } else if s.fetch_blocked_until > cx.now || s.awaiting_redirect.is_some() {
                    CpiComponent::Frontend
                } else if cx.active > 1 {
                    // Fetch-eligible with an empty window but no
                    // dispatch: lost fetch arbitration to co-runners.
                    CpiComponent::SmtFetch
                } else {
                    CpiComponent::Frontend
                }
            }
        }
    }

    /// Next-event surface for the fast-forwarding engine: the earliest
    /// cycle `>= now + 1` at which this core can *do or change
    /// anything* — commit, issue, fetch/dispatch, drain, set a
    /// time-sharing switch pending, or flip a context's
    /// fetch-eligibility (which feeds `fetch_idle_cycles`). Returns
    /// `Cycle::MAX` if the core will never act again without an
    /// external event (thread wakeup).
    ///
    /// The contract this upholds (DESIGN.md §9): for every cycle `c`
    /// with `now < c < next_event(now)`, running [`cycle`](Self::cycle)
    /// at `c` mutates nothing except the bulk-accumulable per-cycle
    /// counters and round-robin pointers that
    /// [`fast_forward`](Self::fast_forward) replays in closed form.
    /// Underestimating (returning an earlier cycle than necessary) only
    /// costs dense steps; overestimating would break bit-identity, so
    /// every uncertain case returns `now + 1`.
    ///
    /// Per-slot results are cached (`ev_cache`/`ev_valid`): quiescent
    /// windows on memory-bound chips average only a handful of cycles,
    /// so the probe runs up to once per cycle and an O(ROB) rescan of
    /// every slot each time would dominate the fast-forward savings. A
    /// cached value stays exact until the slot itself is mutated
    /// (commit/issue/fetch/drain/switch — those sites clear the valid
    /// bit), chip-global inputs change (the engine calls
    /// [`invalidate_events`](Self::invalidate_events)), or `now`
    /// reaches it. The one per-cycle mutation that does *not*
    /// invalidate is the time-sharing quantum tick: it decrements
    /// `quantum_left` exactly once per eligible cycle, so the cached
    /// absolute expiry cycle `now + quantum_left` is invariant.
    pub(crate) fn next_event(&mut self, now: Cycle, threads: &[ThreadCtl]) -> Cycle {
        // A fully unpopulated core only ticks its cycle counter.
        if self.slots.iter().all(|s| s.threads.is_empty()) {
            return Cycle::MAX;
        }
        let active = self.active_contexts(threads);
        let cap = self.partition_cap(active);
        let shared_rob = self.cfg.rob_sharing == RobSharing::Shared;
        let rob_size = self.cfg.rob_size as usize;
        let total_occ = if shared_rob {
            self.total_occupancy()
        } else {
            0
        };
        let mut ev = Cycle::MAX;
        for i in 0..self.slots.len() {
            let bit = 1u64 << i;
            let e = if self.ev_valid & bit != 0 && self.ev_cache[i] > now {
                self.ev_cache[i]
            } else {
                let e = Self::slot_event(
                    &self.slots[i],
                    now,
                    threads,
                    cap,
                    shared_rob,
                    total_occ,
                    rob_size,
                );
                self.ev_cache[i] = e;
                self.ev_valid |= bit;
                e
            };
            ev = ev.min(e);
            if ev <= now + 1 {
                return now + 1;
            }
        }
        ev
    }

    /// The earliest future event of a single slot (see
    /// [`next_event`](Self::next_event) for the contract). O(1): no
    /// ROB walk.
    fn slot_event(
        s: &Slot,
        now: Cycle,
        threads: &[ThreadCtl],
        cap: usize,
        shared_rob: bool,
        total_occ: usize,
        rob_size: usize,
    ) -> Cycle {
        let Some(tid) = s.resident() else {
            return Cycle::MAX;
        };
        // A drained pending resolves next cycle (should already have
        // fired this cycle; be conservative).
        if s.pending.is_some() && s.rob.is_empty() {
            return now + 1;
        }
        let t = &threads[tid];
        if let Some(e) = s.rob.front() {
            if e.issued && e.done_at <= now {
                // Head already complete: commits next cycle.
                return now + 1;
            }
        }
        if s.pending.is_none()
            && t.state == ProgramState::Runnable
            && s.fetch_blocked_until <= now
            && s.rob.len() < cap
            && (!shared_rob || total_occ < rob_size)
        {
            // Would stage/dispatch (or at least touch the I-cache
            // or set a block pending) next cycle.
            return now + 1;
        }
        let mut ev = Cycle::MAX;
        // --- Commit: only the head can commit, so its completion is
        // the commit-unblock event. Deeper completions matter only
        // through dependence wakeups, which `issue_wake` tracks. ---
        if let Some(e) = s.rob.front() {
            if e.issued {
                // Not yet done (the done case returned above).
                ev = ev.min(e.done_at);
            }
        }
        // --- Issue: mirror the dense scan gate exactly. The dense
        // stepper skips a slot's issue scan while `!issue_dirty &&
        // issue_wake > now`, so inside that span the scan neither runs
        // nor mutates anything; the first cycle the gate passes is the
        // event. Because jumps never cross that cycle, both engines
        // keep identical `issue_wake`/`issue_dirty` state. `issue_wake
        // <= now` can linger when the shared issue budget ran out
        // before the RR rotation reached this slot — the scan it is
        // owed may happen next cycle. ---
        if s.issue_dirty || s.issue_wake <= now {
            return now + 1;
        }
        ev = ev.min(s.issue_wake);
        // --- Fetch/dispatch ---
        // The dispatch-next-cycle case (room + unblocked) returned
        // `now + 1` in the cheap probe above; what's left is the
        // unblock time itself.
        if s.pending.is_none() && t.state == ProgramState::Runnable {
            if s.fetch_blocked_until > now {
                // Fetch resumes (I-cache fill, redirect, switch
                // penalty) — or, with the partition full, the slot
                // merely becomes fetch-*eligible* at this cycle,
                // which flips the core's `fetch_idle_cycles`
                // accounting. Either way it is an event. MAX while
                // awaiting a redirect: the gating branch's issue is
                // caught above.
                ev = ev.min(s.fetch_blocked_until);
            }
            // Time-sharing quantum tick runs every such cycle and
            // sets a Switch pending when it hits zero.
            if s.threads.len() > 1 {
                ev = ev.min(now + s.quantum_left.max(1));
            }
        }
        ev
    }

    /// Replay `span` provably-idle cycles `(now, now + span]` in bulk:
    /// exactly the per-cycle mutations [`cycle`](Self::cycle) performs
    /// on a cycle where nothing can commit, issue, dispatch, or drain
    /// (see [`next_event`](Self::next_event)). Must only be called with
    /// `span < next_event(now) - now`.
    pub(crate) fn fast_forward<S: TraceSink>(
        &mut self,
        now: Cycle,
        span: Cycle,
        threads: &[ThreadCtl],
        sink: &mut S,
    ) {
        self.stats.cycles += span;
        // Fully unpopulated core: `cycle` early-returns after the cycle
        // counter; no RR advance, no busy accounting.
        if self.slots.iter().all(|s| s.threads.is_empty()) {
            if S::ENABLED {
                for i in 0..self.slots.len() {
                    sink.attr(self.core_id, i, CpiComponent::Idle, span);
                }
            }
            return;
        }
        let active = self.active_contexts(threads) as u64;
        if active > 0 {
            self.stats.busy_cycles += span;
            self.stats.active_ctx_cycles += active * span;
        }
        // With no grants, each arbiter pointer advances one slot per
        // cycle (the `None => start + 1` arm of commit/issue/fetch).
        let nslots = self.slots.len();
        let step = (span % nslots as u64) as usize;
        self.rr_commit = (self.rr_commit + step) % nslots;
        self.rr_issue = (self.rr_issue + step) % nslots;
        self.rr_fetch = (self.rr_fetch + step) % nslots;
        let mut any_runnable = false;
        for s in self.slots.iter_mut() {
            let Some(tid) = s.resident() else { continue };
            if s.pending.is_none() && threads[tid].state == ProgramState::Runnable {
                if s.fetch_blocked_until <= now {
                    // Fetch-eligible (but partition-full) all span long.
                    any_runnable = true;
                }
                if s.threads.len() > 1 {
                    // Quantum ticks every such cycle; next_event capped
                    // the span before it reaches zero.
                    debug_assert!(s.quantum_left > span);
                    s.quantum_left = s.quantum_left.saturating_sub(span);
                }
            }
        }
        if any_runnable {
            // Eligible context(s) existed but nothing dispatched.
            self.stats.fetch_idle_cycles += span;
        }
        if S::ENABLED {
            // Inside a quiet span no slot commits, issues, or
            // dispatches and every classification predicate is frozen
            // (see [`classify_slot`](Self::classify_slot)), so one
            // evaluation weighted by `span` is bit-identical to the
            // dense per-cycle attribution over `(now, now + span]`.
            let cx = ClassifyCtx {
                active: active as usize,
                cap: self.partition_cap(active as usize),
                shared_rob: self.cfg.rob_sharing == RobSharing::Shared,
                total_occ: self.total_occupancy(),
                rob_size: self.cfg.rob_size as usize,
                now,
            };
            for (i, s) in self.slots.iter().enumerate() {
                let comp = Self::classify_slot(s, threads, false, cx);
                sink.attr(self.core_id, i, comp, span);
            }
        }
    }

    /// Returns the number of instructions committed this cycle (the
    /// engine keeps a chip-wide running total for its watchdog and
    /// busy-cycle gates instead of re-summing every thread per cycle)
    /// and the per-slot commit-grant bitmask (for CPI attribution).
    fn commit<S: TraceSink>(
        &mut self,
        now: Cycle,
        threads: &mut [ThreadCtl],
        quiet: u64,
        sink: &mut S,
    ) -> (u64, u64) {
        let mut budget = self.cfg.width as usize;
        let nslots = self.slots.len();
        let start = self.rr_commit;
        let mut last_granted = None;
        let mut inv = 0u64;
        for k in 0..nslots {
            if budget == 0 {
                break;
            }
            let slot_idx = (start + k) % nslots;
            if quiet & (1 << slot_idx) != 0 {
                continue; // inside its quiet window: head can't be done
            }
            let s = &mut self.slots[slot_idx];
            let Some(tid) = s.resident() else { continue };
            let before = budget;
            while budget > 0 {
                let Some(head) = s.rob.front() else { break };
                if !head.issued || head.done_at > now {
                    break;
                }
                let kind = head.kind;
                s.rob.pop_front();
                budget -= 1;
                self.stats.record_commit(kind);
                let t = &mut threads[tid];
                t.committed += 1;
                if t.finish_cycle.is_none() {
                    if let (Some(w), Some(b)) = (t.program.warmup(), t.program.budget()) {
                        if t.start_cycle.is_none() && t.committed >= w {
                            t.start_cycle = Some(now);
                        }
                        if t.committed >= w + b {
                            t.finish_cycle = Some(now);
                        }
                    }
                }
            }
            if budget < before {
                last_granted = Some(slot_idx);
                inv |= 1 << slot_idx;
                if S::ENABLED {
                    sink.event(TraceEvent::Commit {
                        core: self.core_id,
                        slot: slot_idx,
                        at: now,
                        count: (before - budget) as u32,
                    });
                }
            }
        }
        // Pre-expansion, `inv` is exactly the per-slot grant mask.
        let grants = inv;
        if inv != 0 && self.cfg.rob_sharing == RobSharing::Shared {
            // Shared window: freed entries open fetch room for *every*
            // slot, which can move their events earlier.
            inv = u64::MAX;
        }
        self.ev_valid &= !inv;
        self.rr_commit = match last_granted {
            Some(i) => (i + 1) % nslots.max(1),
            None => (start + 1) % nslots.max(1),
        };
        ((self.cfg.width as usize - budget) as u64, grants)
    }

    /// Returns the per-slot issue-grant bitmask (for CPI attribution).
    fn issue<S: TraceSink>(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        threads: &mut [ThreadCtl],
        quiet: u64,
        sink: &mut S,
    ) -> u64 {
        let mut budget = self.cfg.width as usize;
        // Pool capacities indexed by FU class (see [`fu_class`]).
        let fus = self.cfg.fus;
        let mut fu = [fus.int_alu, fus.muldiv, fus.fp, fus.ldst];
        let nslots = self.slots.len();
        let inorder = self.cfg.class == CoreClass::InOrder;
        let penalty = self.cfg.mispredict_penalty;
        let core_id = self.core_id;

        let start = self.rr_issue;
        let mut last_granted = None;
        let mut inv = 0u64;
        for k in 0..nslots {
            if budget == 0 {
                break;
            }
            let slot_idx = (start + k) % nslots;
            if quiet & (1 << slot_idx) != 0 {
                continue; // quiet window: the wake gate below would skip it
            }
            let s = &mut self.slots[slot_idx];
            let Some(tid) = s.resident() else { continue };
            // Readiness in a slot only changes through its own issues
            // (delivered via wake chains inside this very scan), the
            // calendar maturing, or a born-ready dispatch (which sets
            // `issue_dirty`). If the last scan found nothing, sleep
            // until the calendar's next ready-time.
            if !s.issue_dirty && s.issue_wake > now {
                continue;
            }
            // Mature the calendar: complete entries whose ready-time
            // has arrived become issue candidates, kept in seq order
            // because issue priority is program order.
            s.cal_mature(now);
            if s.active.iter().all(Vec::is_empty) && s.spin.is_empty() {
                s.issue_dirty = false;
                s.issue_wake = s.cal_next(now);
                continue;
            }

            let ring = &mut threads[tid].done_ring;
            let base_seq = s.rob.front().map_or(0, |e| e.seq);
            // The dense window: only the first ISSUE_SCAN unissued
            // entries (as of scan start) are eligible. Entries issued
            // mid-scan stay in place (marked via the ROB `issued`
            // flag) and are compacted out in one pass afterwards, so
            // ranks are stable scan-start indices throughout.
            let wlen = s.unissued.len().min(ISSUE_SCAN);
            // Largest in-window seq: entry `q` has window rank < wlen
            // iff `q <= wlast` (the queue is seq-sorted).
            let wlast = s.unissued[wlen - 1];
            let mut issued_here = 0usize;
            let mut fu_blocked = false;
            let mut first_rank = 0usize;
            let mut last_rank = 0usize;
            let mut cur = [0usize; FU_CLASSES];
            let mut si = 0usize;
            let mut rp = 0usize;
            // Classes whose FU pool still has capacity. An exhausted
            // class with a ready in-window entry blocks exactly like a
            // dense denial would (the head is the class's oldest
            // entry, so checking it suffices); setting the flag for an
            // entry the dense scan would not have reached only wakes
            // the slot a cycle early, which the contract permits.
            let mut alive = 0u8;
            for (c, &pool) in fu.iter().enumerate() {
                if pool > 0 {
                    alive |= 1 << c;
                } else if s.active[c].first().is_some_and(|&h| h <= wlast) {
                    fu_blocked = true;
                }
            }
            loop {
                // Next alias-unsafe candidate, readiness re-derived
                // from the ring lazily — after any ring writes from
                // earlier issues this cycle, exactly like the dense
                // reference's in-window reads. In practice `spin` is
                // empty and this loop body never runs.
                let mut next_spin = u64::MAX;
                while si < s.spin.len() {
                    let q = s.spin[si];
                    let e = &s.rob[(q - base_seq) as usize];
                    let r1 = if e.prod1 == NO_DEP {
                        0
                    } else {
                        ring[(e.prod1 & RING_MASK) as usize]
                    };
                    let r2 = if e.prod2 == NO_DEP {
                        0
                    } else {
                        ring[(e.prod2 & RING_MASK) as usize]
                    };
                    if r1 <= now && r2 <= now {
                        next_spin = q;
                        break;
                    }
                    si += 1;
                }
                // Merge the live class heads in program order. Spin is
                // folded in as a fifth (near-always absent) source.
                let mut seq = next_spin;
                let mut pick = FU_CLASSES;
                for (c, &cu) in cur.iter().enumerate() {
                    if alive & (1 << c) != 0 {
                        if let Some(&h) = s.active[c].get(cu) {
                            if h < seq {
                                seq = h;
                                pick = c;
                            }
                        }
                    }
                }
                if seq == u64::MAX {
                    break;
                }
                // Candidates arrive in ascending seq and the queue is
                // seq-sorted, so the rank cursor only moves forward —
                // at most `wlen` single steps across the whole scan —
                // and once one candidate falls outside the window all
                // later ones do too.
                while rp < wlen && s.unissued[rp] < seq {
                    rp += 1;
                }
                if rp >= wlen {
                    break;
                }
                let rank = rp;
                if inorder && rank != issued_here {
                    // Strict program order: nothing issues past the
                    // oldest waiting entry.
                    break;
                }
                let idx = (seq - base_seq) as usize;
                let kind = s.rob[idx].kind;
                if pick == FU_CLASSES {
                    // Spin entries carry no class list; check their
                    // pool the dense way.
                    let c = fu_class(kind);
                    if fu[c] == 0 {
                        fu_blocked = true; // ready entry denied; retry next cycle
                        si += 1;
                        if inorder {
                            break;
                        }
                        continue;
                    }
                    fu[c] -= 1;
                    if fu[c] == 0 {
                        alive &= !(1 << c);
                        if s.active[c].get(cur[c]).is_some_and(|&h| h <= wlast) {
                            fu_blocked = true;
                        }
                    }
                } else {
                    fu[pick] -= 1;
                    cur[pick] += 1;
                    if fu[pick] == 0 {
                        alive &= !(1 << pick);
                        if s.active[pick].get(cur[pick]).is_some_and(|&h| h <= wlast) {
                            fu_blocked = true;
                        }
                    }
                }
                budget -= 1;
                issued_here += 1;
                self.stats.issued += 1;

                let done_at = match kind {
                    InstrKind::Load => {
                        let r = mem.access_traced(
                            core_id,
                            AccessKind::Load,
                            s.rob[idx].addr,
                            now,
                            sink,
                        );
                        if S::ENABLED {
                            s.rob[idx].level = match r.level {
                                HitLevel::L1 => 1,
                                HitLevel::L2 => 2,
                                HitLevel::Llc => 3,
                                HitLevel::Dram => 4,
                            };
                        }
                        r.complete_at
                    }
                    InstrKind::Store => {
                        // Stores retire through the store buffer; the
                        // access updates cache/bus state but does not
                        // stall dependents or commit.
                        mem.access_traced(core_id, AccessKind::Store, s.rob[idx].addr, now, sink);
                        now + 1
                    }
                    k => now + k.exec_latency(),
                };
                let (mispredicted, mut chain) = {
                    let e = &mut s.rob[idx];
                    e.issued = true;
                    e.done_at = done_at;
                    let c = e.whead;
                    e.whead = 0;
                    (e.mispredicted, c)
                };
                ring[(seq & RING_MASK) as usize] = done_at;

                // Wake consumers that dispatched before this issue:
                // their ready-times are final once their last producer
                // issues. Almost always `done_at > now`, so they park
                // on the calendar; an MSHR-merged load can complete at
                // exactly `now`, making a consumer ready within this
                // same scan — it joins `active` ahead of the cursor
                // (consumer seqs exceed the producer's) just as the
                // dense in-window read would see it.
                while chain != 0 {
                    let delta = (chain >> 1) as usize;
                    let port = chain & 1;
                    let (ready, cseq, r, ckind) = {
                        let ce = &mut s.rob[idx + delta];
                        chain = if port == 0 { ce.wnext1 } else { ce.wnext2 };
                        if ce.ready_part < done_at {
                            ce.ready_part = done_at;
                        }
                        ce.nwait -= 1;
                        (ce.nwait == 0, ce.seq, ce.ready_part, ce.kind)
                    };
                    if ready {
                        if r <= now {
                            let c = fu_class(ckind);
                            let i = s.active[c].partition_point(|&q| q < cseq);
                            s.active[c].insert(i, cseq);
                            if alive & (1 << c) == 0 && cseq <= wlast {
                                // Woken into an exhausted class inside
                                // the window: a dense scan would deny
                                // it later this cycle.
                                fu_blocked = true;
                            }
                        } else {
                            s.cal_push(r, cseq);
                        }
                    }
                }

                if mispredicted && s.awaiting_redirect == Some(seq) {
                    s.awaiting_redirect = None;
                    s.fetch_blocked_until = done_at + penalty;
                }
                // An issued class-list candidate merely advanced its
                // cursor above; the consumed prefixes are drained once
                // after the loop (a per-issue `remove` would memmove
                // the tail every time). `spin` is near-always empty,
                // so it keeps the simple eager remove.
                if pick == FU_CLASSES {
                    s.spin.remove(si);
                }
                if issued_here == 1 {
                    first_rank = rank;
                }
                last_rank = rank;

                if budget == 0 {
                    // Dense semantics: the width ran out with window
                    // entries still uninspected => blocked, rescan
                    // next cycle.
                    if rank + 1 < wlen {
                        fu_blocked = true;
                    }
                    break;
                }
            }
            if issued_here > 0 {
                // Close the holes the issues left, in one pass each:
                // an entry survives iff it has not issued. The region
                // past the cursors was never touched.
                let mut w = first_rank;
                for r in first_rank..=last_rank {
                    let q = s.unissued[r];
                    if !s.rob[(q - base_seq) as usize].issued {
                        s.unissued[w] = q;
                        w += 1;
                    }
                }
                s.unissued.drain(w..=last_rank);
                // Class-list prefixes up to each cursor hold exactly
                // the entries issued this scan (cursors advance only
                // on issue, and mid-scan wakes insert at or past
                // them).
                for (c, &cu) in cur.iter().enumerate() {
                    if cu > 0 {
                        s.active[c].drain(..cu);
                    }
                }
            }

            s.issue_dirty = !s.spin.is_empty();
            s.issue_wake = if issued_here > 0 || fu_blocked {
                now + 1
            } else {
                s.cal_next(now)
            };
            if issued_here > 0 {
                last_granted = Some(slot_idx);
                inv |= 1 << slot_idx;
                if S::ENABLED {
                    sink.event(TraceEvent::Issue {
                        core: core_id,
                        slot: slot_idx,
                        at: now,
                        count: issued_here as u32,
                    });
                }
            }
            if inorder && issued_here > 0 {
                // Fine-grained MT: only one context issues per cycle;
                // stalled contexts yield the cycle to the next one.
                break;
            }
        }
        self.ev_valid &= !inv;
        self.rr_issue = match last_granted {
            Some(i) => (i + 1) % nslots.max(1),
            None => (start + 1) % nslots.max(1),
        };
        inv
    }

    fn fetch_dispatch<S: TraceSink>(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        threads: &mut [ThreadCtl],
        cap: usize,
        quiet: u64,
        sink: &mut S,
    ) {
        let nslots = self.slots.len();
        let width = self.cfg.width as usize;
        let core_id = self.core_id;
        let max_dist = self.ready_cache_max_dist;
        // RR.2.W policy: up to two contexts share the fetch width each
        // cycle (Tullsen et al.; the single-context case degenerates to
        // plain round-robin).
        let max_fetchers = if nslots > 1 { 2 } else { 1 };
        let mut budget = width;
        let mut fetchers = 0usize;
        let mut any_runnable = false;

        // Context visit order: round-robin from the grant pointer, or
        // fewest-in-flight-first for ICOUNT. The ICOUNT sort runs in
        // the persistent `fetch_order` scratch (taken out of `self` to
        // sidestep the borrow, restored below) so it never allocates.
        let start = self.rr_fetch;
        let use_icount = self.cfg.fetch_policy == FetchPolicy::ICount;
        let mut order = std::mem::take(&mut self.fetch_order);
        if use_icount {
            order.clear();
            order.extend(0..nslots);
            order.sort_by_key(|&i| (self.slots[i].rob.len(), (i + nslots - start) % nslots));
        }
        let shared_rob = self.cfg.rob_sharing == RobSharing::Shared;
        let rob_size = self.cfg.rob_size as usize;
        let mut total_occ = if shared_rob {
            self.total_occupancy()
        } else {
            0
        };
        let mut last_granted = None;
        let mut inv = 0u64;
        // `order` is only populated (and only indexed) under ICOUNT;
        // the round-robin arm derives the slot arithmetically, so a
        // unified iterator over one source does not exist.
        #[allow(clippy::needless_range_loop)]
        for k in 0..nslots {
            let slot_idx = if use_icount {
                order[k]
            } else {
                (start + k) % nslots
            };
            if budget == 0 || fetchers == max_fetchers {
                break;
            }
            if quiet & (1 << slot_idx) != 0 {
                // Quiet window: the slot provably dispatches nothing,
                // but a fetch-eligible context with a full partition
                // still counts for the fetch-idle accounting, exactly
                // as the checks below would conclude.
                let s = &self.slots[slot_idx];
                if let Some(tid) = s.resident() {
                    if s.pending.is_none()
                        && s.fetch_blocked_until <= now
                        && threads[tid].state == ProgramState::Runnable
                    {
                        any_runnable = true;
                    }
                }
                continue;
            }
            let s = &mut self.slots[slot_idx];
            let Some(tid) = s.resident() else { continue };
            if s.pending.is_some() || s.fetch_blocked_until > now {
                continue;
            }
            let t = &mut threads[tid];
            if t.state != ProgramState::Runnable {
                continue;
            }
            any_runnable = true;
            let fbu_before = s.fetch_blocked_until;

            let mut fetched = 0usize;
            while fetched < budget {
                if s.rob.len() >= cap || (shared_rob && total_occ >= rob_size) {
                    break;
                }
                // Stage the next instruction if needed.
                if t.staged.is_none() {
                    match t.program.next_fetch() {
                        FetchOutcome::Instr(i) => t.staged = Some(i),
                        FetchOutcome::Block(st) => {
                            s.pending = Some(Pending::Block(st));
                            break;
                        }
                        FetchOutcome::Finish => {
                            s.pending = Some(Pending::Finish);
                            break;
                        }
                    }
                }
                let instr = t.staged.as_ref().copied().expect("staged above");

                // I-cache: access once per line crossing.
                let line = instr.fetch_addr.line();
                if t.last_fetch_line != Some(line) {
                    let r =
                        mem.access_traced(core_id, AccessKind::Fetch, instr.fetch_addr, now, sink);
                    t.last_fetch_line = Some(line);
                    // A hit completes within the L1I latency (folded into
                    // the front-end depth); anything longer stalls fetch.
                    if r.level != tlpsim_mem::HitLevel::L1 || r.complete_at > now + 4 {
                        s.fetch_blocked_until = r.complete_at;
                        break;
                    }
                }

                // Dispatch into the ROB partition.
                t.staged = None;
                let seq = t.next_seq;
                t.next_seq += 1;
                // Mark "not yet done" so dependents wait at least until
                // this instruction issues.
                t.done_ring[(seq & RING_MASK) as usize] = Cycle::MAX;
                let to_prod = |dist: u16| -> u64 {
                    if dist == 0 || u64::from(dist) > seq {
                        NO_DEP
                    } else {
                        seq - u64::from(dist)
                    }
                };
                let prod1 = to_prod(instr.src1_dist);
                let prod2 = to_prod(instr.src2_dist);
                // Dependence resolution at dispatch (DESIGN.md §10):
                // producers that already issued contribute their final
                // done-times; still-unissued producers get a
                // wake-chain link and deliver theirs when they issue.
                // Either way readiness is exact from here on and no
                // scan ever re-derives it. Dependences farther than
                // the ring's alias-safe span take the conservative
                // `spin` path instead.
                let aliased = (prod1 != NO_DEP && seq - prod1 > max_dist)
                    || (prod2 != NO_DEP && seq - prod2 > max_dist);
                let mut nwait = 0u8;
                let mut part: Cycle = 0;
                let mut wnext1 = 0u32;
                let mut wnext2 = 0u32;
                if !aliased {
                    for (port, prod) in [(0u32, prod1), (1u32, prod2)] {
                        if prod == NO_DEP {
                            continue;
                        }
                        let v = t.done_ring[(prod & RING_MASK) as usize];
                        if v == Cycle::MAX {
                            // Dispatched but not yet issued, so the
                            // producer still sits in this slot's ROB.
                            let base = s.rob.front().expect("unissued producer is in the ROB").seq;
                            let pe = &mut s.rob[(prod - base) as usize];
                            let enc = (((seq - prod) as u32) << 1) | port;
                            if port == 0 {
                                wnext1 = pe.whead;
                            } else {
                                wnext2 = pe.whead;
                            }
                            pe.whead = enc;
                            nwait += 1;
                        } else if part < v {
                            part = v;
                        }
                    }
                }
                s.rob.push_back(RobEntry {
                    seq,
                    kind: instr.kind,
                    prod1,
                    prod2,
                    addr: instr.addr,
                    mispredicted: instr.mispredicted,
                    issued: false,
                    done_at: 0,
                    nwait,
                    whead: 0,
                    wnext1,
                    wnext2,
                    ready_part: part,
                    level: 0,
                });
                s.unissued.push_back(seq);
                if aliased {
                    s.spin.push(seq);
                    s.issue_dirty = true;
                } else if nwait == 0 {
                    if part <= now {
                        // Born ready: an issue candidate from the next
                        // cycle on (dispatch follows issue within the
                        // cycle). Largest seq in the slot, so pushing
                        // keeps the class list sorted.
                        s.active[fu_class(instr.kind)].push(seq);
                        s.issue_dirty = true;
                    } else {
                        s.cal_push(part, seq);
                        if s.issue_wake > part {
                            s.issue_wake = part;
                        }
                    }
                }
                fetched += 1;
                total_occ += 1;
                self.stats.dispatched += 1;

                if instr.mispredicted {
                    // Fetch stops until the branch executes.
                    s.awaiting_redirect = Some(seq);
                    s.fetch_blocked_until = Cycle::MAX;
                    break;
                }
            }
            if fetched > 0 || s.pending.is_some() || s.fetch_blocked_until != fbu_before {
                // The slot dispatched, hit a block/finish boundary, or
                // took an I-cache miss/redirect — its cached event is
                // stale either way.
                inv |= 1 << slot_idx;
            }
            if fetched > 0 {
                // Contexts that stalled without dispatching (I-cache
                // miss, full partition, block) don't count as fetchers
                // and yield their share to the next context.
                budget -= fetched;
                fetchers += 1;
                last_granted = Some(slot_idx);
                if S::ENABLED {
                    sink.event(TraceEvent::Fetch {
                        core: core_id,
                        slot: slot_idx,
                        at: now,
                        count: fetched as u32,
                    });
                }
            }
        }
        self.fetch_order = order;
        self.ev_valid &= !inv;
        self.rr_fetch = match last_granted {
            Some(i) => (i + 1) % nslots.max(1),
            None => (start + 1) % nslots.max(1),
        };
        if any_runnable && budget == width {
            self.stats.fetch_idle_cycles += 1;
        }
    }

    /// Serialize the core's mutable state: arbiter pointers, statistics
    /// and every hardware context. The configuration is structural.
    pub(crate) fn snap_save(&self, w: &mut tlpsim_mem::SnapWriter) {
        w.marker(b"CORE");
        w.usize(self.core_id);
        w.usize(self.slots.len());
        w.usize(self.rr_fetch);
        w.usize(self.rr_issue);
        w.usize(self.rr_commit);
        let st = &self.stats;
        w.u64(st.cycles);
        w.u64(st.busy_cycles);
        w.u64(st.active_ctx_cycles);
        w.u64_slice(&st.committed);
        w.u64(st.dispatched);
        w.u64(st.issued);
        w.u64(st.fetch_idle_cycles);
        for s in &self.slots {
            s.snap_save(w);
        }
    }

    /// Restore state saved by [`snap_save`](Self::snap_save). Clears
    /// the next-event cache: cached results describe the pre-restore
    /// state and are re-derived lazily.
    pub(crate) fn snap_restore(
        &mut self,
        r: &mut tlpsim_mem::SnapReader<'_>,
        nthreads: usize,
    ) -> Result<(), tlpsim_mem::SnapError> {
        use tlpsim_mem::snap_ensure;
        r.marker(b"CORE")?;
        let cid = r.usize()?;
        snap_ensure(
            cid == self.core_id,
            format!("core id: structure {}, snapshot {cid}", self.core_id),
        )?;
        let ns = r.usize()?;
        snap_ensure(
            ns == self.slots.len(),
            format!("core has {} contexts, snapshot {ns}", self.slots.len()),
        )?;
        let nslots = self.slots.len();
        let rrf = r.usize()?;
        let rri = r.usize()?;
        let rrc = r.usize()?;
        snap_ensure(
            rrf < nslots && rri < nslots && rrc < nslots,
            format!("round-robin pointers {rrf}/{rri}/{rrc} out of {nslots} contexts"),
        )?;
        self.rr_fetch = rrf;
        self.rr_issue = rri;
        self.rr_commit = rrc;
        self.stats.cycles = r.u64()?;
        self.stats.busy_cycles = r.u64()?;
        self.stats.active_ctx_cycles = r.u64()?;
        let committed = r.u64_vec()?;
        snap_ensure(
            committed.len() == self.stats.committed.len(),
            format!("commit histogram has {} kinds", committed.len()),
        )?;
        self.stats.committed.copy_from_slice(&committed);
        self.stats.dispatched = r.u64()?;
        self.stats.issued = r.u64()?;
        self.stats.fetch_idle_cycles = r.u64()?;
        for s in self.slots.iter_mut() {
            s.snap_restore(r, nthreads)?;
        }
        self.ev_valid = 0;
        Ok(())
    }
}
