//! The per-core pipeline model.
//!
//! One [`CoreModel`] simulates one core (out-of-order or in-order) with
//! its SMT hardware contexts ("slots"). Each cycle performs, in order:
//! commit, issue, fetch/dispatch, and drain detection. The model is
//! trace-driven: branch mispredictions stall fetch from the offending
//! context until the branch executes plus a redirect penalty (wrong-path
//! instructions are not simulated).
//!
//! ## SMT resource sharing (the paper's model)
//!
//! * **ROB**: statically partitioned among *active* contexts
//!   (`rob_size / active_contexts`), re-split when threads block or
//!   wake, per Raasch & Reinhardt's static partitioning.
//! * **Fetch**: round-robin — one context fetches up to `width`
//!   instructions per cycle.
//! * **Issue**: shared `width` and shared functional units per cycle;
//!   round-robin priority rotation across contexts. In-order cores issue
//!   from a single context per cycle (fine-grained multithreading,
//!   skipping stalled contexts).
//! * **Commit**: shared `width`, round-robin across contexts.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use tlpsim_mem::{AccessKind, Addr, Cycle, MemorySystem};
use tlpsim_workloads::InstrKind;

use crate::config::{CoreClass, CoreConfig, FetchPolicy, RobSharing};
use crate::program::{FetchOutcome, ProgramState, ThreadCtl, RING};
use crate::stats::CoreStats;
use crate::ThreadId;

const RING_MASK: u64 = (RING as u64) - 1;
/// Max unissued entries inspected per context per cycle (scheduler
/// selection-logic depth).
const ISSUE_SCAN: usize = 32;
/// Sentinel producer meaning "no register dependence".
const NO_DEP: u64 = u64::MAX;

/// Why a context stopped fetching and must drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// Thread will block (barrier / lock / critical-section boundary).
    Block(ProgramState),
    /// Thread finished its program.
    Finish,
    /// Time-sharing quantum expired; rotate the slot's thread queue.
    Switch,
}

/// An event the engine must resolve at end of cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Drained {
    pub tid: ThreadId,
    pub core: usize,
    pub slot: usize,
    pub pending: Pending,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    kind: InstrKind,
    prod1: u64,
    prod2: u64,
    addr: Addr,
    mispredicted: bool,
    issued: bool,
    done_at: Cycle,
}

/// One SMT hardware context.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Threads assigned to this context; front = resident.
    pub threads: VecDeque<ThreadId>,
    quantum_left: u64,
    fetch_blocked_until: Cycle,
    /// Sequence number of an in-flight mispredicted branch gating fetch.
    awaiting_redirect: Option<u64>,
    rob: VecDeque<RobEntry>,
    /// Sequence numbers of not-yet-issued ROB entries, in program
    /// order. Keeps the issue scan O(window) instead of O(ROB): with
    /// deep memory-level parallelism the ROB is dominated by issued
    /// in-flight entries the scan would otherwise re-walk every cycle.
    /// Entries are consecutive per-thread seqs, so a seq maps to its
    /// ROB index as `seq - rob.front().seq`.
    unissued: VecDeque<u64>,
    /// Completion times of issued entries, min-first. Stale values
    /// (`<= now`) are pruned at each scan; anything later belongs to an
    /// in-flight instruction (commit requires `done_at <= now`), so the
    /// heap top is exactly the old full-walk `next_completion`.
    done_heap: BinaryHeap<Reverse<Cycle>>,
    pub(crate) pending: Option<Pending>,
    /// New work was dispatched since the last issue scan.
    issue_dirty: bool,
    /// Earliest cycle at which a future issue scan can find work, when
    /// the last full scan found nothing ready (exact: dependences are
    /// thread-local, so only a completion in this slot changes it).
    issue_wake: Cycle,
}

impl Slot {
    fn new() -> Self {
        Slot {
            threads: VecDeque::new(),
            quantum_left: 0,
            fetch_blocked_until: 0,
            awaiting_redirect: None,
            rob: VecDeque::new(),
            unissued: VecDeque::new(),
            done_heap: BinaryHeap::new(),
            pending: None,
            issue_dirty: true,
            issue_wake: 0,
        }
    }

    /// The resident (front) thread, if any.
    pub fn resident(&self) -> Option<ThreadId> {
        self.threads.front().copied()
    }

    pub(crate) fn is_drained(&self) -> bool {
        self.rob.is_empty()
    }

    /// Number of instructions currently occupying this context's ROB
    /// partition (watchdog diagnostics).
    pub(crate) fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Memory operations in the ROB that have not completed by `now`
    /// (unissued, or issued and still waiting on the hierarchy).
    pub(crate) fn pending_mem_ops(&self, now: Cycle) -> usize {
        self.rob
            .iter()
            .filter(|e| e.kind.is_mem() && (!e.issued || e.done_at > now))
            .count()
    }

    /// Reset per-residency state after a context switch.
    pub(crate) fn on_switch_in(&mut self, now: Cycle, switch_penalty: u64, quantum: u64) {
        debug_assert!(self.rob.is_empty());
        debug_assert!(self.unissued.is_empty());
        // Only stale completion times can remain (an empty ROB has
        // nothing in flight); drop them rather than pruning lazily.
        self.done_heap.clear();
        self.fetch_blocked_until = now + switch_penalty;
        self.awaiting_redirect = None;
        self.quantum_left = quantum;
        self.issue_dirty = true;
        self.issue_wake = 0;
    }
}

/// Cycle-stepped model of one core.
#[derive(Debug)]
pub struct CoreModel {
    cfg: CoreConfig,
    core_id: usize,
    slots: Vec<Slot>,
    /// Round-robin grant pointers (advance past the last serviced
    /// context, the standard starvation-free RR arbiter).
    rr_fetch: usize,
    rr_issue: usize,
    rr_commit: usize,
    stats: CoreStats,
    /// Cached per-slot [`next_event`](Self::next_event) results.
    ev_cache: Vec<Cycle>,
    /// Bit `i` set = `ev_cache[i]` is valid: slot `i` has not been
    /// mutated since the value was computed (its event can only have
    /// *expired*, which the `> now` check at use-site handles).
    ev_valid: u64,
    #[allow(dead_code)] // reserved for engine-side quantum refresh
    quantum: u64,
}

impl CoreModel {
    /// Build an idle core.
    pub fn new(cfg: CoreConfig, core_id: usize, quantum: u64) -> Self {
        let slots: Vec<Slot> = (0..cfg.smt_contexts).map(|_| Slot::new()).collect();
        debug_assert!(slots.len() <= 64, "event-cache bitmask is u64");
        CoreModel {
            cfg,
            core_id,
            ev_cache: vec![0; slots.len()],
            ev_valid: 0,
            slots,
            rr_fetch: 0,
            rr_issue: 0,
            rr_commit: 0,
            stats: CoreStats::default(),
            quantum,
        }
    }

    /// Drop every cached next-event result. Called by the engine
    /// whenever chip-global inputs to the per-slot scans change:
    /// thread-state transitions (barrier/lock wakeups alter fetch
    /// eligibility and the active-context count behind the ROB
    /// partition cap) and slot residency changes (context switches).
    pub(crate) fn invalidate_events(&mut self) {
        self.ev_valid = 0;
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    #[allow(dead_code)] // symmetric accessor; engine uses slots_mut
    pub(crate) fn slots(&self) -> &[Slot] {
        &self.slots
    }

    pub(crate) fn slots_mut(&mut self) -> &mut [Slot] {
        &mut self.slots
    }

    /// Number of contexts whose resident thread is runnable.
    fn active_contexts(&self, threads: &[ThreadCtl]) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.resident()
                    .map(|t| threads[t].state == ProgramState::Runnable)
                    .unwrap_or(false)
            })
            .count()
    }

    /// Current per-context ROB partition cap.
    fn partition_cap(&self, active: usize) -> usize {
        match self.cfg.rob_sharing {
            RobSharing::StaticPartition => (self.cfg.rob_size as usize) / active.max(1),
            // Shared window: any context may fill it; total occupancy is
            // enforced separately in fetch_dispatch.
            RobSharing::Shared => self.cfg.rob_size as usize,
        }
    }

    /// Total ROB occupancy across contexts (shared-window accounting).
    fn total_occupancy(&self) -> usize {
        self.slots.iter().map(|s| s.rob.len()).sum()
    }

    /// Advance this core by one cycle.
    pub(crate) fn cycle(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        threads: &mut [ThreadCtl],
        events: &mut Vec<Drained>,
    ) {
        let nslots = self.slots.len();
        let active = self.active_contexts(threads);
        self.stats.cycles += 1;
        if active > 0 {
            self.stats.busy_cycles += 1;
            self.stats.active_ctx_cycles += active as u64;
        }
        let cap = self.partition_cap(active);

        // Fully unpopulated core: nothing can happen this cycle.
        if active == 0 && self.slots.iter().all(|s| s.threads.is_empty()) {
            return;
        }

        self.commit(now, threads);
        self.issue(now, mem, threads);
        self.fetch_dispatch(now, mem, threads, cap);

        // Time-sharing quantum accounting. The decrement itself keeps
        // the cached `now + quantum_left` event invariant; only the
        // Switch transition invalidates.
        let mut inv = 0u64;
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.threads.len() > 1 && s.pending.is_none() {
                if let Some(t) = s.threads.front() {
                    if threads[*t].state == ProgramState::Runnable {
                        s.quantum_left = s.quantum_left.saturating_sub(1);
                        if s.quantum_left == 0 {
                            s.pending = Some(Pending::Switch);
                            inv |= 1 << i;
                        }
                    }
                }
            }
        }

        // Drain detection.
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(p) = s.pending {
                if s.rob.is_empty() {
                    inv |= 1 << i;
                    if let Some(tid) = s.resident() {
                        s.pending = None;
                        events.push(Drained {
                            tid,
                            core: self.core_id,
                            slot: i,
                            pending: p,
                        });
                    } else {
                        s.pending = None;
                    }
                }
            }
        }
        self.ev_valid &= !inv;

        let _ = nslots;
    }

    /// Next-event surface for the fast-forwarding engine: the earliest
    /// cycle `>= now + 1` at which this core can *do or change
    /// anything* — commit, issue, fetch/dispatch, drain, set a
    /// time-sharing switch pending, or flip a context's
    /// fetch-eligibility (which feeds `fetch_idle_cycles`). Returns
    /// `Cycle::MAX` if the core will never act again without an
    /// external event (thread wakeup).
    ///
    /// The contract this upholds (DESIGN.md §9): for every cycle `c`
    /// with `now < c < next_event(now)`, running [`cycle`](Self::cycle)
    /// at `c` mutates nothing except the bulk-accumulable per-cycle
    /// counters and round-robin pointers that
    /// [`fast_forward`](Self::fast_forward) replays in closed form.
    /// Underestimating (returning an earlier cycle than necessary) only
    /// costs dense steps; overestimating would break bit-identity, so
    /// every uncertain case returns `now + 1`.
    ///
    /// Per-slot results are cached (`ev_cache`/`ev_valid`): quiescent
    /// windows on memory-bound chips average only a handful of cycles,
    /// so the probe runs up to once per cycle and an O(ROB) rescan of
    /// every slot each time would dominate the fast-forward savings. A
    /// cached value stays exact until the slot itself is mutated
    /// (commit/issue/fetch/drain/switch — those sites clear the valid
    /// bit), chip-global inputs change (the engine calls
    /// [`invalidate_events`](Self::invalidate_events)), or `now`
    /// reaches it. The one per-cycle mutation that does *not*
    /// invalidate is the time-sharing quantum tick: it decrements
    /// `quantum_left` exactly once per eligible cycle, so the cached
    /// absolute expiry cycle `now + quantum_left` is invariant.
    pub(crate) fn next_event(&mut self, now: Cycle, threads: &[ThreadCtl]) -> Cycle {
        // A fully unpopulated core only ticks its cycle counter.
        if self.slots.iter().all(|s| s.threads.is_empty()) {
            return Cycle::MAX;
        }
        let active = self.active_contexts(threads);
        let cap = self.partition_cap(active);
        let shared_rob = self.cfg.rob_sharing == RobSharing::Shared;
        let rob_size = self.cfg.rob_size as usize;
        let total_occ = if shared_rob {
            self.total_occupancy()
        } else {
            0
        };
        let mut ev = Cycle::MAX;
        for i in 0..self.slots.len() {
            let bit = 1u64 << i;
            let e = if self.ev_valid & bit != 0 && self.ev_cache[i] > now {
                self.ev_cache[i]
            } else {
                let e = Self::slot_event(
                    &self.slots[i],
                    now,
                    threads,
                    cap,
                    shared_rob,
                    total_occ,
                    rob_size,
                );
                self.ev_cache[i] = e;
                self.ev_valid |= bit;
                e
            };
            ev = ev.min(e);
            if ev <= now + 1 {
                return now + 1;
            }
        }
        ev
    }

    /// The earliest future event of a single slot (see
    /// [`next_event`](Self::next_event) for the contract). O(1): no
    /// ROB walk.
    fn slot_event(
        s: &Slot,
        now: Cycle,
        threads: &[ThreadCtl],
        cap: usize,
        shared_rob: bool,
        total_occ: usize,
        rob_size: usize,
    ) -> Cycle {
        let Some(tid) = s.resident() else {
            return Cycle::MAX;
        };
        // A drained pending resolves next cycle (should already have
        // fired this cycle; be conservative).
        if s.pending.is_some() && s.rob.is_empty() {
            return now + 1;
        }
        let t = &threads[tid];
        if let Some(e) = s.rob.front() {
            if e.issued && e.done_at <= now {
                // Head already complete: commits next cycle.
                return now + 1;
            }
        }
        if s.pending.is_none()
            && t.state == ProgramState::Runnable
            && s.fetch_blocked_until <= now
            && s.rob.len() < cap
            && (!shared_rob || total_occ < rob_size)
        {
            // Would stage/dispatch (or at least touch the I-cache
            // or set a block pending) next cycle.
            return now + 1;
        }
        let mut ev = Cycle::MAX;
        // --- Commit: only the head can commit, so its completion is
        // the commit-unblock event. Deeper completions matter only
        // through dependence wakeups, which `issue_wake` tracks. ---
        if let Some(e) = s.rob.front() {
            if e.issued {
                // Not yet done (the done case returned above).
                ev = ev.min(e.done_at);
            }
        }
        // --- Issue: mirror the dense scan gate exactly. The dense
        // stepper skips a slot's issue scan while `!issue_dirty &&
        // issue_wake > now`, so inside that span the scan neither runs
        // nor mutates anything; the first cycle the gate passes is the
        // event. Because jumps never cross that cycle, both engines
        // keep identical `issue_wake`/`issue_dirty` state. `issue_wake
        // <= now` can linger when the shared issue budget ran out
        // before the RR rotation reached this slot — the scan it is
        // owed may happen next cycle. ---
        if s.issue_dirty || s.issue_wake <= now {
            return now + 1;
        }
        ev = ev.min(s.issue_wake);
        // --- Fetch/dispatch ---
        // The dispatch-next-cycle case (room + unblocked) returned
        // `now + 1` in the cheap probe above; what's left is the
        // unblock time itself.
        if s.pending.is_none() && t.state == ProgramState::Runnable {
            if s.fetch_blocked_until > now {
                // Fetch resumes (I-cache fill, redirect, switch
                // penalty) — or, with the partition full, the slot
                // merely becomes fetch-*eligible* at this cycle,
                // which flips the core's `fetch_idle_cycles`
                // accounting. Either way it is an event. MAX while
                // awaiting a redirect: the gating branch's issue is
                // caught above.
                ev = ev.min(s.fetch_blocked_until);
            }
            // Time-sharing quantum tick runs every such cycle and
            // sets a Switch pending when it hits zero.
            if s.threads.len() > 1 {
                ev = ev.min(now + s.quantum_left.max(1));
            }
        }
        ev
    }

    /// Replay `span` provably-idle cycles `(now, now + span]` in bulk:
    /// exactly the per-cycle mutations [`cycle`](Self::cycle) performs
    /// on a cycle where nothing can commit, issue, dispatch, or drain
    /// (see [`next_event`](Self::next_event)). Must only be called with
    /// `span < next_event(now) - now`.
    pub(crate) fn fast_forward(&mut self, now: Cycle, span: Cycle, threads: &[ThreadCtl]) {
        self.stats.cycles += span;
        // Fully unpopulated core: `cycle` early-returns after the cycle
        // counter; no RR advance, no busy accounting.
        if self.slots.iter().all(|s| s.threads.is_empty()) {
            return;
        }
        let active = self.active_contexts(threads) as u64;
        if active > 0 {
            self.stats.busy_cycles += span;
            self.stats.active_ctx_cycles += active * span;
        }
        // With no grants, each arbiter pointer advances one slot per
        // cycle (the `None => start + 1` arm of commit/issue/fetch).
        let nslots = self.slots.len();
        let step = (span % nslots as u64) as usize;
        self.rr_commit = (self.rr_commit + step) % nslots;
        self.rr_issue = (self.rr_issue + step) % nslots;
        self.rr_fetch = (self.rr_fetch + step) % nslots;
        let mut any_runnable = false;
        for s in self.slots.iter_mut() {
            let Some(tid) = s.resident() else { continue };
            if s.pending.is_none() && threads[tid].state == ProgramState::Runnable {
                if s.fetch_blocked_until <= now {
                    // Fetch-eligible (but partition-full) all span long.
                    any_runnable = true;
                }
                if s.threads.len() > 1 {
                    // Quantum ticks every such cycle; next_event capped
                    // the span before it reaches zero.
                    debug_assert!(s.quantum_left > span);
                    s.quantum_left = s.quantum_left.saturating_sub(span);
                }
            }
        }
        if any_runnable {
            // Eligible context(s) existed but nothing dispatched.
            self.stats.fetch_idle_cycles += span;
        }
    }

    fn commit(&mut self, now: Cycle, threads: &mut [ThreadCtl]) {
        let mut budget = self.cfg.width as usize;
        let nslots = self.slots.len();
        let start = self.rr_commit;
        let mut last_granted = None;
        let mut inv = 0u64;
        for k in 0..nslots {
            if budget == 0 {
                break;
            }
            let slot_idx = (start + k) % nslots;
            let s = &mut self.slots[slot_idx];
            let Some(tid) = s.resident() else { continue };
            let before = budget;
            while budget > 0 {
                let Some(head) = s.rob.front() else { break };
                if !head.issued || head.done_at > now {
                    break;
                }
                let kind = head.kind;
                s.rob.pop_front();
                budget -= 1;
                self.stats.record_commit(kind);
                let t = &mut threads[tid];
                t.committed += 1;
                if t.finish_cycle.is_none() {
                    if let (Some(w), Some(b)) = (t.program.warmup(), t.program.budget()) {
                        if t.start_cycle.is_none() && t.committed >= w {
                            t.start_cycle = Some(now);
                        }
                        if t.committed >= w + b {
                            t.finish_cycle = Some(now);
                        }
                    }
                }
            }
            if budget < before {
                last_granted = Some(slot_idx);
                inv |= 1 << slot_idx;
            }
        }
        if inv != 0 && self.cfg.rob_sharing == RobSharing::Shared {
            // Shared window: freed entries open fetch room for *every*
            // slot, which can move their events earlier.
            inv = u64::MAX;
        }
        self.ev_valid &= !inv;
        self.rr_commit = match last_granted {
            Some(i) => (i + 1) % nslots.max(1),
            None => (start + 1) % nslots.max(1),
        };
    }

    fn issue(&mut self, now: Cycle, mem: &mut MemorySystem, threads: &mut [ThreadCtl]) {
        let mut budget = self.cfg.width as usize;
        let mut fu = self.cfg.fus;
        let nslots = self.slots.len();
        let inorder = self.cfg.class == CoreClass::InOrder;
        let penalty = self.cfg.mispredict_penalty;
        let core_id = self.core_id;

        let start = self.rr_issue;
        let mut last_granted = None;
        let mut inv = 0u64;
        for k in 0..nslots {
            if budget == 0 {
                break;
            }
            let slot_idx = (start + k) % nslots;
            let s = &mut self.slots[slot_idx];
            let Some(tid) = s.resident() else { continue };
            // Readiness in a slot only changes when one of its own
            // in-flight instructions completes (dependences are
            // thread-local) or when new instructions dispatch. If a
            // previous full scan found nothing ready, sleep until the
            // next completion.
            if !s.issue_dirty && s.issue_wake > now {
                continue;
            }
            let ring = &mut threads[tid].done_ring;

            let mut issued_here = 0usize;
            let mut fu_blocked = false;
            // Scheduler selection: inspect the oldest ISSUE_SCAN
            // not-yet-issued entries (the `unissued` queue — issued
            // in-flight entries cost nothing, unlike a raw ROB walk).
            let base_seq = s.rob.front().map_or(0, |e| e.seq);
            let mut kept = [0u64; ISSUE_SCAN];
            let mut nkept = 0usize;
            let mut taken = 0usize;
            while taken < s.unissued.len() && taken < ISSUE_SCAN {
                if budget == 0 {
                    // Shared width gone mid-scan: an issue consumed it
                    // (the outer loop never enters a slot at zero), so
                    // `issued_here > 0` already forces a rescan.
                    fu_blocked = true;
                    break;
                }
                let seq = s.unissued[taken];
                taken += 1;
                let e = &mut s.rob[(seq - base_seq) as usize];
                let r1 = e.prod1 == NO_DEP || ring[(e.prod1 & RING_MASK) as usize] <= now;
                let r2 = e.prod2 == NO_DEP || ring[(e.prod2 & RING_MASK) as usize] <= now;
                if !(r1 && r2) {
                    kept[nkept] = seq;
                    nkept += 1;
                    if inorder {
                        break; // strict program-order issue
                    }
                    continue;
                }
                // Functional-unit availability.
                let unit = match e.kind {
                    InstrKind::IntAlu | InstrKind::Branch => &mut fu.int_alu,
                    InstrKind::IntMul | InstrKind::IntDiv => &mut fu.muldiv,
                    InstrKind::FpAlu => &mut fu.fp,
                    InstrKind::Load | InstrKind::Store => &mut fu.ldst,
                };
                if *unit == 0 {
                    fu_blocked = true; // ready entry exists; retry next cycle
                    kept[nkept] = seq;
                    nkept += 1;
                    if inorder {
                        break;
                    }
                    continue;
                }
                *unit -= 1;
                budget -= 1;
                issued_here += 1;
                self.stats.issued += 1;

                let done_at = match e.kind {
                    InstrKind::Load => {
                        mem.access(core_id, AccessKind::Load, e.addr, now)
                            .complete_at
                    }
                    InstrKind::Store => {
                        // Stores retire through the store buffer; the
                        // access updates cache/bus state but does not
                        // stall dependents or commit.
                        mem.access(core_id, AccessKind::Store, e.addr, now);
                        now + 1
                    }
                    k => now + k.exec_latency(),
                };
                e.issued = true;
                e.done_at = done_at;
                if done_at > now {
                    s.done_heap.push(Reverse(done_at));
                }
                ring[(e.seq & RING_MASK) as usize] = done_at;

                if e.mispredicted && s.awaiting_redirect == Some(e.seq) {
                    s.awaiting_redirect = None;
                    s.fetch_blocked_until = done_at + penalty;
                }
            }
            // Replace the inspected prefix with its unissued survivors.
            if taken > nkept {
                s.unissued.drain(..taken);
                for &seq in kept[..nkept].iter().rev() {
                    s.unissued.push_front(seq);
                }
            }
            // Earliest in-flight completion: prune stale heap tops
            // (committed entries always completed in the past, so
            // anything left above `now` is in flight).
            while let Some(&Reverse(t_done)) = s.done_heap.peek() {
                if t_done > now {
                    break;
                }
                s.done_heap.pop();
            }
            let next_completion = s.done_heap.peek().map_or(Cycle::MAX, |&Reverse(t)| t);
            // Record when this slot could next make issue progress.
            s.issue_dirty = false;
            s.issue_wake = if issued_here > 0 || fu_blocked {
                now + 1
            } else {
                next_completion
            };
            if issued_here > 0 {
                last_granted = Some(slot_idx);
                inv |= 1 << slot_idx;
            }
            if inorder && issued_here > 0 {
                // Fine-grained MT: only one context issues per cycle;
                // stalled contexts yield the cycle to the next one.
                break;
            }
        }
        self.ev_valid &= !inv;
        self.rr_issue = match last_granted {
            Some(i) => (i + 1) % nslots.max(1),
            None => (start + 1) % nslots.max(1),
        };
    }

    fn fetch_dispatch(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        threads: &mut [ThreadCtl],
        cap: usize,
    ) {
        let nslots = self.slots.len();
        let width = self.cfg.width as usize;
        let core_id = self.core_id;
        // RR.2.W policy: up to two contexts share the fetch width each
        // cycle (Tullsen et al.; the single-context case degenerates to
        // plain round-robin).
        let max_fetchers = if nslots > 1 { 2 } else { 1 };
        let mut budget = width;
        let mut fetchers = 0usize;
        let mut any_runnable = false;

        // Context visit order: round-robin from the grant pointer, or
        // fewest-in-flight-first for ICOUNT.
        let start = self.rr_fetch;
        // ICOUNT visits contexts fewest-in-flight-first; round-robin
        // (the paper's policy, and the hot path) avoids the sort.
        let icount_order: Option<Vec<usize>> = match self.cfg.fetch_policy {
            FetchPolicy::RoundRobin => None,
            FetchPolicy::ICount => {
                let mut v: Vec<usize> = (0..nslots).collect();
                v.sort_by_key(|&i| (self.slots[i].rob.len(), (i + nslots - start) % nslots));
                Some(v)
            }
        };
        let shared_rob = self.cfg.rob_sharing == RobSharing::Shared;
        let rob_size = self.cfg.rob_size as usize;
        let mut total_occ = if shared_rob {
            self.total_occupancy()
        } else {
            0
        };
        let mut last_granted = None;
        let mut inv = 0u64;
        for k in 0..nslots {
            let slot_idx = match &icount_order {
                None => (start + k) % nslots,
                Some(v) => v[k],
            };
            if budget == 0 || fetchers == max_fetchers {
                break;
            }
            let s = &mut self.slots[slot_idx];
            let Some(tid) = s.resident() else { continue };
            if s.pending.is_some() || s.fetch_blocked_until > now {
                continue;
            }
            let t = &mut threads[tid];
            if t.state != ProgramState::Runnable {
                continue;
            }
            any_runnable = true;
            let fbu_before = s.fetch_blocked_until;

            let mut fetched = 0usize;
            while fetched < budget {
                if s.rob.len() >= cap || (shared_rob && total_occ >= rob_size) {
                    break;
                }
                // Stage the next instruction if needed.
                if t.staged.is_none() {
                    match t.program.next_fetch() {
                        FetchOutcome::Instr(i) => t.staged = Some(i),
                        FetchOutcome::Block(st) => {
                            s.pending = Some(Pending::Block(st));
                            break;
                        }
                        FetchOutcome::Finish => {
                            s.pending = Some(Pending::Finish);
                            break;
                        }
                    }
                }
                let instr = t.staged.as_ref().copied().expect("staged above");

                // I-cache: access once per line crossing.
                let line = instr.fetch_addr.line();
                if t.last_fetch_line != Some(line) {
                    let r = mem.access(core_id, AccessKind::Fetch, instr.fetch_addr, now);
                    t.last_fetch_line = Some(line);
                    // A hit completes within the L1I latency (folded into
                    // the front-end depth); anything longer stalls fetch.
                    if r.level != tlpsim_mem::HitLevel::L1 || r.complete_at > now + 4 {
                        s.fetch_blocked_until = r.complete_at;
                        break;
                    }
                }

                // Dispatch into the ROB partition.
                t.staged = None;
                let seq = t.next_seq;
                t.next_seq += 1;
                // Mark "not yet done" so dependents wait at least until
                // this instruction issues.
                t.done_ring[(seq & RING_MASK) as usize] = Cycle::MAX;
                let to_prod = |dist: u16| -> u64 {
                    if dist == 0 || u64::from(dist) > seq {
                        NO_DEP
                    } else {
                        seq - u64::from(dist)
                    }
                };
                s.rob.push_back(RobEntry {
                    seq,
                    kind: instr.kind,
                    prod1: to_prod(instr.src1_dist),
                    prod2: to_prod(instr.src2_dist),
                    addr: instr.addr,
                    mispredicted: instr.mispredicted,
                    issued: false,
                    done_at: 0,
                });
                s.unissued.push_back(seq);
                fetched += 1;
                total_occ += 1;
                self.stats.dispatched += 1;
                s.issue_dirty = true;

                if instr.mispredicted {
                    // Fetch stops until the branch executes.
                    s.awaiting_redirect = Some(seq);
                    s.fetch_blocked_until = Cycle::MAX;
                    break;
                }
            }
            if fetched > 0 || s.pending.is_some() || s.fetch_blocked_until != fbu_before {
                // The slot dispatched, hit a block/finish boundary, or
                // took an I-cache miss/redirect — its cached event is
                // stale either way.
                inv |= 1 << slot_idx;
            }
            if fetched > 0 {
                // Contexts that stalled without dispatching (I-cache
                // miss, full partition, block) don't count as fetchers
                // and yield their share to the next context.
                budget -= fetched;
                fetchers += 1;
                last_granted = Some(slot_idx);
            }
        }
        self.ev_valid &= !inv;
        self.rr_fetch = match last_granted {
            Some(i) => (i + 1) % nslots.max(1),
            None => (start + 1) % nslots.max(1),
        };
        if any_runnable && budget == width {
            self.stats.fetch_idle_cycles += 1;
        }
    }
}
