//! # tlpsim-power — McPAT-like power and energy model
//!
//! The paper uses McPAT (45 nm, aggressive clock gating) to establish
//! that one big core is power-equivalent to two medium or five small
//! cores, and to produce the power/energy results of Section 7. McPAT
//! itself is a large C++ RTL-level modeling tool; what the study
//! actually consumes from it is a handful of aggregate numbers, so this
//! crate implements an *event-based activity model calibrated to the
//! published anchors*:
//!
//! * one active core (plus ~7 W of always-on uncore): ≈ 17.3 / 13.5 /
//!   9.8 W for big / medium / small;
//! * average busy-core power ratios ≈ 1.8× (big:medium) and 4.4×
//!   (big:small);
//! * 24-thread chip totals ≈ 46 / 50 / 45 W for 4B / 8m / 20s;
//! * activating SMT contexts raises power much less than activating
//!   cores (Figure 14: 4B goes from ~42 W at 4 threads to ~46 W at 24).
//!
//! Per core, power is `pipeline + caches + energy-per-instruction ×
//! instruction rate`; the cache term scales with private cache capacity
//! (so the Section 8.1 larger-cache variants cost more) and the
//! frequency-proportional terms scale with clock (so the
//! higher-frequency variants do too). Idle cores either burn a leakage
//! fraction or are fully power-gated (Section 7).
//!
//! # Example
//!
//! ```
//! use tlpsim_power::{PowerModel, CoreKind};
//! use tlpsim_uarch::CoreConfig;
//!
//! let model = PowerModel::with_power_gating();
//! assert_eq!(CoreKind::classify(&CoreConfig::big()), CoreKind::Big);
//! // A fully idle, power-gated chip burns only the uncore power.
//! assert!((model.uncore_w() - 7.0).abs() < 0.5);
//! ```

use tlpsim_uarch::{ChipConfig, CoreClass, CoreConfig, RunResult};

/// The three core types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// 4-wide out-of-order.
    Big,
    /// 2-wide out-of-order.
    Medium,
    /// 2-wide in-order.
    Small,
}

impl CoreKind {
    /// Classify a core configuration by pipeline class and width.
    pub fn classify(cfg: &CoreConfig) -> CoreKind {
        match (cfg.class, cfg.width) {
            (CoreClass::OutOfOrder, 4..) => CoreKind::Big,
            (CoreClass::OutOfOrder, _) => CoreKind::Medium,
            (CoreClass::InOrder, _) => CoreKind::Small,
        }
    }

    /// Calibrated pipeline (non-cache) power when busy, in watts at the
    /// reference 2.66 GHz clock.
    fn pipeline_w(self) -> f64 {
        match self {
            CoreKind::Big => 3.5,
            CoreKind::Medium => 2.1,
            CoreKind::Small => 0.9,
        }
    }

    /// Average energy per committed instruction, nanojoules.
    fn epi_nj(self) -> f64 {
        match self {
            CoreKind::Big => 0.35,
            CoreKind::Medium => 0.20,
            CoreKind::Small => 0.13,
        }
    }
}

/// Static power per KB of private cache, watts (45 nm SRAM leakage +
/// clocking).
const CACHE_W_PER_KB: f64 = 0.012;
/// Fraction of busy power an idle (but not gated) core still burns.
const IDLE_FRACTION: f64 = 0.45;
/// Always-on uncore: shared LLC + DRAM interface (the paper's ~7 W).
const UNCORE_W: f64 = 7.0;
/// LLC access energy, nanojoules.
const LLC_NJ: f64 = 1.2;
/// DRAM access energy, nanojoules per access.
const DRAM_NJ: f64 = 15.0;
/// Reference clock for the calibration, GHz.
const REF_GHZ: f64 = 2.66;

/// Power/energy report for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Average chip power over the run, watts.
    pub avg_power_w: f64,
    /// Average per-core power, watts.
    pub per_core_w: Vec<f64>,
    /// Uncore average power (static + LLC/DRAM activity), watts.
    pub uncore_w: f64,
    /// Total energy of the run, joules.
    pub energy_j: f64,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
}

impl PowerReport {
    /// Energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.wall_s
    }
}

/// The chip-level power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerModel {
    gating: bool,
}

impl PowerModel {
    /// Idle cores burn leakage (no power gating).
    pub fn without_power_gating() -> Self {
        PowerModel { gating: false }
    }

    /// Idle cores are power-gated to zero (Section 7's assumption).
    pub fn with_power_gating() -> Self {
        PowerModel { gating: true }
    }

    /// Whether idle cores are gated off.
    pub fn power_gating(&self) -> bool {
        self.gating
    }

    /// The always-on uncore power, watts.
    pub fn uncore_w(&self) -> f64 {
        UNCORE_W
    }

    /// Busy power of one core running at `ipc`, watts.
    ///
    /// Exposed for calibration tests; `report` integrates this over the
    /// run's actual busy/idle profile.
    pub fn busy_core_w(
        &self,
        cfg: &CoreConfig,
        private_cache_kb: f64,
        freq_ghz: f64,
        ipc: f64,
    ) -> f64 {
        let kind = CoreKind::classify(cfg);
        let fscale = freq_ghz / REF_GHZ;
        (kind.pipeline_w() + CACHE_W_PER_KB * private_cache_kb) * fscale
            + kind.epi_nj() * ipc * freq_ghz
    }

    /// Compute the power/energy report for a finished run on `chip`.
    ///
    /// # Panics
    /// Panics if the run has a different core count than the chip.
    pub fn report(&self, chip: &ChipConfig, run: &RunResult) -> PowerReport {
        assert_eq!(chip.cores.len(), run.cores.len(), "chip/run mismatch");
        let freq = chip.freq_ghz;
        let wall_s = run.cycles as f64 / (freq * 1e9);
        let mut per_core_w = Vec::with_capacity(chip.cores.len());
        let mut core_energy = 0.0;

        for (cfg, cs) in chip.cores.iter().zip(&run.cores) {
            let kind = CoreKind::classify(cfg);
            let caches = &chip.memory.per_core[per_core_w.len()];
            let cache_kb = (caches.l1i.capacity_bytes
                + caches.l1d.capacity_bytes
                + caches.l2.capacity_bytes) as f64
                / 1024.0;
            let fscale = freq / REF_GHZ;
            let base_w = (kind.pipeline_w() + CACHE_W_PER_KB * cache_kb) * fscale;

            let busy_s = cs.busy_cycles as f64 / (freq * 1e9);
            let idle_s = wall_s - busy_s;
            let idle_w = if self.gating {
                0.0
            } else {
                base_w * IDLE_FRACTION
            };
            // nJ * count = nJ; convert to J.
            let dyn_j = kind.epi_nj() * cs.total_committed() as f64 * 1e-9;
            let e = base_w * busy_s + idle_w * idle_s + dyn_j;
            core_energy += e;
            per_core_w.push(if wall_s > 0.0 { e / wall_s } else { 0.0 });
        }

        let llc_accesses = run.mem.llc_hits + run.mem.llc_misses;
        let uncore_j = UNCORE_W * wall_s
            + (LLC_NJ * llc_accesses as f64 + DRAM_NJ * run.mem.dram_accesses as f64) * 1e-9;
        let uncore_w = if wall_s > 0.0 {
            uncore_j / wall_s
        } else {
            UNCORE_W
        };

        let energy_j = core_energy + uncore_j;
        PowerReport {
            avg_power_w: if wall_s > 0.0 { energy_j / wall_s } else { 0.0 },
            per_core_w,
            uncore_w,
            energy_j,
            wall_s,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::with_power_gating()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_kb(kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Big => (32 + 32 + 256) as f64,
            CoreKind::Medium => (16 + 16 + 128) as f64,
            CoreKind::Small => (6 + 6 + 48) as f64,
        }
    }

    #[test]
    fn classification() {
        assert_eq!(CoreKind::classify(&CoreConfig::big()), CoreKind::Big);
        assert_eq!(CoreKind::classify(&CoreConfig::medium()), CoreKind::Medium);
        assert_eq!(CoreKind::classify(&CoreConfig::small()), CoreKind::Small);
    }

    #[test]
    fn single_active_core_anchors() {
        // Paper: one active core + uncore = 17.3 / 13.5 / 9.8 W.
        let m = PowerModel::with_power_gating();
        let b = m.busy_core_w(&CoreConfig::big(), cache_kb(CoreKind::Big), 2.66, 1.6) + UNCORE_W;
        let md =
            m.busy_core_w(&CoreConfig::medium(), cache_kb(CoreKind::Medium), 2.66, 1.2) + UNCORE_W;
        let s =
            m.busy_core_w(&CoreConfig::small(), cache_kb(CoreKind::Small), 2.66, 1.0) + UNCORE_W;
        assert!((b - 17.3).abs() < 2.5, "big single-core {b}");
        assert!((md - 13.5).abs() < 2.5, "medium single-core {md}");
        assert!((s - 9.8).abs() < 1.5, "small single-core {s}");
    }

    #[test]
    fn power_ratios_match_paper() {
        // Busy-core (no uncore) ratios: B ~ 1.8x m, ~4.4x s.
        let m = PowerModel::with_power_gating();
        let b = m.busy_core_w(&CoreConfig::big(), cache_kb(CoreKind::Big), 2.66, 1.6);
        let md = m.busy_core_w(&CoreConfig::medium(), cache_kb(CoreKind::Medium), 2.66, 1.2);
        let s = m.busy_core_w(&CoreConfig::small(), cache_kb(CoreKind::Small), 2.66, 1.0);
        let r_m = b / md;
        let r_s = b / s;
        assert!((r_m - 1.8).abs() < 0.35, "big/medium ratio {r_m}");
        assert!((r_s - 4.4).abs() < 0.9, "big/small ratio {r_s}");
    }

    #[test]
    fn chip_budget_equivalence() {
        // 4 big ~ 8 medium ~ 20 small within ~15%.
        let m = PowerModel::with_power_gating();
        let b4 = 4.0 * m.busy_core_w(&CoreConfig::big(), cache_kb(CoreKind::Big), 2.66, 2.2);
        let m8 = 8.0 * m.busy_core_w(&CoreConfig::medium(), cache_kb(CoreKind::Medium), 2.66, 1.5);
        let s20 = 20.0 * m.busy_core_w(&CoreConfig::small(), cache_kb(CoreKind::Small), 2.66, 1.0);
        let max = b4.max(m8).max(s20);
        let min = b4.min(m8).min(s20);
        assert!(
            max / min < 1.35,
            "budgets diverge: 4B={b4:.1} 8m={m8:.1} 20s={s20:.1}"
        );
    }

    #[test]
    fn frequency_scales_power() {
        let m = PowerModel::with_power_gating();
        let s266 = m.busy_core_w(&CoreConfig::small(), cache_kb(CoreKind::Small), 2.66, 1.0);
        let s333 = m.busy_core_w(&CoreConfig::small(), cache_kb(CoreKind::Small), 3.33, 1.0);
        assert!(s333 > s266 * 1.15 && s333 < s266 * 1.4);
    }

    #[test]
    fn larger_caches_cost_power() {
        let m = PowerModel::with_power_gating();
        let small = m.busy_core_w(&CoreConfig::small(), cache_kb(CoreKind::Small), 2.66, 1.0);
        let small_lc = m.busy_core_w(&CoreConfig::small(), cache_kb(CoreKind::Big), 2.66, 1.0);
        assert!(small_lc > small * 1.5, "lc {small_lc} vs {small}");
    }
}
