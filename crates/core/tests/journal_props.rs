//! Property test of the sweep journal's crash contract (DESIGN.md §12,
//! level 1): for *any* torn-write truncation point, replay recovers
//! exactly the records that were fully written before the tear, repairs
//! the file in place, and keeps accepting appends. Driven by
//! [`SplitMix64`] like the cache-index property suite, so failures
//! reproduce from the printed seed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use tlpsim_core::ctx::{Cell, WorkloadKind};
use tlpsim_core::diskcache::lock_path_for;
use tlpsim_core::journal::{Journal, SweepSpec};
use tlpsim_core::{SimError, SimScale};
use tlpsim_workloads::SplitMix64;

/// A unique scratch journal that cleans up after itself.
struct TempJournal(PathBuf);

impl TempJournal {
    fn new(name: &str) -> TempJournal {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "tlpsim-jprop-{}-{}-{name}.journal",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&p);
        TempJournal(p)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempJournal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(lock_path_for(&self.0));
    }
}

fn spec(rng: &mut SplitMix64) -> SweepSpec {
    SweepSpec {
        design: ["4B", "2B10s", "1B6m"][rng.below(3) as usize].to_string(),
        kind: if rng.below(2) == 0 {
            WorkloadKind::Homogeneous
        } else {
            WorkloadKind::Heterogeneous
        },
        smt: rng.below(2) == 0,
        bus_dgbps: if rng.below(2) == 0 { 80 } else { 160 },
        scale: SimScale::quick(),
    }
}

fn rand_cell(rng: &mut SplitMix64) -> Cell {
    let metric = |rng: &mut SplitMix64| (0..12).map(|_| 0.001 + rng.next_f64() * 40.0).collect();
    Cell {
        stp: metric(rng),
        antt: metric(rng),
        power_w: metric(rng),
    }
}

#[test]
fn replay_recovers_exactly_the_intact_prefix_under_random_tears() {
    let seed = 0x00C0_FFEE_5EED_u64;
    let mut rng = SplitMix64::new(seed);

    for round in 0..12 {
        let tmp = TempJournal::new("tear");
        let s = spec(&mut rng);
        let j = Journal::create(tmp.path(), s.clone()).expect("create");

        // Write a handful of cells and remember where each record ends.
        let counts = [1usize, 2, 4, 8, 16];
        let mut ends = Vec::new();
        for &n in &counts {
            j.record(n, &rand_cell(&mut rng));
            ends.push(std::fs::metadata(tmp.path()).unwrap().len());
        }
        drop(j);
        let full = std::fs::read(tmp.path()).unwrap();
        let header_end = full.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;

        // Tear at random byte offsets anywhere after the header.
        for _ in 0..25 {
            let cut = header_end + rng.next_u64() % (full.len() as u64 - header_end + 1);
            std::fs::write(tmp.path(), &full[..cut as usize]).unwrap();

            let expect: usize = ends.iter().filter(|&&e| e <= cut).count();
            let (j, rs, done, report) = Journal::open(tmp.path())
                .unwrap_or_else(|e| panic!("seed {seed:#x} round {round} cut {cut}: {e}"));
            assert_eq!(rs, s, "spec survives a tear");
            assert_eq!(
                done.len(),
                expect,
                "seed {seed:#x} round {round}: cut at {cut} of {} must keep the \
                 longest intact prefix (record ends: {ends:?})",
                full.len()
            );
            assert_eq!(report.recovered, expect);
            // A cut mid-record must be repaired back to the prefix end.
            let repaired = std::fs::metadata(tmp.path()).unwrap().len();
            assert!(
                repaired <= cut,
                "repair may only shrink the file ({repaired} > {cut})"
            );
            if ends.contains(&cut) {
                assert_eq!(report.truncated_at, None, "clean cut needs no repair");
            }

            // The repaired journal still accepts (and replays) appends.
            j.record(24, &rand_cell(&mut rng));
            drop(j);
            let (_j, _s, done2, report2) = Journal::open(tmp.path()).expect("reopen");
            assert_eq!(done2.len(), expect + 1, "append after repair lost data");
            assert_eq!(report2.truncated_at, None, "repaired file is clean");
        }
    }
}

#[test]
fn tears_inside_the_header_are_loud_errors() {
    let mut rng = SplitMix64::new(0xDEAD_BEA7);
    let tmp = TempJournal::new("header");
    let s = spec(&mut rng);
    let j = Journal::create(tmp.path(), s).expect("create");
    j.record(4, &rand_cell(&mut rng));
    drop(j);
    let full = std::fs::read(tmp.path()).unwrap();
    let header_end = full.iter().position(|&b| b == b'\n').unwrap();

    // A journal whose *header* is torn cannot be trusted at all: the
    // sweep parameters are gone, so resuming must refuse, not guess.
    for _ in 0..10 {
        let cut = rng.next_u64() as usize % (header_end + 1);
        std::fs::write(tmp.path(), &full[..cut]).unwrap();
        match Journal::open(tmp.path()) {
            Err(SimError::InvalidConfig(_)) => {}
            other => panic!("cut at {cut} inside header: expected InvalidConfig, got {other:?}"),
        }
    }
}
