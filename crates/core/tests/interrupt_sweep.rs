//! Integration tests of graceful interrupts (DESIGN.md §12): the
//! executor stops claiming work once the interrupt flag is up, cells
//! in flight surface as typed [`SimError::Interrupted`] (never as
//! partial results), and a checkpointed cell interrupted mid-flight
//! resumes bit-identically in a fresh context.
//!
//! These live in their own test binary because the interrupt flag is
//! process-global: raising it next to the concurrently-running unit
//! tests of `par_map` would interrupt *their* sweeps too. Within this
//! binary, every test serializes on [`GATE`] and lowers the flag again.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tlpsim_core::configs;
use tlpsim_core::ctx::{Ctx, WorkloadKind};
use tlpsim_core::executor::{lock_unpoisoned, par_map, par_map_with};
use tlpsim_core::{interrupt, SimError, SimScale};

/// Serializes the tests of this binary (shared interrupt flag and
/// `TLPSIM_THREADS`).
static GATE: Mutex<()> = Mutex::new(());

/// Run `body` with the flag lowered on entry and exit and the worker
/// count pinned to `threads`.
fn with_gate<R>(threads: &str, body: impl FnOnce() -> R) -> R {
    let _g = lock_unpoisoned(&GATE);
    std::env::set_var("TLPSIM_THREADS", threads);
    interrupt::reset();
    let r = body();
    interrupt::reset();
    std::env::remove_var("TLPSIM_THREADS");
    r
}

#[test]
fn serial_executor_stops_claiming_after_interrupt() {
    with_gate("1", || {
        let items: Vec<usize> = (0..6).collect();
        let ran = AtomicUsize::new(0);
        let out = par_map(&items, |&i| {
            ran.fetch_add(1, Ordering::SeqCst);
            if i == 2 {
                // What a SIGINT during item 2 does.
                interrupt::request();
            }
            Ok(i * 10)
        });
        // The in-flight item finishes (and may checkpoint); everything
        // after it is typed as resumable, not run and not failed.
        assert_eq!(ran.load(Ordering::SeqCst), 3, "items 0..=2 run");
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Ok(10));
        assert_eq!(out[2], Ok(20));
        for r in &out[3..] {
            assert_eq!(*r, Err(SimError::Interrupted));
        }
    });
}

#[test]
fn parallel_workers_drain_after_interrupt() {
    with_gate("3", || {
        let items: Vec<usize> = (0..32).collect();
        let out = par_map_with(
            &items,
            |&i| {
                if i == 1 {
                    interrupt::request();
                }
                Ok(i)
            },
            |_, _| {},
        );
        let done = out.iter().filter(|r| r.is_ok()).count();
        let cut = out
            .iter()
            .filter(|r| matches!(r, Err(SimError::Interrupted)))
            .count();
        assert_eq!(done + cut, items.len(), "no item may vanish or fail");
        assert!(done >= 1, "the interrupting item itself completes");
        assert!(
            cut >= 1,
            "an interrupt this early must leave unclaimed items"
        );
    });
}

#[test]
fn hook_never_fires_for_unclaimed_items() {
    with_gate("1", || {
        let items: Vec<usize> = (0..5).collect();
        let reported = Mutex::new(Vec::new());
        let _ = par_map_with(
            &items,
            |&i| {
                if i == 0 {
                    interrupt::request();
                }
                Ok(i)
            },
            |i, _| lock_unpoisoned(&reported).push(i),
        );
        // Only item 0 ran, so the journal (the real hook) must record
        // exactly that one cell — an unclaimed cell journaled as done
        // would be silently wrong forever.
        assert_eq!(*lock_unpoisoned(&reported), vec![0]);
    });
}

#[test]
fn interrupted_cell_is_a_typed_error_not_a_partial_cell() {
    with_gate("1", || {
        let ctx = Ctx::new(SimScale::quick());
        let d = configs::by_name("4B").unwrap();
        interrupt::request();
        match ctx.mp_cell(&d, 1, WorkloadKind::Heterogeneous, true) {
            Err(SimError::Interrupted) => {}
            other => panic!("expected Interrupted, got {other:?}"),
        }
        assert_eq!(
            ctx.cache_stats().cells,
            0,
            "an interrupted cell must never be cached"
        );
    });
}

#[test]
fn checkpointed_interrupt_resumes_bit_identical_in_a_fresh_context() {
    with_gate("1", || {
        let d = configs::by_name("4B").unwrap();
        let reference = Ctx::new(SimScale::quick())
            .mp_cell(&d, 1, WorkloadKind::Heterogeneous, true)
            .expect("reference cell");

        let dir: PathBuf =
            std::env::temp_dir().join(format!("tlpsim-int-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Interrupt immediately: the first mix checkpoints its (just
        // prewarmed) state and the cell surfaces as resumable.
        let ctx = Ctx::new(SimScale::quick()).with_checkpoints(dir.clone(), 2_000);
        interrupt::request();
        match ctx.mp_cell(&d, 1, WorkloadKind::Heterogeneous, true) {
            Err(SimError::Interrupted) => {}
            other => panic!("expected Interrupted, got {other:?}"),
        }
        let ckpts = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert!(ckpts >= 1, "the in-flight mix must leave a checkpoint");

        // A fresh context (fresh process, in real life) restores the
        // checkpoint and finishes; the result must not know the
        // difference.
        interrupt::reset();
        let resumed = Ctx::new(SimScale::quick())
            .with_checkpoints(dir.clone(), 2_000)
            .mp_cell(&d, 1, WorkloadKind::Heterogeneous, true)
            .expect("resumed cell");
        assert_eq!(
            *reference, *resumed,
            "restore-and-continue diverged from the uninterrupted run"
        );
        let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftover, 0, "completed runs must remove their checkpoints");
        let _ = std::fs::remove_dir_all(&dir);
    });
}
