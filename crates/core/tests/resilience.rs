//! Integration tests of the fault-tolerance layer (DESIGN.md §7):
//! persist→load round-trips of the hardened disk cache, recovery from
//! torn and garbled cache files, concurrent writers, panic-isolated
//! sweeps, and watchdog errors surfacing as typed [`SimError`]s.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use tlpsim_core::ctx::{Cell, CellKey, Ctx, ParsecKey, ParsecOutcome, WorkloadKind};
use tlpsim_core::diskcache::{fnv1a64, lock_path_for, DiskCache, Record};
use tlpsim_core::executor::par_map;
use tlpsim_core::{SimError, SimScale};
use tlpsim_power::CoreKind;
use tlpsim_workloads::SplitMix64;

/// A unique scratch file that cleans up after itself (and its lock).
struct TempCache(PathBuf);

impl TempCache {
    fn new(name: &str) -> TempCache {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "tlpsim-resilience-{}-{}-{name}.txt",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&p);
        TempCache(p)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(lock_path_for(&self.0));
    }
}

/// A plausible but randomized finite metric value (mixed magnitudes so
/// the text round-trip covers subnormal-ish and large exponents).
fn rand_metric(rng: &mut SplitMix64) -> f64 {
    let mag = 10f64.powi(rng.below(13) as i32 - 6);
    (0.001 + rng.next_f64()) * mag
}

fn rand_record(rng: &mut SplitMix64) -> Record {
    match rng.below(3) {
        0 => Record::Iso {
            bench: rng.below(12) as usize,
            kind: match rng.below(3) {
                0 => CoreKind::Big,
                1 => CoreKind::Medium,
                _ => CoreKind::Small,
            },
            ipc: 0.01 + 3.0 * rng.next_f64(),
        },
        1 => Record::Cell {
            key: CellKey {
                design: format!("d{}", rng.below(9)),
                n: 1 + rng.below(24) as usize,
                kind: if rng.chance(0.5) {
                    WorkloadKind::Homogeneous
                } else {
                    WorkloadKind::Heterogeneous
                },
                smt: rng.chance(0.5),
                bus_dgbps: if rng.chance(0.5) { 80 } else { 160 },
            },
            cell: Cell {
                stp: (0..12).map(|_| rand_metric(rng)).collect(),
                antt: (0..12).map(|_| rand_metric(rng)).collect(),
                power_w: (0..12).map(|_| rand_metric(rng)).collect(),
            },
        },
        _ => Record::Parsec {
            key: ParsecKey {
                design: format!("d{}", rng.below(9)),
                app: rng.below(8) as usize,
                n: 1 + rng.below(24) as usize,
                smt: rng.chance(0.5),
                bus_dgbps: 80,
            },
            out: ParsecOutcome {
                roi_cycles: 1 + rng.below(1 << 40),
                total_cycles: 1 + rng.below(1 << 40),
                histogram: (0..=24).map(|_| rng.below(1 << 30)).collect(),
            },
        },
    }
}

/// Property: any sequence of persisted records loads back equal — the
/// cache never corrupts a key or a value (exact f64 text round-trip).
#[test]
fn random_records_round_trip_through_disk() {
    let tmp = TempCache::new("roundtrip");
    let mut rng = SplitMix64::new(0xC0FFEE);
    let records: Vec<Record> = (0..200).map(|_| rand_record(&mut rng)).collect();
    {
        let (cache, replayed, report) =
            DiskCache::open(SimScale::quick(), tmp.path()).expect("open fresh");
        assert!(report.fresh);
        assert!(replayed.is_empty());
        for r in &records {
            cache.append(r);
        }
    }
    let (_cache, replayed, report) =
        DiskCache::open(SimScale::quick(), tmp.path()).expect("reopen");
    assert!(!report.fresh);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.truncated_at, None);
    assert_eq!(report.replayed, records.len());
    assert_eq!(
        replayed, records,
        "records must survive the disk byte-exact"
    );
}

/// A torn final write (no newline — the classic crash-mid-append) is
/// truncated away; every earlier record survives, and the repair is
/// persistent: the next open sees a clean file.
#[test]
fn torn_tail_is_truncated_and_repaired() {
    let tmp = TempCache::new("torn");
    let mut rng = SplitMix64::new(7);
    let records: Vec<Record> = (0..5).map(|_| rand_record(&mut rng)).collect();
    {
        let (cache, _, _) = DiskCache::open(SimScale::quick(), tmp.path()).expect("open");
        for r in &records {
            cache.append(r);
        }
    }
    let intact_len = std::fs::metadata(tmp.path()).expect("meta").len();
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(tmp.path())
            .expect("append garbage");
        f.write_all(b"deadbeef 12 half-a-reco").expect("torn write");
    }
    let (_c, replayed, report) = DiskCache::open(SimScale::quick(), tmp.path()).expect("reopen");
    assert_eq!(report.replayed, 5);
    assert_eq!(report.truncated_at, Some(intact_len));
    assert_eq!(replayed, records);
    assert_eq!(
        std::fs::metadata(tmp.path()).expect("meta").len(),
        intact_len,
        "repair must be persisted"
    );
    let (_c, _, report) = DiskCache::open(SimScale::quick(), tmp.path()).expect("third open");
    assert_eq!(report.truncated_at, None, "second open must be clean");
    assert_eq!(report.replayed, 5);
}

/// Corruption in the middle of the file (bit rot) stops replay at the
/// last intact record — nothing after the flip can be trusted, so the
/// tail is dropped rather than guessed at.
#[test]
fn mid_file_bitflip_truncates_the_tail() {
    let tmp = TempCache::new("bitflip");
    let mut rng = SplitMix64::new(11);
    let records: Vec<Record> = (0..6).map(|_| rand_record(&mut rng)).collect();
    {
        let (cache, _, _) = DiskCache::open(SimScale::quick(), tmp.path()).expect("open");
        for r in &records {
            cache.append(r);
        }
    }
    let mut bytes = std::fs::read(tmp.path()).expect("read");
    // Flip a payload byte somewhere past the header + first records.
    let pos = bytes.len() * 2 / 3;
    bytes[pos] ^= 0x20;
    std::fs::write(tmp.path(), &bytes).expect("write corrupted");

    let (_c, replayed, report) = DiskCache::open(SimScale::quick(), tmp.path()).expect("reopen");
    assert!(report.truncated_at.is_some(), "flip must be detected");
    assert!(report.replayed < records.len());
    assert_eq!(replayed[..], records[..report.replayed], "prefix intact");
}

/// A record whose frame checksum passes but whose payload is garbage
/// (e.g. written by a buggy older build) is rejected without killing
/// the records after it — this is the bug class the seed's
/// `unwrap_or(0)` key parsing turned into silently-wrong cache hits.
#[test]
fn semantically_invalid_record_is_rejected_not_replayed() {
    let tmp = TempCache::new("badpayload");
    let mut rng = SplitMix64::new(13);
    let good = rand_record(&mut rng);
    {
        let (cache, _, _) = DiskCache::open(SimScale::quick(), tmp.path()).expect("open");
        // Hand-frame a checksum-valid line whose payload decodes to
        // nonsense (core kind "Q" does not exist).
        let payload = "ISO 3 Q 1.5";
        let line = format!(
            "{:016x} {} {payload}\n",
            fnv1a64(payload.as_bytes()),
            payload.len()
        );
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(tmp.path())
            .expect("append");
        f.write_all(line.as_bytes()).expect("write bad payload");
        drop(f);
        cache.append(&good);
    }
    let (_c, replayed, report) = DiskCache::open(SimScale::quick(), tmp.path()).expect("reopen");
    assert_eq!(report.rejected, 1);
    assert_eq!(
        report.truncated_at, None,
        "a rejected record is not corruption"
    );
    assert_eq!(
        replayed,
        vec![good.clone()],
        "records after the bad one still replay"
    );
}

/// A cache written at one simulation scale must never be replayed into
/// a context at another scale — the header mismatch starts fresh.
#[test]
fn scale_mismatch_starts_fresh() {
    let tmp = TempCache::new("scale");
    let mut rng = SplitMix64::new(17);
    {
        let (cache, _, _) = DiskCache::open(SimScale::quick(), tmp.path()).expect("open quick");
        cache.append(&rand_record(&mut rng));
    }
    let (_c, replayed, report) =
        DiskCache::open(SimScale::standard(), tmp.path()).expect("open standard");
    assert!(report.fresh, "different scale must not reuse the file");
    assert!(replayed.is_empty());
}

/// Concurrent writers (within and across cache handles) never
/// interleave partial records: after the dust settles, every record is
/// intact and replayable.
#[test]
fn concurrent_appends_never_interleave() {
    let tmp = TempCache::new("concurrent");
    let (a, _, _) = DiskCache::open(SimScale::quick(), tmp.path()).expect("open a");
    let (b, _, _) = DiskCache::open(SimScale::quick(), tmp.path()).expect("open b");
    const THREADS: u64 = 4;
    const PER_THREAD: usize = 25;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = if t % 2 == 0 { &a } else { &b };
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x1000 + t);
                for _ in 0..PER_THREAD {
                    cache.append(&rand_record(&mut rng));
                }
            });
        }
    });
    drop(a);
    drop(b);
    let (_c, _replayed, report) = DiskCache::open(SimScale::quick(), tmp.path()).expect("reopen");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.truncated_at, None);
    assert_eq!(report.replayed, THREADS as usize * PER_THREAD);
}

/// End-to-end: a context pointed at a cache with a valid prefix and a
/// garbage tail recovers the prefix, keeps working, and persists new
/// results that the next context replays.
#[test]
fn ctx_recovers_from_corrupt_cache_and_keeps_persisting() {
    let tmp = TempCache::new("ctx");
    let seeded = Record::Iso {
        bench: 0,
        kind: CoreKind::Big,
        ipc: 1.234,
    };
    {
        let (cache, _, _) = DiskCache::open(SimScale::quick(), tmp.path()).expect("open");
        cache.append(&seeded);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(tmp.path())
            .expect("append");
        f.write_all(b"\x00\x01garbage tail without structure")
            .expect("garbage");
    }
    {
        let ctx = Ctx::with_disk_cache(SimScale::quick(), tmp.path());
        assert_eq!(ctx.cache_stats().iso, 1, "intact prefix must replay");
        let ipc = ctx.iso_ipc(0, CoreKind::Big).expect("replayed profile");
        assert!((ipc - 1.234).abs() < 1e-12, "replayed value must be exact");
        // New work is persisted past the repaired tail.
        ctx.iso_ipc(1, CoreKind::Small)
            .expect("fresh profile simulates");
    }
    let ctx2 = Ctx::with_disk_cache(SimScale::quick(), tmp.path());
    assert_eq!(
        ctx2.cache_stats().iso,
        2,
        "repair + append must both persist"
    );
}

/// A cache path that cannot be created degrades to an in-memory
/// context instead of failing the campaign.
#[test]
fn unwritable_cache_path_degrades_to_memory() {
    let ctx = Ctx::with_disk_cache(SimScale::quick(), "/proc/definitely/not/writable/cache.txt");
    assert_eq!(ctx.cache_stats().iso, 0);
    // Still fully functional.
    ctx.iso_ipc(0, CoreKind::Small)
        .expect("in-memory context works");
}

/// One poisoned cell in a 12-item sweep costs exactly that cell, and
/// the context stays usable afterwards (no poisoned cache locks).
#[test]
fn poisoned_cell_in_sweep_degrades_to_11_of_12() {
    let ctx = Ctx::new(SimScale::quick());
    let items: Vec<usize> = (0..12).collect();
    let out = par_map(&items, |&i| {
        if i == 7 {
            panic!("injected fault in cell {i}");
        }
        ctx.iso_ipc(0, CoreKind::Small)
    });
    let ok = out.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, 11, "exactly the injected fault may fail");
    match &out[7] {
        Err(SimError::WorkerPanicked { item: 7, detail }) => {
            assert!(detail.contains("injected fault"));
        }
        other => panic!("expected WorkerPanicked for item 7, got {other:?}"),
    }
    // The context is not wedged by the panic.
    ctx.iso_ipc(1, CoreKind::Small)
        .expect("ctx survives a worker panic");
}

/// An impossibly tight watchdog fires as a typed, diagnosable error at
/// the context level — the stall never hangs or panics the caller.
#[test]
fn watchdog_stall_surfaces_as_typed_error() {
    let ctx = Ctx::new(SimScale::quick()).with_watchdog(1);
    match ctx.iso_ipc(0, CoreKind::Big) {
        Err(SimError::Stalled { cycle, snapshot }) => {
            assert!(cycle > 0);
            let text = snapshot.to_string();
            assert!(
                text.contains("cycle"),
                "snapshot must be human-readable: {text}"
            );
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}
