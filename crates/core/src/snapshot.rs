//! Atomic, checksummed engine checkpoints (DESIGN.md §12, level 2).
//!
//! One checkpoint file holds the full serialized engine state of one
//! in-flight cell simulation (`MultiCore::save_state`). Files are
//! written crash-safely — payload to a temporary sibling, `sync_data`,
//! then an atomic rename — so a SIGKILL at any instant leaves either
//! the previous intact checkpoint or the new one, never a torn file.
//! Readers validate a magic tag, a length field and an FNV-1a checksum;
//! anything invalid reads as "no checkpoint" and the cell recomputes
//! from scratch (correct, just slower).

use std::io::Write;
use std::path::{Path, PathBuf};

use tlpsim_mem::fnv1a64;

/// Leading magic of a checkpoint file; bump the trailing digit on any
/// layout change.
pub const CKPT_MAGIC: &[u8; 8] = b"TLPSCK1\n";

/// Write `payload` to `path` atomically: temp sibling + `sync_data` +
/// rename. The header is `CKPT_MAGIC`, the payload's FNV-1a checksum
/// and its length (both little-endian u64).
///
/// # Errors
/// Any I/O failure; the destination is untouched in that case.
pub fn write_atomic(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(CKPT_MAGIC)?;
        f.write_all(&fnv1a64(payload).to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(payload)?;
        // Durability point: the rename below must never publish a file
        // whose data blocks are still in flight.
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read a checkpoint back, returning the payload only if the magic,
/// length and checksum all verify. `None` means "no usable checkpoint"
/// — missing file, foreign file, torn or bit-rotted content alike.
pub fn read_validated(path: &Path) -> Option<Vec<u8>> {
    let bytes = std::fs::read(path).ok()?;
    let head = CKPT_MAGIC.len();
    if bytes.len() < head + 16 || &bytes[..head] != CKPT_MAGIC {
        return None;
    }
    let sum = u64::from_le_bytes(bytes[head..head + 8].try_into().ok()?);
    let len = u64::from_le_bytes(bytes[head + 8..head + 16].try_into().ok()?);
    let payload = &bytes[head + 16..];
    if payload.len() as u64 != len || fnv1a64(payload) != sum {
        return None;
    }
    Some(payload.to_vec())
}

/// The temporary sibling a checkpoint is staged in before the rename.
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Parse `TLPSIM_CKPT_CYCLES`: unset or empty means checkpointing off
/// (`None`); otherwise the value must be a positive integer cycle
/// interval. Malformed values are a hard error — a sweep that looks
/// checkpointed but silently is not would be discovered only at the
/// crash it was meant to survive.
///
/// # Errors
/// A diagnostic string naming the bad value.
pub fn interval_from_env() -> Result<Option<u64>, String> {
    match std::env::var("TLPSIM_CKPT_CYCLES") {
        Err(_) => Ok(None),
        Ok(v) if v.trim().is_empty() => Ok(None),
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .map(Some)
            .ok_or_else(|| format!("TLPSIM_CKPT_CYCLES={v:?} is not a positive cycle count")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tlpsim-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trip_and_overwrite() {
        let dir = tmp_dir("rt");
        let p = dir.join("cell.ckpt");
        assert_eq!(read_validated(&p), None, "missing file reads as none");
        write_atomic(&p, b"first state").unwrap();
        assert_eq!(read_validated(&p).unwrap(), b"first state");
        write_atomic(&p, b"second state").unwrap();
        assert_eq!(read_validated(&p).unwrap(), b"second state");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_reads_as_none() {
        let dir = tmp_dir("bad");
        let p = dir.join("cell.ckpt");
        write_atomic(&p, b"some serialized engine state").unwrap();
        let good = std::fs::read(&p).unwrap();

        // Truncation anywhere: header, checksum, payload.
        for cut in [0, 4, CKPT_MAGIC.len() + 7, good.len() - 1] {
            std::fs::write(&p, &good[..cut]).unwrap();
            assert_eq!(read_validated(&p), None, "truncated to {cut} bytes");
        }
        // One flipped payload byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        std::fs::write(&p, &bad).unwrap();
        assert_eq!(read_validated(&p), None, "bit flip accepted");
        // A foreign file.
        std::fs::write(&p, b"not a checkpoint at all").unwrap();
        assert_eq!(read_validated(&p), None, "foreign file accepted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_env_parses_strictly() {
        // Serialized with the executor's env tests by distinct var
        // names, so no lock needed here.
        std::env::remove_var("TLPSIM_CKPT_CYCLES");
        assert_eq!(interval_from_env(), Ok(None));
        std::env::set_var("TLPSIM_CKPT_CYCLES", "");
        assert_eq!(interval_from_env(), Ok(None));
        std::env::set_var("TLPSIM_CKPT_CYCLES", " 250000 ");
        assert_eq!(interval_from_env(), Ok(Some(250_000)));
        for bad in ["0", "-5", "many", "1e6", "100k"] {
            std::env::set_var("TLPSIM_CKPT_CYCLES", bad);
            let e = interval_from_env().expect_err(bad);
            assert!(e.contains(bad), "diagnostic must quote the value: {e}");
        }
        std::env::remove_var("TLPSIM_CKPT_CYCLES");
    }
}
