//! The power-equivalent multi-core design points (Figure 2, Table 1)
//! and the Section 8 variants.

use tlpsim_mem::{BusConfig, CacheConfig, PrivateCacheConfig};
use tlpsim_uarch::{ChipConfig, CoreConfig};

/// One multi-core design point: a named mix of big/medium/small cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Paper name, e.g. `"3B5s"`.
    pub name: String,
    /// Number of big cores.
    pub big: usize,
    /// Number of medium cores.
    pub medium: usize,
    /// Number of small cores.
    pub small: usize,
    /// Clock frequency in GHz (2.66 except the `_hf` variants).
    pub freq_ghz: f64,
    /// Give medium/small cores big-core cache capacities (`_lc`).
    pub large_caches: bool,
}

impl Design {
    fn new(name: &str, big: usize, medium: usize, small: usize) -> Self {
        Design {
            name: name.to_string(),
            big,
            medium,
            small,
            freq_ghz: 2.66,
            large_caches: false,
        }
    }

    /// Total core count.
    pub fn cores(&self) -> usize {
        self.big + self.medium + self.small
    }

    /// Total SMT thread contexts (6 per big, 3 per medium, 2 per small).
    pub fn contexts(&self) -> usize {
        self.big * 6 + self.medium * 3 + self.small * 2
    }

    /// Whether all cores are of one type.
    pub fn is_homogeneous(&self) -> bool {
        [self.big, self.medium, self.small]
            .iter()
            .filter(|&&c| c > 0)
            .count()
            == 1
    }

    /// Build the simulator chip for this design.
    ///
    /// `smt` enables the SMT contexts of Table 1; without it every core
    /// exposes one context (surplus threads time-share). The off-chip
    /// bus defaults to 8 GB/s; pass 16.0 for the Section 8.2 study.
    pub fn chip(&self, smt: bool, bus_gbps: f64) -> ChipConfig {
        let mut cores = Vec::new();
        cores.extend(std::iter::repeat_n(CoreConfig::big(), self.big));
        cores.extend(std::iter::repeat_n(CoreConfig::medium(), self.medium));
        cores.extend(std::iter::repeat_n(CoreConfig::small(), self.small));
        let mut chip = ChipConfig::heterogeneous(&cores, self.freq_ghz);
        if self.large_caches {
            for (cfg, pc) in cores.iter().zip(chip.memory.per_core.iter_mut()) {
                *pc = cfg.matching_caches().with_big_caches();
            }
        }
        chip.memory.bus = BusConfig {
            bandwidth_gbps: bus_gbps,
        };
        // Keep the shared LLC identical across all designs (8 MB, 16-way).
        chip.memory.llc = CacheConfig::new(8 * 1024 * 1024, 16, 30);
        if smt {
            chip
        } else {
            chip.without_smt()
        }
    }
}

/// The nine power-equivalent designs of Figure 2, in paper order.
pub fn nine_designs() -> Vec<Design> {
    vec![
        Design::new("4B", 4, 0, 0),
        Design::new("8m", 0, 8, 0),
        Design::new("20s", 0, 0, 20),
        Design::new("3B2m", 3, 2, 0),
        Design::new("3B5s", 3, 0, 5),
        Design::new("2B4m", 2, 4, 0),
        Design::new("2B10s", 2, 0, 10),
        Design::new("1B6m", 1, 6, 0),
        Design::new("1B15s", 1, 0, 15),
    ]
}

/// Look a design up by its paper name (the nine plus the Section 8.1
/// variants `6m_lc`, `16s_lc`, `6m_hf`, `16s_hf`).
pub fn by_name(name: &str) -> Option<Design> {
    if let Some(d) = nine_designs().into_iter().find(|d| d.name == name) {
        return Some(d);
    }
    alt_designs().into_iter().find(|d| d.name == name)
}

/// Section 8.1 alternative designs: larger caches shift the power
/// equivalence to 1B = 1.5m = 4s (hence 6 medium / 16 small cores), and
/// so does raising the small/medium clock to 3.33 GHz.
pub fn alt_designs() -> Vec<Design> {
    let mut m_lc = Design::new("6m_lc", 0, 6, 0);
    m_lc.large_caches = true;
    let mut s_lc = Design::new("16s_lc", 0, 0, 16);
    s_lc.large_caches = true;
    let mut m_hf = Design::new("6m_hf", 0, 6, 0);
    m_hf.freq_ghz = 3.33;
    let mut s_hf = Design::new("16s_hf", 0, 0, 16);
    s_hf.freq_ghz = 3.33;
    vec![m_lc, s_lc, m_hf, s_hf]
}

/// Paper Table 1, rendered as rows (used by the `table1_configs` bench
/// target).
pub fn table1_rows() -> Vec<String> {
    let fmt = |c: &CoreConfig, pc: &PrivateCacheConfig, name: &str, smt: u8| {
        format!(
            "{name:8} {:12} width={} rob={:3} smt={} L1I={:3}KB L1D={:3}KB L2={:3}KB",
            format!("{:?}", c.class),
            c.width,
            c.rob_size,
            smt,
            pc.l1i.capacity_bytes / 1024,
            pc.l1d.capacity_bytes / 1024,
            pc.l2.capacity_bytes / 1024,
        )
    };
    vec![
        fmt(&CoreConfig::big(), &PrivateCacheConfig::big(), "big", 6),
        fmt(
            &CoreConfig::medium(),
            &PrivateCacheConfig::medium(),
            "medium",
            3,
        ),
        fmt(
            &CoreConfig::small(),
            &PrivateCacheConfig::small(),
            "small",
            2,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_designs_match_figure2() {
        let d = nine_designs();
        assert_eq!(d.len(), 9);
        // Power equivalence: big = 2 medium = 5 small => 4B equivalents.
        for design in &d {
            let budget = design.big * 10 + design.medium * 5 + design.small * 2;
            assert_eq!(budget, 40, "{} violates the power budget", design.name);
        }
        // All designs support up to 24 threads with SMT.
        for design in &d {
            assert!(
                design.contexts() >= 20,
                "{}: only {} contexts",
                design.name,
                design.contexts()
            );
        }
        assert_eq!(d[0].contexts(), 24); // 4B
        assert_eq!(d[1].contexts(), 24); // 8m
        assert_eq!(d[2].contexts(), 40); // 20s (2-way FGMT each)
    }

    #[test]
    fn homogeneity_flags() {
        assert!(by_name("4B").unwrap().is_homogeneous());
        assert!(by_name("8m").unwrap().is_homogeneous());
        assert!(by_name("20s").unwrap().is_homogeneous());
        assert!(!by_name("3B5s").unwrap().is_homogeneous());
    }

    #[test]
    fn chip_construction() {
        let d = by_name("2B10s").unwrap();
        let chip = d.chip(true, 8.0);
        assert_eq!(chip.cores.len(), 12);
        assert_eq!(chip.total_contexts(), 2 * 6 + 10 * 2);
        let nosmt = d.chip(false, 8.0);
        assert_eq!(nosmt.total_contexts(), 12);
    }

    #[test]
    fn variants() {
        let lc = by_name("6m_lc").unwrap();
        let chip = lc.chip(true, 8.0);
        // Medium cores but big-core cache sizes.
        assert_eq!(chip.memory.per_core[0].l2.capacity_bytes, 256 * 1024);
        let hf = by_name("16s_hf").unwrap();
        assert!((hf.chip(true, 8.0).freq_ghz - 3.33).abs() < 1e-9);
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn bus_override() {
        let chip = by_name("4B").unwrap().chip(true, 16.0);
        assert!((chip.memory.bus.bandwidth_gbps - 16.0).abs() < 1e-9);
    }

    #[test]
    fn table1_renders() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].contains("width=4"));
        assert!(rows[2].contains("InOrder"));
    }
}
