//! Multi-program performance metrics (Eyerman & Eeckhout, IEEE Micro
//! 2008) and the paper's aggregation conventions.

/// System throughput (STP), a.k.a. weighted speedup: the number of
/// jobs completed per unit time, normalized to isolated execution on
/// the big core.
///
/// `pairs` yields `(ipc_multi, ipc_isolated_on_big)` per program.
///
/// # Panics
/// Panics if any isolated IPC is not positive.
pub fn stp(pairs: &[(f64, f64)]) -> f64 {
    pairs
        .iter()
        .map(|&(multi, iso)| {
            assert!(iso > 0.0, "isolated IPC must be positive");
            multi / iso
        })
        .sum()
}

/// Average normalized turnaround time (ANTT): the mean per-program
/// slowdown relative to isolated execution on the big core. Lower is
/// better; 1.0 means no slowdown.
///
/// # Panics
/// Panics if `pairs` is empty or any multi-IPC is not positive.
pub fn antt(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "ANTT of an empty workload");
    let sum: f64 = pairs
        .iter()
        .map(|&(multi, iso)| {
            assert!(multi > 0.0, "program never ran");
            iso / multi
        })
        .sum();
    sum / pairs.len() as f64
}

/// Harmonic mean; the paper's average for STP across workloads (STP is
/// a rate metric).
///
/// # Panics
/// Panics if `xs` is empty or contains a non-positive value.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "harmonic mean of nothing");
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "harmonic mean needs positive values");
            1.0 / x
        })
        .sum();
    xs.len() as f64 / s
}

/// Arithmetic mean (used for ANTT, a time metric).
///
/// # Panics
/// Panics if `xs` is empty.
pub fn arithmetic_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of nothing");
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stp_of_isolated_programs_is_thread_count() {
        let pairs = vec![(2.0, 2.0), (1.0, 1.0), (0.5, 0.5)];
        assert!((stp(&pairs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stp_degrades_with_contention() {
        let pairs = vec![(1.0, 2.0), (0.5, 1.0)];
        assert!((stp(&pairs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antt_is_one_without_slowdown() {
        let pairs = vec![(2.0, 2.0), (1.5, 1.5)];
        assert!((antt(&pairs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antt_measures_slowdown() {
        let pairs = vec![(1.0, 2.0), (1.0, 4.0)];
        assert!((antt(&pairs) - 3.0).abs() < 1e-12); // (2 + 4) / 2
    }

    #[test]
    fn harmonic_mean_punishes_outliers() {
        let h = harmonic_mean(&[1.0, 1.0, 0.1]);
        let a = arithmetic_mean(&[1.0, 1.0, 0.1]);
        assert!(h < a);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }
}
