//! Multi-program performance metrics (Eyerman & Eeckhout, IEEE Micro
//! 2008) and the paper's aggregation conventions.
//!
//! Degenerate inputs — empty workloads, non-positive IPCs — are typed
//! [`SimError::InvalidConfig`] values rather than panics, so a single
//! malformed cell degrades one sweep entry instead of tearing down a
//! whole campaign through the executor's panic path (DESIGN.md §7).

use crate::error::SimError;

/// System throughput (STP), a.k.a. weighted speedup: the number of
/// jobs completed per unit time, normalized to isolated execution on
/// the big core.
///
/// `pairs` yields `(ipc_multi, ipc_isolated_on_big)` per program.
///
/// # Errors
/// [`SimError::InvalidConfig`] if any isolated IPC is not positive.
pub fn stp(pairs: &[(f64, f64)]) -> Result<f64, SimError> {
    let mut sum = 0.0;
    for (i, &(multi, iso)) in pairs.iter().enumerate() {
        if iso.is_nan() || iso <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "STP: isolated IPC of program {i} must be positive, got {iso}"
            )));
        }
        sum += multi / iso;
    }
    Ok(sum)
}

/// Average normalized turnaround time (ANTT): the mean per-program
/// slowdown relative to isolated execution on the big core. Lower is
/// better; 1.0 means no slowdown.
///
/// # Errors
/// [`SimError::InvalidConfig`] if `pairs` is empty or any multi-IPC is
/// not positive.
pub fn antt(pairs: &[(f64, f64)]) -> Result<f64, SimError> {
    if pairs.is_empty() {
        return Err(SimError::InvalidConfig("ANTT of an empty workload".into()));
    }
    let mut sum = 0.0;
    for (i, &(multi, iso)) in pairs.iter().enumerate() {
        if multi.is_nan() || multi <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "ANTT: program {i} never ran (multi-IPC {multi})"
            )));
        }
        sum += iso / multi;
    }
    Ok(sum / pairs.len() as f64)
}

/// Harmonic mean; the paper's average for STP across workloads (STP is
/// a rate metric).
///
/// # Errors
/// [`SimError::InvalidConfig`] if `xs` is empty or contains a
/// non-positive value.
pub fn harmonic_mean(xs: &[f64]) -> Result<f64, SimError> {
    if xs.is_empty() {
        return Err(SimError::InvalidConfig("harmonic mean of nothing".into()));
    }
    let mut s = 0.0;
    for &x in xs {
        if x.is_nan() || x <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "harmonic mean needs positive values, got {x}"
            )));
        }
        s += 1.0 / x;
    }
    Ok(xs.len() as f64 / s)
}

/// Arithmetic mean (used for ANTT, a time metric).
///
/// # Errors
/// [`SimError::InvalidConfig`] if `xs` is empty.
pub fn arithmetic_mean(xs: &[f64]) -> Result<f64, SimError> {
    if xs.is_empty() {
        return Err(SimError::InvalidConfig("mean of nothing".into()));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stp_of_isolated_programs_is_thread_count() {
        let pairs = vec![(2.0, 2.0), (1.0, 1.0), (0.5, 0.5)];
        assert!((stp(&pairs).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stp_degrades_with_contention() {
        let pairs = vec![(1.0, 2.0), (0.5, 1.0)];
        assert!((stp(&pairs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stp_rejects_nonpositive_isolated_ipc() {
        let e = stp(&[(1.0, 0.0)]).unwrap_err();
        assert!(matches!(e, SimError::InvalidConfig(_)));
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn antt_is_one_without_slowdown() {
        let pairs = vec![(2.0, 2.0), (1.5, 1.5)];
        assert!((antt(&pairs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antt_measures_slowdown() {
        let pairs = vec![(1.0, 2.0), (1.0, 4.0)];
        assert!((antt(&pairs).unwrap() - 3.0).abs() < 1e-12); // (2 + 4) / 2
    }

    #[test]
    fn antt_rejects_empty_and_stuck_programs() {
        assert!(matches!(antt(&[]), Err(SimError::InvalidConfig(_))));
        let e = antt(&[(0.0, 1.0)]).unwrap_err();
        assert!(e.to_string().contains("never ran"));
    }

    #[test]
    fn harmonic_mean_punishes_outliers() {
        let h = harmonic_mean(&[1.0, 1.0, 0.1]).unwrap();
        let a = arithmetic_mean(&[1.0, 1.0, 0.1]).unwrap();
        assert!(h < a);
        assert!((harmonic_mean(&[2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_rejects_zero_and_nan() {
        assert!(matches!(
            harmonic_mean(&[1.0, 0.0]),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            harmonic_mean(&[f64::NAN]),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            harmonic_mean(&[]),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn arithmetic_mean_rejects_empty() {
        assert!(matches!(
            arithmetic_mean(&[]),
            Err(SimError::InvalidConfig(_))
        ));
        assert!((arithmetic_mean(&[1.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }
}
