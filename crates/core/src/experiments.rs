//! Experiment drivers: one function per table/figure of the paper.
//!
//! Every driver returns the figure's series as plain data with a
//! `render()` helper, so the bench harness (and the examples) can print
//! the same rows the paper plots. The underlying simulations are
//! memoized in the [`Ctx`], and each driver prefetches its cells on a
//! host thread pool before aggregating.
//!
//! Fault tolerance: a cell that fails (stall, bad config, panicking
//! worker) is logged to stderr and *skipped* — a figure degrades to
//! the cells that simulated instead of aborting the process
//! (DESIGN.md §7). Missing values render as `NaN`.

use std::sync::Arc;

use tlpsim_workloads::{parsec, spec, ThreadCountDistribution};

use crate::configs::{alt_designs, by_name, nine_designs, Design};
use crate::ctx::{par_map, Cell, Ctx, WorkloadKind};
use crate::dynamic::dynamic_stp;
use crate::error::SimError;
use crate::SWEEP_COUNTS;

/// A labeled curve of `(thread count, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display label (usually a design name).
    pub label: String,
    /// Sampled points, ascending in thread count.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Piecewise-linear interpolation at thread count `n` (clamped to
    /// the sampled range). An empty series interpolates to `NaN`.
    pub fn interp(&self, n: usize) -> f64 {
        let pts = &self.points;
        let (Some(first), Some(last)) = (pts.first(), pts.last()) else {
            return f64::NAN;
        };
        if n <= first.0 {
            return first.1;
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if n <= x1 {
                let f = (n - x0) as f64 / (x1 - x0) as f64;
                return y0 + f * (y1 - y0);
            }
        }
        last.1
    }

    /// Time-weighted average under a thread-count distribution
    /// (rate-metric aggregation; see Section 4.2).
    pub fn dist_avg(&self, dist: &ThreadCountDistribution) -> f64 {
        dist.expect(|n| self.interp(n))
    }
}

/// A whole figure: several series over the same x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title (paper reference).
    pub title: String,
    /// Curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render an aligned text table: one row per thread count, one
    /// column per series. Series may have holes (skipped cells); a
    /// missing sample prints as `-`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:>7}", "threads"));
        for s in &self.series {
            out.push_str(&format!(" {:>8}", s.label));
        }
        out.push('\n');
        let mut xs: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(n, _)| n))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        for n in xs {
            out.push_str(&format!("{n:>7}"));
            for s in &self.series {
                match s.points.iter().find(|&&(x, _)| x == n) {
                    Some(&(_, v)) => out.push_str(&format!(" {v:>8.3}")),
                    None => out.push_str(&format!(" {:>8}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A per-design scalar summary (bar charts like Figs. 6-10, 15).
#[derive(Debug, Clone, PartialEq)]
pub struct Bars {
    /// Title (paper reference).
    pub title: String,
    /// `(label, value)` bars in paper order.
    pub bars: Vec<(String, f64)>,
}

impl Bars {
    /// Render as aligned label/value rows.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for (l, v) in &self.bars {
            out.push_str(&format!("{l:>8}  {v:.3}\n"));
        }
        out
    }

    /// The best (largest finite value) bar; `("", NaN)` when no bar has
    /// a finite value.
    pub fn best(&self) -> (&str, f64) {
        self.bars
            .iter()
            .filter(|(_, v)| v.is_finite())
            .fold(("", f64::NAN), |acc, (l, v)| {
                if !acc.1.is_finite() || *v > acc.1 {
                    (l.as_str(), *v)
                } else {
                    acc
                }
            })
    }

    /// Value for a given label.
    pub fn value(&self, label: &str) -> Option<f64> {
        self.bars.iter().find(|(l, _)| l == label).map(|&(_, v)| v)
    }
}

// ---------- shared sweep helpers ----------

/// Look up a design that the static table is known to contain; falls
/// back to the first of the nine designs so the lookup can never panic
/// if the table is ever reorganized.
fn known_design(name: &str) -> Design {
    match by_name(name) {
        Some(d) => d,
        None => {
            eprintln!("tlpsim: design table no longer contains {name:?}; using fallback");
            nine_designs().swap_remove(0)
        }
    }
}

/// Fetch one cell, logging and skipping failures.
fn try_cell(
    ctx: &Ctx,
    d: &Design,
    n: usize,
    kind: WorkloadKind,
    smt: bool,
    bus: f64,
) -> Option<Arc<Cell>> {
    match ctx.mp_cell_bus(d, n, kind, smt, bus) {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!(
                "tlpsim: cell {} n={n} ({kind:?}, smt={smt}, {bus} GB/s) failed: {e}; skipping",
                d.name
            );
            None
        }
    }
}

/// Throughput curve of one design over the sweep counts (failed cells
/// leave holes).
fn stp_curve(ctx: &Ctx, d: &Design, kind: WorkloadKind, smt: bool, bus: f64) -> Series {
    let points = SWEEP_COUNTS
        .iter()
        .filter_map(|&n| try_cell(ctx, d, n, kind, smt, bus).map(|c| (n, c.mean_stp())))
        .collect();
    Series {
        label: d.name.clone(),
        points,
    }
}

/// Per-benchmark/metric point of one cell, or `None` if the cell failed.
fn cell_value(
    ctx: &Ctx,
    d: &Design,
    n: usize,
    kind: WorkloadKind,
    smt: bool,
    f: impl Fn(&Cell) -> f64,
) -> Option<f64> {
    try_cell(ctx, d, n, kind, smt, 8.0).map(|c| f(&c))
}

/// Prefetch all (design, count) cells in parallel, reporting (but
/// tolerating) failures. Returns the number of failed cells.
fn prefetch(
    ctx: &Ctx,
    designs: &[Design],
    kind: WorkloadKind,
    smt_modes: &[bool],
    bus: f64,
) -> usize {
    let mut jobs = Vec::new();
    for d in designs {
        for &smt in smt_modes {
            for &n in &SWEEP_COUNTS {
                jobs.push((d.clone(), n, smt));
            }
        }
    }
    let results = par_map(&jobs, |(d, n, smt)| {
        ctx.mp_cell_bus(d, *n, kind, *smt, bus).map(|_| ())
    });
    let failed = results.iter().filter(|r| r.is_err()).count();
    if failed > 0 {
        eprintln!(
            "tlpsim: prefetch: {failed}/{} cells failed ({kind:?}); figures will have holes",
            jobs.len()
        );
    }
    failed
}

// ---------- Figure 1 ----------

/// Figure 1's bucket labels.
pub const FIG1_BUCKETS: [&str; 9] = ["1", "2", "3", "4", "5", "6-10", "11-15", "16-19", "20"];

/// Distribution of the number of active threads for the PARSEC-like
/// benchmarks on a twenty-core processor (Figure 1). Returns, per app,
/// the fraction of ROI time in each bucket, plus an `"average"` row.
/// Apps whose run fails are logged and omitted.
pub fn fig1_active_threads(ctx: &Ctx) -> Vec<(String, [f64; 9])> {
    let d = known_design("20s");
    let apps = parsec::all();
    let idx: Vec<usize> = (0..apps.len()).collect();
    let results = par_map(&idx, |&a| {
        let r = ctx.parsec_run(&d, a, 20, false, 8.0)?;
        let total: u64 = r.histogram.iter().sum();
        let mut buckets = [0.0f64; 9];
        for (k, &cycles) in r.histogram.iter().enumerate() {
            let b = match k {
                0 | 1 => 0, // idle cycles counted as 1-thread time
                2 => 1,
                3 => 2,
                4 => 3,
                5 => 4,
                6..=10 => 5,
                11..=15 => 6,
                16..=19 => 7,
                _ => 8,
            };
            buckets[b] += cycles as f64 / total.max(1) as f64;
        }
        Ok((apps[a].name.to_string(), buckets))
    });
    let mut rows: Vec<(String, [f64; 9])> = Vec::new();
    for (a, r) in results.into_iter().enumerate() {
        match r {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("tlpsim: fig1: app {} failed: {e}; omitted", apps[a].name),
        }
    }
    if rows.is_empty() {
        return rows;
    }
    let mut avg = [0.0f64; 9];
    for (_, b) in &rows {
        for i in 0..9 {
            avg[i] += b[i] / rows.len() as f64;
        }
    }
    rows.push(("average".to_string(), avg));
    rows
}

// ---------- Figures 3, 4, 5 ----------

/// Figure 3: STP as a function of thread count for the nine designs
/// (all SMT-enabled), homogeneous or heterogeneous workloads.
pub fn fig3_throughput(ctx: &Ctx, kind: WorkloadKind) -> Figure {
    let designs = nine_designs();
    prefetch(ctx, &designs, kind, &[true], 8.0);
    Figure {
        title: format!("Fig.3 STP vs thread count ({kind:?} workloads, SMT)"),
        series: designs
            .iter()
            .map(|d| stp_curve(ctx, d, kind, true, 8.0))
            .collect(),
    }
}

/// Figure 4: the same curves for a single benchmark (homogeneous
/// multi-program workload). `bench` indexes [`spec::all`].
pub fn fig4_per_benchmark(ctx: &Ctx, bench: usize) -> Figure {
    let designs = nine_designs();
    prefetch(ctx, &designs, WorkloadKind::Homogeneous, &[true], 8.0);
    let name = spec::names().get(bench).copied().unwrap_or("?");
    Figure {
        title: format!("Fig.4 STP vs thread count ({name})"),
        series: designs
            .iter()
            .map(|d| Series {
                label: d.name.clone(),
                points: SWEEP_COUNTS
                    .iter()
                    .filter_map(|&n| {
                        cell_value(ctx, d, n, WorkloadKind::Homogeneous, true, |c| c.stp[bench])
                            .map(|v| (n, v))
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Figure 5: ANTT as a function of thread count (homogeneous
/// workloads, SMT everywhere). Lower is better.
pub fn fig5_antt(ctx: &Ctx) -> Figure {
    let designs = nine_designs();
    prefetch(ctx, &designs, WorkloadKind::Homogeneous, &[true], 8.0);
    Figure {
        title: "Fig.5 ANTT vs thread count (homogeneous workloads)".into(),
        series: designs
            .iter()
            .map(|d| Series {
                label: d.name.clone(),
                points: SWEEP_COUNTS
                    .iter()
                    .filter_map(|&n| {
                        cell_value(ctx, d, n, WorkloadKind::Homogeneous, true, Cell::mean_antt)
                            .map(|v| (n, v))
                    })
                    .collect(),
            })
            .collect(),
    }
}

// ---------- Figures 6, 7, 8 (uniform distribution) ----------

/// SMT policy of a design-space evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtPolicy {
    /// SMT disabled everywhere (Figure 6).
    None,
    /// SMT only in the homogeneous designs (Figure 7).
    HomogeneousOnly,
    /// SMT everywhere (Figure 8).
    All,
}

impl SmtPolicy {
    fn enabled_for(self, d: &Design) -> bool {
        match self {
            SmtPolicy::None => false,
            SmtPolicy::HomogeneousOnly => d.is_homogeneous(),
            SmtPolicy::All => true,
        }
    }
}

/// Figures 6-8: average performance under a uniform thread-count
/// distribution (1..=24), for the given SMT policy.
pub fn fig6to8_uniform(ctx: &Ctx, kind: WorkloadKind, policy: SmtPolicy) -> Bars {
    let designs = nine_designs();
    let dist = ThreadCountDistribution::uniform(24);
    prefetch(ctx, &designs, kind, &[true, false], 8.0);
    let bars = designs
        .iter()
        .map(|d| {
            let smt = policy.enabled_for(d);
            let curve = stp_curve(ctx, d, kind, smt, 8.0);
            (d.name.clone(), curve.dist_avg(&dist))
        })
        .collect();
    Bars {
        title: format!("Figs.6-8 uniform-distribution STP ({kind:?}, {policy:?})"),
        bars,
    }
}

// ---------- Figure 9 ----------

/// Figure 9: per-benchmark uniform-distribution performance, SMT in
/// all designs (homogeneous workloads).
pub fn fig9_per_benchmark(ctx: &Ctx) -> Vec<(String, Bars)> {
    let designs = nine_designs();
    let dist = ThreadCountDistribution::uniform(24);
    prefetch(ctx, &designs, WorkloadKind::Homogeneous, &[true], 8.0);
    spec::names()
        .iter()
        .enumerate()
        .map(|(b, name)| {
            let bars = designs
                .iter()
                .map(|d| {
                    let s = Series {
                        label: d.name.clone(),
                        points: SWEEP_COUNTS
                            .iter()
                            .filter_map(|&n| {
                                cell_value(ctx, d, n, WorkloadKind::Homogeneous, true, |c| c.stp[b])
                                    .map(|v| (n, v))
                            })
                            .collect(),
                    };
                    (d.name.clone(), s.dist_avg(&dist))
                })
                .collect();
            (
                name.to_string(),
                Bars {
                    title: format!("Fig.9 {name}"),
                    bars,
                },
            )
        })
        .collect()
}

// ---------- Figure 10 ----------

/// Figure 10: average performance under the datacenter and mirrored
/// datacenter distributions (heterogeneous workloads), without and
/// with SMT. Returns `(distribution, smt, bars)` rows.
pub fn fig10_datacenter(ctx: &Ctx) -> Vec<(String, bool, Bars)> {
    let designs = nine_designs();
    prefetch(
        ctx,
        &designs,
        WorkloadKind::Heterogeneous,
        &[true, false],
        8.0,
    );
    let dists = [
        ("datacenter", ThreadCountDistribution::datacenter(24)),
        (
            "mirrored datacenter",
            ThreadCountDistribution::mirrored_datacenter(24),
        ),
    ];
    let mut out = Vec::new();
    for (dname, dist) in &dists {
        for smt in [false, true] {
            let bars = designs
                .iter()
                .map(|d| {
                    let curve = stp_curve(ctx, d, WorkloadKind::Heterogeneous, smt, 8.0);
                    (d.name.clone(), curve.dist_avg(dist))
                })
                .collect();
            out.push((
                dname.to_string(),
                smt,
                Bars {
                    title: format!("Fig.10 {dname} (SMT={smt})"),
                    bars,
                },
            ));
        }
    }
    out
}

// ---------- Figures 11, 12, 16 (PARSEC) ----------

/// Thread counts evaluated per design for multi-threaded workloads.
fn parsec_counts(d: &Design, smt: bool) -> Vec<usize> {
    if smt {
        let mut v: Vec<usize> = [4, 8, 16, 24]
            .into_iter()
            .filter(|&n| n <= d.contexts().min(24))
            .collect();
        if !v.contains(&d.cores()) && d.cores() <= 24 {
            v.push(d.cores());
        }
        v
    } else {
        // Paper: without SMT, thread count equals core count.
        vec![d.cores().min(24)]
    }
}

/// Best (max) speedup of `design` for one app, relative to
/// `ref_cycles`, over the allowed thread counts. `None` if every
/// allowed count failed to simulate.
fn parsec_speedup(
    ctx: &Ctx,
    d: &Design,
    app: usize,
    smt: bool,
    bus: f64,
    ref_cycles: u64,
    roi_only: bool,
) -> Option<f64> {
    let mut best = None;
    for n in parsec_counts(d, smt) {
        match ctx.parsec_run(d, app, n, smt, bus) {
            Ok(r) => {
                let c = if roi_only {
                    r.roi_cycles
                } else {
                    r.total_cycles
                };
                let s = ref_cycles as f64 / c.max(1) as f64;
                best = Some(best.map_or(s, |b: f64| b.max(s)));
            }
            Err(e) => eprintln!(
                "tlpsim: parsec app {app} x{n} on {} (smt={smt}) failed: {e}; skipping",
                d.name
            ),
        }
    }
    best
}

/// The reference execution: the app with 4 threads on 4B (ROI and
/// whole-program cycles).
fn parsec_reference(ctx: &Ctx, app: usize, bus: f64) -> Result<(u64, u64), SimError> {
    let d = known_design("4B");
    let r = ctx.parsec_run(&d, app, 4, true, bus)?;
    Ok((r.roi_cycles, r.total_cycles))
}

/// Figures 11/12: normalized speedups for the multi-threaded
/// benchmarks on {4B, 8m, 20s, 1B6m, 1B15s}, without and with SMT.
/// Returns per-app rows plus an `"average"` row; each row holds
/// `(design, smt) -> speedup` in a fixed order given by
/// [`parsec_design_columns`]. Cells that fail to simulate are `NaN`;
/// an app whose reference run fails is omitted entirely.
pub fn fig11_12_parsec(ctx: &Ctx, roi_only: bool, bus: f64) -> Vec<(String, Vec<f64>)> {
    let designs = parsec_design_columns();
    let apps = parsec::all();
    // Prefetch every (app, design, smt, count) run in parallel.
    let mut jobs = Vec::new();
    for a in 0..apps.len() {
        jobs.push((a, None, true, 4)); // reference
        for d in &designs {
            for smt in [false, true] {
                for n in parsec_counts(d, smt) {
                    jobs.push((a, Some(d.clone()), smt, n));
                }
            }
        }
    }
    let prefetched = par_map(&jobs, |(a, d, smt, n)| match d {
        None => parsec_reference(ctx, *a, bus).map(|_| ()),
        Some(d) => ctx.parsec_run(d, *a, *n, *smt, bus).map(|_| ()),
    });
    let failed = prefetched.iter().filter(|r| r.is_err()).count();
    if failed > 0 {
        eprintln!(
            "tlpsim: fig11/12 prefetch: {failed}/{} runs failed; rows will have NaN holes",
            jobs.len()
        );
    }

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (a, app) in apps.iter().enumerate() {
        let refc = match parsec_reference(ctx, a, bus) {
            Ok((roi, total)) => {
                if roi_only {
                    roi
                } else {
                    total
                }
            }
            Err(e) => {
                eprintln!(
                    "tlpsim: fig11/12: reference run for {} failed: {e}; row omitted",
                    app.name
                );
                continue;
            }
        };
        let mut vals = Vec::new();
        for smt in [false, true] {
            for d in &designs {
                vals.push(parsec_speedup(ctx, d, a, smt, bus, refc, roi_only).unwrap_or(f64::NAN));
            }
        }
        rows.push((app.name.to_string(), vals));
    }
    if rows.is_empty() {
        return rows;
    }
    let cols = rows[0].1.len();
    // Average over the rows whose value is finite in each column.
    let avg: Vec<f64> = (0..cols)
        .map(|c| {
            let vals: Vec<f64> = rows
                .iter()
                .map(|(_, v)| v[c])
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect();
    rows.push(("average".to_string(), avg));
    rows
}

/// The design columns of Figures 11/12 (single-big-core heterogeneous
/// designs only, per Section 5).
pub fn parsec_design_columns() -> Vec<Design> {
    ["4B", "8m", "20s", "1B6m", "1B15s"]
        .iter()
        .map(|n| known_design(n))
        .collect()
}

/// Figure 16: multi-threaded ROI speedups for the alternative designs
/// of Section 8.1 (larger caches / higher frequency), SMT enabled.
pub fn fig16_alt_designs(ctx: &Ctx) -> Bars {
    let mut designs = vec![known_design("4B"), known_design("8m"), known_design("20s")];
    designs.extend(alt_designs());
    let apps = parsec::all();
    let mut jobs = Vec::new();
    for a in 0..apps.len() {
        jobs.push((a, None, 4));
        for d in &designs {
            for n in parsec_counts(d, true) {
                jobs.push((a, Some(d.clone()), n));
            }
        }
    }
    par_map(&jobs, |(a, d, n)| match d {
        None => parsec_reference(ctx, *a, 8.0).map(|_| ()),
        Some(d) => ctx.parsec_run(d, *a, *n, true, 8.0).map(|_| ()),
    });
    let bars = designs
        .iter()
        .map(|d| {
            let mut speedups = Vec::new();
            for a in 0..apps.len() {
                let Ok((ref_roi, _)) = parsec_reference(ctx, a, 8.0) else {
                    continue;
                };
                if let Some(s) = parsec_speedup(ctx, d, a, true, 8.0, ref_roi, true) {
                    speedups.push(s);
                }
            }
            let avg = if speedups.is_empty() {
                f64::NAN
            } else {
                speedups.iter().sum::<f64>() / speedups.len() as f64
            };
            (d.name.clone(), avg)
        })
        .collect();
    Bars {
        title: "Fig.16 alternative designs, multi-threaded ROI speedup (SMT)".into(),
        bars,
    }
}

// ---------- Figure 13 ----------

/// Figure 13: the 4B configuration with SMT versus the ideal dynamic
/// multi-core with and without SMT.
pub fn fig13_dynamic(ctx: &Ctx, kind: WorkloadKind) -> Figure {
    let designs = nine_designs();
    prefetch(ctx, &designs, kind, &[true, false], 8.0);
    let d4b = known_design("4B");
    let mk = |label: &str, f: &dyn Fn(usize) -> Option<f64>| Series {
        label: label.to_string(),
        points: SWEEP_COUNTS
            .iter()
            .filter_map(|&n| f(n).map(|v| (n, v)))
            .collect(),
    };
    Figure {
        title: format!("Fig.13 4B+SMT vs ideal dynamic multi-core ({kind:?})"),
        series: vec![
            mk("4B", &|n| {
                cell_value(ctx, &d4b, n, kind, true, Cell::mean_stp)
            }),
            mk("dyn", &|n| match dynamic_stp(ctx, n, kind, false) {
                Ok(v) => Some(v),
                Err(e) => {
                    eprintln!("tlpsim: fig13: dyn at n={n} failed: {e}; skipping");
                    None
                }
            }),
            mk("dynSMT", &|n| match dynamic_stp(ctx, n, kind, true) {
                Ok(v) => Some(v),
                Err(e) => {
                    eprintln!("tlpsim: fig13: dynSMT at n={n} failed: {e}; skipping");
                    None
                }
            }),
        ],
    }
}

// ---------- Figures 14, 15 ----------

/// Figure 14: average chip power (power gating on) as a function of
/// thread count, homogeneous workloads, SMT everywhere.
pub fn fig14_power(ctx: &Ctx) -> Figure {
    let designs = nine_designs();
    prefetch(ctx, &designs, WorkloadKind::Homogeneous, &[true], 8.0);
    Figure {
        title: "Fig.14 power (W) vs thread count (power gating)".into(),
        series: designs
            .iter()
            .map(|d| Series {
                label: d.name.clone(),
                points: SWEEP_COUNTS
                    .iter()
                    .filter_map(|&n| {
                        cell_value(ctx, d, n, WorkloadKind::Homogeneous, true, Cell::mean_power)
                            .map(|v| (n, v))
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// One row of Figure 15: performance, power and normalized energy of a
/// design under the uniform distribution (heterogeneous workloads).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPerfPoint {
    /// Design name.
    pub design: String,
    /// Distribution-averaged STP.
    pub perf: f64,
    /// Distribution-averaged chip power, watts.
    pub power_w: f64,
    /// Energy per unit of work, normalized to 4B (= power/perf ratio).
    pub energy_norm: f64,
    /// Energy-delay product, normalized to 4B.
    pub edp_norm: f64,
}

/// Figure 15: throughput versus power and energy for all designs
/// (heterogeneous workloads, uniform distribution, SMT, power gating).
/// Returns an empty vector if the 4B normalization baseline failed.
pub fn fig15_power_perf(ctx: &Ctx) -> Vec<PowerPerfPoint> {
    let designs = nine_designs();
    prefetch(ctx, &designs, WorkloadKind::Heterogeneous, &[true], 8.0);
    let dist = ThreadCountDistribution::uniform(24);
    let raw: Vec<(String, f64, f64)> = designs
        .iter()
        .map(|d| {
            let stp = stp_curve(ctx, d, WorkloadKind::Heterogeneous, true, 8.0);
            let power = Series {
                label: d.name.clone(),
                points: SWEEP_COUNTS
                    .iter()
                    .filter_map(|&n| {
                        cell_value(
                            ctx,
                            d,
                            n,
                            WorkloadKind::Heterogeneous,
                            true,
                            Cell::mean_power,
                        )
                        .map(|v| (n, v))
                    })
                    .collect(),
            };
            (d.name.clone(), stp.dist_avg(&dist), power.dist_avg(&dist))
        })
        .collect();
    let Some((p4b, w4b)) = raw
        .iter()
        .find(|(n, _, _)| n == "4B")
        .map(|&(_, p, w)| (p, w))
        .filter(|(p, w)| p.is_finite() && w.is_finite() && *p > 0.0)
    else {
        eprintln!("tlpsim: fig15: 4B baseline failed to simulate; figure omitted");
        return Vec::new();
    };
    let e4b = w4b / p4b;
    let edp4b = w4b / (p4b * p4b);
    raw.into_iter()
        .map(|(design, perf, power_w)| PowerPerfPoint {
            design,
            perf,
            power_w,
            energy_norm: (power_w / perf) / e4b,
            edp_norm: (power_w / (perf * perf)) / edp4b,
        })
        .collect()
}

// ---------- Figure 17 ----------

/// Figure 17: the Figure 8 aggregates and the Figure 11 averages,
/// re-evaluated with a 16 GB/s memory bus.
pub fn fig17_high_bandwidth(ctx: &Ctx) -> (Bars, Bars, Vec<(String, Vec<f64>)>) {
    let designs = nine_designs();
    let dist = ThreadCountDistribution::uniform(24);
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        let mut jobs = Vec::new();
        for d in &designs {
            for &n in &SWEEP_COUNTS {
                jobs.push((d.clone(), n));
            }
        }
        let results = par_map(&jobs, |(d, n)| {
            ctx.mp_cell_bus(d, *n, kind, true, 16.0).map(|_| ())
        });
        let failed = results.iter().filter(|r| r.is_err()).count();
        if failed > 0 {
            eprintln!(
                "tlpsim: fig17 prefetch: {failed}/{} cells failed",
                jobs.len()
            );
        }
    }
    let mk = |kind: WorkloadKind| Bars {
        title: format!("Fig.17 uniform STP at 16 GB/s ({kind:?}, SMT)"),
        bars: designs
            .iter()
            .map(|d| {
                let curve = stp_curve(ctx, d, kind, true, 16.0);
                (d.name.clone(), curve.dist_avg(&dist))
            })
            .collect(),
    };
    let parsec16 = fig11_12_parsec(ctx, true, 16.0);
    (
        mk(WorkloadKind::Homogeneous),
        mk(WorkloadKind::Heterogeneous),
        parsec16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_interpolation() {
        let s = Series {
            label: "t".into(),
            points: vec![(1, 1.0), (3, 3.0), (5, 4.0)],
        };
        assert!((s.interp(1) - 1.0).abs() < 1e-12);
        assert!((s.interp(2) - 2.0).abs() < 1e-12);
        assert!((s.interp(4) - 3.5).abs() < 1e-12);
        assert!((s.interp(9) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_interpolates_to_nan() {
        let s = Series {
            label: "t".into(),
            points: vec![],
        };
        assert!(s.interp(3).is_nan());
    }

    #[test]
    fn dist_avg_uniform_matches_hand_computation() {
        let s = Series {
            label: "t".into(),
            points: vec![(1, 2.0), (2, 2.0), (3, 2.0), (4, 2.0)],
        };
        let d = ThreadCountDistribution::uniform(4);
        assert!((s.dist_avg(&d) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bars_helpers() {
        let b = Bars {
            title: "t".into(),
            bars: vec![("a".into(), 1.0), ("b".into(), 3.0)],
        };
        assert_eq!(b.best(), ("b", 3.0));
        assert_eq!(b.value("a"), Some(1.0));
        assert!(b.render().contains("3.000"));
    }

    #[test]
    fn bars_best_ignores_nan_and_survives_empty() {
        let b = Bars {
            title: "t".into(),
            bars: vec![("a".into(), f64::NAN), ("b".into(), 2.0)],
        };
        assert_eq!(b.best(), ("b", 2.0));
        let empty = Bars {
            title: "t".into(),
            bars: vec![],
        };
        let (l, v) = empty.best();
        assert_eq!(l, "");
        assert!(v.is_nan());
    }

    #[test]
    fn figure_render_tolerates_holes() {
        let f = Figure {
            title: "t".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(1, 1.0), (2, 2.0)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(2, 4.0)],
                },
            ],
        };
        let out = f.render();
        assert!(
            out.contains('-'),
            "missing samples must render as '-': {out}"
        );
        assert!(out.contains("4.000"));
    }

    #[test]
    fn smt_policy_selector() {
        let d4b = by_name("4B").unwrap();
        let het = by_name("3B5s").unwrap();
        assert!(!SmtPolicy::None.enabled_for(&d4b));
        assert!(SmtPolicy::HomogeneousOnly.enabled_for(&d4b));
        assert!(!SmtPolicy::HomogeneousOnly.enabled_for(&het));
        assert!(SmtPolicy::All.enabled_for(&het));
    }

    #[test]
    fn parsec_counts_respect_contexts() {
        let d = by_name("4B").unwrap();
        let with = parsec_counts(&d, true);
        assert!(with.contains(&24) && with.contains(&4));
        let without = parsec_counts(&d, false);
        assert_eq!(without, vec![4]);
        let s20 = by_name("20s").unwrap();
        assert_eq!(parsec_counts(&s20, false), vec![20]);
    }
}
