//! The experiment context: memoized simulation of design-space cells.
//!
//! A *cell* is one point of the design space: a (design, thread count,
//! workload class, SMT mode, bus bandwidth) tuple evaluated over the 12
//! workloads of that class (12 homogeneous workloads = 12 benchmarks;
//! 12 heterogeneous workloads = the balanced-random mixes of Section
//! 3.2). The context caches cells, isolated-benchmark profiles and
//! PARSEC-like application runs so that the many figures built from the
//! same underlying simulations (Figs. 3, 5-10, 13-15) pay for them
//! once, and it runs independent simulations on a host thread pool.
//!
//! Everything on the simulation path returns [`Result`]: a stalled,
//! misconfigured or budget-exhausted cell is a [`SimError`] value the
//! caller can log and skip, never a panic (DESIGN.md §7).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use tlpsim_power::{CoreKind, PowerModel};
use tlpsim_sched::{assign_threads, ThreadTraits};
use tlpsim_uarch::{
    ChipConfig, CoreConfig, Cycle, MultiCore, RunResult, RunStatus, ThreadProgram,
    DEFAULT_WATCHDOG_CYCLES,
};
use tlpsim_workloads::{mix, parsec, spec, InstrStream, ParsecApp, Segment};

use crate::configs::Design;
use crate::diskcache::{fnv1a64, DiskCache, Record};
use crate::error::SimError;
use crate::executor::lock_unpoisoned as lock;
use crate::metrics;
use crate::SimScale;
use crate::{interrupt, snapshot};

pub use crate::executor::par_map;

/// Which of the paper's two multi-program workload classes a cell uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Multiple copies of the same benchmark.
    Homogeneous,
    /// Balanced-random mixes of different benchmarks.
    Heterogeneous,
}

/// Cache key for a multi-program cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Design name (`"4B"`, ...).
    pub design: String,
    /// Active thread count.
    pub n: usize,
    /// Workload class.
    pub kind: WorkloadKind,
    /// SMT enabled on this chip.
    pub smt: bool,
    /// Off-chip bandwidth in tenths of GB/s (80 or 160).
    pub bus_dgbps: u32,
}

/// Results of one cell: per-workload metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// STP per workload (12 entries).
    pub stp: Vec<f64>,
    /// ANTT per workload.
    pub antt: Vec<f64>,
    /// Average chip power per workload (power gating on), watts.
    pub power_w: Vec<f64>,
}

impl Cell {
    /// Harmonic-mean STP across workloads (the paper's average for
    /// rate metrics). `NaN` on degenerate data (a populated cell
    /// always carries 12 positive STPs, so this only fires on
    /// hand-built cells).
    pub fn mean_stp(&self) -> f64 {
        metrics::harmonic_mean(&self.stp).unwrap_or(f64::NAN)
    }

    /// Arithmetic-mean ANTT across workloads (`NaN` if empty).
    pub fn mean_antt(&self) -> f64 {
        metrics::arithmetic_mean(&self.antt).unwrap_or(f64::NAN)
    }

    /// Arithmetic-mean chip power across workloads, watts (`NaN` if
    /// empty).
    pub fn mean_power(&self) -> f64 {
        metrics::arithmetic_mean(&self.power_w).unwrap_or(f64::NAN)
    }
}

/// Result of one PARSEC-like application run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsecOutcome {
    /// Cycles spent in the region of interest (between the first and
    /// last barrier release).
    pub roi_cycles: u64,
    /// Whole-program cycles (serial init/finalize included).
    pub total_cycles: u64,
    /// Active-thread histogram over the ROI (`[k]` = cycles with `k`
    /// runnable threads).
    pub histogram: Vec<u64>,
}

/// Cache key for a PARSEC run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParsecKey {
    /// Design name.
    pub design: String,
    /// Application index into [`parsec::all`].
    pub app: usize,
    /// Thread count.
    pub n: usize,
    /// SMT enabled.
    pub smt: bool,
    /// Off-chip bandwidth in tenths of GB/s.
    pub bus_dgbps: u32,
}

/// Counts of memoized results (diagnostics; also exercised by the
/// cache-recovery tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Isolated-profile entries.
    pub iso: usize,
    /// Multi-program cells.
    pub cells: usize,
    /// PARSEC runs.
    pub parsec: usize,
}

/// In-cell checkpoint policy (DESIGN.md §12, level 2): where engine
/// snapshots live and how often they are taken.
#[derive(Debug, Clone)]
struct CkptPolicy {
    /// Directory holding one `<hash>.ckpt` file per in-flight mix run.
    dir: PathBuf,
    /// Checkpoint cadence in chip cycles.
    every: Cycle,
}

/// The memoizing experiment context. Cheap to share by reference
/// across host threads; all caches are internally synchronized.
#[derive(Debug)]
pub struct Ctx {
    /// Simulation scale used for every run.
    pub scale: SimScale,
    /// Watchdog window passed to every engine run.
    watchdog_cycles: Cycle,
    iso: Mutex<HashMap<(usize, CoreKind), f64>>,
    cells: Mutex<HashMap<CellKey, Arc<Cell>>>,
    parsec_runs: Mutex<HashMap<ParsecKey, Arc<ParsecOutcome>>>,
    disk: Option<DiskCache>,
    ckpt: Option<CkptPolicy>,
}

impl Ctx {
    /// Create a context at the given scale.
    pub fn new(scale: SimScale) -> Self {
        Ctx {
            scale,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
            iso: Mutex::new(HashMap::new()),
            cells: Mutex::new(HashMap::new()),
            parsec_runs: Mutex::new(HashMap::new()),
            disk: None,
            ckpt: None,
        }
    }

    /// Create a context backed by an append-only result cache on disk,
    /// so separate processes (e.g. the per-figure bench targets) share
    /// simulation work. The file is only reused when its versioned
    /// header matches `scale`; on mismatch it is truncated. Corrupt or
    /// torn tails are truncated away and replay continues; records with
    /// malformed keys are rejected. I/O failure degrades to an
    /// in-memory context (with a note on stderr), never an abort.
    pub fn with_disk_cache<P: AsRef<std::path::Path>>(scale: SimScale, path: P) -> Self {
        let mut ctx = Self::new(scale);
        let path = path.as_ref();
        match DiskCache::open(scale, path) {
            Ok((disk, records, report)) => {
                for rec in records {
                    ctx.apply_record(rec);
                }
                if report.rejected > 0 {
                    eprintln!(
                        "tlpsim: cache {}: rejected {} malformed record(s)",
                        path.display(),
                        report.rejected
                    );
                }
                if let Some(at) = report.truncated_at {
                    eprintln!(
                        "tlpsim: cache {}: corrupt tail truncated at byte {at}; {} record(s) recovered",
                        path.display(),
                        report.replayed
                    );
                }
                ctx.disk = Some(disk);
            }
            Err(e) => {
                eprintln!(
                    "tlpsim: cache {} unavailable ({e}); continuing without disk cache",
                    path.display()
                );
            }
        }
        ctx
    }

    /// Override the engine watchdog window (cycles without a commit
    /// before a run aborts as [`SimError::Stalled`]).
    pub fn with_watchdog(mut self, cycles: Cycle) -> Self {
        self.watchdog_cycles = cycles.max(1);
        self
    }

    /// Enable in-cell checkpointing: every multi-program mix run saves
    /// its full engine state to `dir` every `every_cycles` chip cycles
    /// (atomically — see [`crate::snapshot`]), restores a valid
    /// checkpoint on re-entry, and checkpoints-and-stops when an
    /// interrupt is [`crate::interrupt::requested`]. Restored runs are
    /// bit-identical to uninterrupted ones; an unreadable or foreign
    /// checkpoint just recomputes from scratch.
    pub fn with_checkpoints<P: Into<PathBuf>>(mut self, dir: P, every_cycles: Cycle) -> Self {
        self.ckpt = Some(CkptPolicy {
            dir: dir.into(),
            every: every_cycles.max(1),
        });
        self
    }

    /// Install one replayed cache record.
    fn apply_record(&mut self, rec: Record) {
        match rec {
            Record::Iso { bench, kind, ipc } => {
                lock(&self.iso).insert((bench, kind), ipc);
            }
            Record::Cell { key, cell } => {
                lock(&self.cells).insert(key, Arc::new(cell));
            }
            Record::Parsec { key, out } => {
                lock(&self.parsec_runs).insert(key, Arc::new(out));
            }
        }
    }

    fn persist(&self, rec: &Record) {
        if let Some(disk) = &self.disk {
            disk.append(rec);
        }
    }

    /// How many results are memoized right now.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            iso: lock(&self.iso).len(),
            cells: lock(&self.cells).len(),
            parsec: lock(&self.parsec_runs).len(),
        }
    }

    /// Build and configure an engine instance.
    fn new_sim(&self, chip: &ChipConfig) -> MultiCore {
        let mut sim = MultiCore::new(chip);
        sim.set_watchdog(self.watchdog_cycles);
        sim
    }

    // ---------- isolated profiling (the paper's offline analysis) ----------

    /// IPC of benchmark `bench` running alone on one core of `kind`
    /// (memoized). This is the paper's offline isolated profiling, used
    /// both for scheduling and for STP/ANTT normalization.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for an out-of-range benchmark index
    /// or a zero-IPC profile; engine failures are passed through.
    pub fn iso_ipc(&self, bench: usize, kind: CoreKind) -> Result<f64, SimError> {
        if let Some(&v) = lock(&self.iso).get(&(bench, kind)) {
            return Ok(v);
        }
        let profiles = spec::all();
        let Some(profile) = profiles.get(bench) else {
            return Err(SimError::InvalidConfig(format!(
                "benchmark index {bench} out of range (have {})",
                profiles.len()
            )));
        };
        let core = match kind {
            CoreKind::Big => CoreConfig::big(),
            CoreKind::Medium => CoreConfig::medium(),
            CoreKind::Small => CoreConfig::small(),
        };
        let chip = ChipConfig::homogeneous(1, core, 2.66);
        let mut sim = self.new_sim(&chip);
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(profile, 0, self.scale.seed),
            self.scale.warmup,
            self.scale.budget,
        ));
        sim.pin(t, 0, 0);
        sim.prewarm();
        let run = sim.run()?;
        let ipc = run.threads[0].ipc(self.scale.budget);
        if !ipc.is_finite() || ipc <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "benchmark {bench} produced zero IPC on {kind:?}"
            )));
        }
        lock(&self.iso).insert((bench, kind), ipc);
        self.persist(&Record::Iso { bench, kind, ipc });
        Ok(ipc)
    }

    /// Scheduling traits of a benchmark (offline-analysis products).
    ///
    /// # Errors
    /// Propagates [`iso_ipc`](Self::iso_ipc) failures.
    pub fn traits_of(&self, bench: usize) -> Result<ThreadTraits, SimError> {
        let profiles = spec::all();
        let Some(profile) = profiles.get(bench) else {
            return Err(SimError::InvalidConfig(format!(
                "benchmark index {bench} out of range (have {})",
                profiles.len()
            )));
        };
        Ok(ThreadTraits {
            big_core_benefit: self.iso_ipc(bench, CoreKind::Big)?
                / self.iso_ipc(bench, CoreKind::Small)?,
            memory_intensity: profile.memory_intensity(),
        })
    }

    // ---------- multi-program cells ----------

    /// Simulate (or fetch) the cell for `design` at `n` threads.
    ///
    /// # Errors
    /// See [`mp_cell_bus`](Self::mp_cell_bus).
    pub fn mp_cell(
        &self,
        design: &Design,
        n: usize,
        kind: WorkloadKind,
        smt: bool,
    ) -> Result<Arc<Cell>, SimError> {
        self.mp_cell_bus(design, n, kind, smt, 8.0)
    }

    /// [`mp_cell`](Self::mp_cell) with explicit bus bandwidth (GB/s).
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for a zero thread count or bogus
    /// bandwidth; stalls and budget exhaustion from any of the 12
    /// workload simulations are passed through (the cell is all-or-
    /// nothing — partial cells are never cached).
    pub fn mp_cell_bus(
        &self,
        design: &Design,
        n: usize,
        kind: WorkloadKind,
        smt: bool,
        bus_gbps: f64,
    ) -> Result<Arc<Cell>, SimError> {
        if n == 0 {
            return Err(SimError::InvalidConfig(
                "cannot simulate a 0-thread cell".into(),
            ));
        }
        if !bus_gbps.is_finite() || bus_gbps <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "non-positive bus bandwidth {bus_gbps}"
            )));
        }
        let key = CellKey {
            design: design.name.clone(),
            n,
            kind,
            smt,
            bus_dgbps: (bus_gbps * 10.0) as u32,
        };
        if let Some(c) = lock(&self.cells).get(&key) {
            return Ok(Arc::clone(c));
        }
        let mixes: Vec<Vec<usize>> = match kind {
            WorkloadKind::Homogeneous => (0..12).map(|b| mix::homogeneous_mix(b, n)).collect(),
            WorkloadKind::Heterogeneous => mix::heterogeneous_mixes(12, n, self.scale.seed),
        };
        let mut stp = Vec::with_capacity(12);
        let mut antt = Vec::with_capacity(12);
        let mut power = Vec::with_capacity(12);
        for (w, m) in mixes.iter().enumerate() {
            let (s, a, p) = self.run_mix(design, m, smt, bus_gbps, w as u64)?;
            stp.push(s);
            antt.push(a);
            power.push(p);
        }
        let cell = Arc::new(Cell {
            stp,
            antt,
            power_w: power,
        });
        self.persist(&Record::Cell {
            key: key.clone(),
            cell: (*cell).clone(),
        });
        lock(&self.cells).insert(key, Arc::clone(&cell));
        Ok(cell)
    }

    /// Simulate one multi-program mix; returns `(stp, antt, power_w)`.
    fn run_mix(
        &self,
        design: &Design,
        mixv: &[usize],
        smt: bool,
        bus_gbps: f64,
        wl_seed: u64,
    ) -> Result<(f64, f64, f64), SimError> {
        let chip = design.chip(smt, bus_gbps);
        let traits: Vec<ThreadTraits> = mixv
            .iter()
            .map(|&b| self.traits_of(b))
            .collect::<Result<_, _>>()?;
        let placements = assign_threads(&chip, &traits, smt);
        let profiles = spec::all();

        let mut sim = self.new_sim(&chip);
        for (i, &b) in mixv.iter().enumerate() {
            let stream = InstrStream::new(
                &profiles[b],
                i as u64,
                self.scale.seed ^ (wl_seed << 20) ^ 0x9E37,
            );
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                stream,
                self.scale.warmup,
                self.scale.budget,
            ));
            sim.pin(t, placements[i].core, placements[i].slot);
        }
        sim.prewarm();
        // The tag pins every input that shapes this run, so a restored
        // checkpoint can never be applied to a different simulation.
        let tag = format!(
            "{}|{:?}|{}|{:x}|{}|{:?}",
            design.name,
            mixv,
            smt,
            bus_gbps.to_bits(),
            wl_seed,
            self.scale
        );
        let run = self.finish_run(sim, &tag)?;
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(mixv.len());
        for (t, &b) in run.threads.iter().zip(mixv) {
            pairs.push((t.ipc(self.scale.budget), self.iso_ipc(b, CoreKind::Big)?));
        }
        let report = PowerModel::with_power_gating().report(&chip, &run);
        Ok((
            metrics::stp(&pairs)?,
            metrics::antt(&pairs)?,
            report.avg_power_w,
        ))
    }

    /// Drive a prepared simulation to completion under the crash-safety
    /// policy (DESIGN.md §12, level 2).
    ///
    /// Without checkpointing this is `sim.run()` behind an interrupt
    /// check. With a [`CkptPolicy`] the run is sliced at the checkpoint
    /// cadence: a valid prior checkpoint is restored first (slicing and
    /// restoring are invisible to the result — the §9 contract, proven
    /// by the `snapshot`/`golden` test suites), the engine state is
    /// written atomically at every slice boundary, and a requested
    /// interrupt checkpoints once more and returns
    /// [`SimError::Interrupted`] so `tlpsim resume` can pick the run
    /// back up mid-cell. The checkpoint file is removed on completion.
    fn finish_run(&self, mut sim: MultiCore, tag: &str) -> Result<RunResult, SimError> {
        let Some(ckpt) = &self.ckpt else {
            if interrupt::requested() {
                return Err(SimError::Interrupted);
            }
            return Ok(sim.run()?);
        };
        if let Err(e) = std::fs::create_dir_all(&ckpt.dir) {
            return Err(SimError::InvalidConfig(format!(
                "cannot create checkpoint directory {}: {e}",
                ckpt.dir.display()
            )));
        }
        let path = ckpt
            .dir
            .join(format!("{:016x}.ckpt", fnv1a64(tag.as_bytes())));
        if let Some(bytes) = snapshot::read_validated(&path) {
            // A checkpoint that fails structural validation (engine
            // format drift) is ignored; the cell just recomputes.
            let _ = sim.restore_state(&bytes);
        }
        let save = |sim: &MultiCore| {
            if let Err(e) = snapshot::write_atomic(&path, &sim.save_state()) {
                eprintln!(
                    "tlpsim: checkpoint {} not written ({e}); continuing",
                    path.display()
                );
            }
        };
        loop {
            if interrupt::requested() {
                save(&sim);
                return Err(SimError::Interrupted);
            }
            let stop = sim.now().saturating_add(ckpt.every);
            match sim.run_slice(1 << 40, stop) {
                Ok(RunStatus::Done(r)) => {
                    let _ = std::fs::remove_file(&path);
                    return Ok(r);
                }
                Ok(RunStatus::Paused) => save(&sim),
                Err(e) => {
                    // Deterministic failure: a restore would only
                    // reproduce it, so drop the checkpoint.
                    let _ = std::fs::remove_file(&path);
                    return Err(e.into());
                }
            }
        }
    }

    // ---------- PARSEC-like applications ----------

    /// Simulate (or fetch) one PARSEC-like application run.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] for an unknown app index, a zero
    /// thread count, or an app without barriers; engine stalls and
    /// budget exhaustion are passed through.
    pub fn parsec_run(
        &self,
        design: &Design,
        app_idx: usize,
        n_threads: usize,
        smt: bool,
        bus_gbps: f64,
    ) -> Result<Arc<ParsecOutcome>, SimError> {
        if n_threads == 0 {
            return Err(SimError::InvalidConfig(
                "cannot run an app with 0 threads".into(),
            ));
        }
        let key = ParsecKey {
            design: design.name.clone(),
            app: app_idx,
            n: n_threads,
            smt,
            bus_dgbps: (bus_gbps * 10.0) as u32,
        };
        if let Some(r) = lock(&self.parsec_runs).get(&key) {
            return Ok(Arc::clone(r));
        }
        let apps = parsec::all();
        let Some(app) = apps.get(app_idx) else {
            return Err(SimError::InvalidConfig(format!(
                "app index {app_idx} out of range (have {})",
                apps.len()
            )));
        };
        let outcome = self.run_parsec_app(design, app, n_threads, smt, bus_gbps)?;
        self.persist(&Record::Parsec {
            key: key.clone(),
            out: outcome.clone(),
        });
        let arc = Arc::new(outcome);
        lock(&self.parsec_runs).insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    fn run_parsec_app(
        &self,
        design: &Design,
        app: &ParsecApp,
        n_threads: usize,
        smt: bool,
        bus_gbps: f64,
    ) -> Result<ParsecOutcome, SimError> {
        let chip = design.chip(smt, bus_gbps);
        let w = app.instantiate(n_threads, self.scale.parsec_phase, self.scale.seed);
        // Pinned scheduling (Section 5): equal traits keep thread 0 on
        // the biggest core, so serial phases run there.
        let traits = vec![
            ThreadTraits {
                big_core_benefit: 1.0,
                memory_intensity: app.profile.memory_intensity(),
            };
            n_threads
        ];
        let placements = assign_threads(&chip, &traits, smt);
        let Some(max_barrier) = w
            .threads
            .iter()
            .flatten()
            .filter_map(|s| match s {
                Segment::Barrier { id } => Some(*id),
                _ => None,
            })
            .max()
        else {
            return Err(SimError::InvalidConfig(format!(
                "app {} instantiated without barriers",
                app.name
            )));
        };

        let shared_base = 0x7000_0000_0000u64;
        let mut sim = self.new_sim(&chip);
        for (i, segs) in w.threads.iter().enumerate() {
            let stream = InstrStream::new(&w.profile, i as u64, self.scale.seed ^ 0xA44_5EED)
                .with_shared_region(shared_base, w.shared_bytes, w.shared_frac);
            let t = sim.add_thread(ThreadProgram::segmented(stream, segs.clone()));
            sim.pin(t, placements[i].core, placements[i].slot);
        }
        sim.set_roi_barriers(0, max_barrier);
        sim.prewarm();
        let run = sim.run()?;
        Ok(ParsecOutcome {
            roi_cycles: run.active_histogram.iter().sum(),
            total_cycles: run.cycles,
            histogram: run.active_histogram,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    fn quick_ctx() -> Ctx {
        Ctx::new(SimScale::quick())
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| Ok(x * 2));
        let vals: Vec<u64> = out.into_iter().map(|r| r.expect("no failures")).collect();
        assert_eq!(vals, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn iso_profiles_are_cached_and_ordered() {
        let ctx = quick_ctx();
        let hmmer = 0; // index of hmmer_like
        let mcf = 9; // index of mcf_like
        let big = ctx.iso_ipc(hmmer, CoreKind::Big).expect("runs");
        let small = ctx.iso_ipc(hmmer, CoreKind::Small).expect("runs");
        assert!(big > small, "hmmer: big {big} <= small {small}");
        // Memoization: identical on second call.
        assert_eq!(ctx.iso_ipc(hmmer, CoreKind::Big).expect("cached"), big);
        // mcf benefits less from the big core than hmmer.
        let t_h = ctx.traits_of(hmmer).expect("runs");
        let t_m = ctx.traits_of(mcf).expect("runs");
        assert!(t_h.big_core_benefit > t_m.big_core_benefit);
        assert!(t_m.memory_intensity > t_h.memory_intensity);
    }

    #[test]
    fn cell_runs_and_caches() {
        let ctx = quick_ctx();
        let d = configs::by_name("4B").unwrap();
        let c = ctx
            .mp_cell(&d, 2, WorkloadKind::Homogeneous, true)
            .expect("cell simulates");
        assert_eq!(c.stp.len(), 12);
        assert!(c.mean_stp() > 0.5, "2-thread 4B STP {}", c.mean_stp());
        assert!(c.mean_antt() >= 1.0, "ANTT below 1: {}", c.mean_antt());
        assert!(
            c.mean_power() > 7.0,
            "power below uncore: {}",
            c.mean_power()
        );
        let again = ctx
            .mp_cell(&d, 2, WorkloadKind::Homogeneous, true)
            .expect("cached");
        assert!(Arc::ptr_eq(&c, &again), "cell must be cached");
        assert_eq!(ctx.cache_stats().cells, 1);
    }

    #[test]
    fn invalid_cells_are_typed_errors_not_panics() {
        let ctx = quick_ctx();
        let d = configs::by_name("4B").unwrap();
        assert!(matches!(
            ctx.mp_cell(&d, 0, WorkloadKind::Homogeneous, true),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            ctx.mp_cell_bus(&d, 2, WorkloadKind::Homogeneous, true, 0.0),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            ctx.parsec_run(&d, 9999, 4, true, 8.0),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            ctx.parsec_run(&d, 0, 0, true, 8.0),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            ctx.iso_ipc(9999, CoreKind::Big),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn stp_grows_with_thread_count() {
        let ctx = quick_ctx();
        let d = configs::by_name("4B").unwrap();
        let s1 = ctx
            .mp_cell(&d, 1, WorkloadKind::Heterogeneous, true)
            .expect("runs")
            .mean_stp();
        let s4 = ctx
            .mp_cell(&d, 4, WorkloadKind::Heterogeneous, true)
            .expect("runs")
            .mean_stp();
        assert!(s4 > s1 * 1.5, "STP: 1thr {s1} vs 4thr {s4}");
    }

    #[test]
    fn checkpointed_cell_matches_plain_and_cleans_up() {
        let d = configs::by_name("4B").unwrap();
        let plain = quick_ctx()
            .mp_cell(&d, 2, WorkloadKind::Heterogeneous, true)
            .expect("plain cell");
        let dir = std::env::temp_dir().join(format!("tlpsim-ckpt-ctx-{}", std::process::id()));
        // Tiny cadence so the run is sliced (and checkpointed) many
        // times — the result must not notice.
        let ctx = Ctx::new(SimScale::quick()).with_checkpoints(dir.clone(), 500);
        let ck = ctx
            .mp_cell(&d, 2, WorkloadKind::Heterogeneous, true)
            .expect("checkpointed cell");
        assert_eq!(*plain, *ck, "checkpoint slicing changed the result");
        let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftover, 0, "completed runs must remove their checkpoints");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parsec_outcome_sane() {
        let ctx = quick_ctx();
        let d = configs::by_name("4B").unwrap();
        let r = ctx.parsec_run(&d, 0, 4, true, 8.0).expect("runs");
        assert!(r.roi_cycles > 0);
        assert!(r.total_cycles >= r.roi_cycles);
        let again = ctx.parsec_run(&d, 0, 4, true, 8.0).expect("cached");
        assert!(Arc::ptr_eq(&r, &again));
    }
}
