//! The experiment context: memoized simulation of design-space cells.
//!
//! A *cell* is one point of the design space: a (design, thread count,
//! workload class, SMT mode, bus bandwidth) tuple evaluated over the 12
//! workloads of that class (12 homogeneous workloads = 12 benchmarks;
//! 12 heterogeneous workloads = the balanced-random mixes of Section
//! 3.2). The context caches cells, isolated-benchmark profiles and
//! PARSEC-like application runs so that the many figures built from the
//! same underlying simulations (Figs. 3, 5-10, 13-15) pay for them
//! once, and it runs independent simulations on a host thread pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use tlpsim_power::{CoreKind, PowerModel};
use tlpsim_sched::{assign_threads, ThreadTraits};
use tlpsim_uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
use tlpsim_workloads::{mix, parsec, spec, InstrStream, ParsecApp, Segment};

use crate::configs::Design;
use crate::metrics;
use crate::SimScale;

/// Which of the paper's two multi-program workload classes a cell uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Multiple copies of the same benchmark.
    Homogeneous,
    /// Balanced-random mixes of different benchmarks.
    Heterogeneous,
}

/// Cache key for a multi-program cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Design name (`"4B"`, ...).
    pub design: String,
    /// Active thread count.
    pub n: usize,
    /// Workload class.
    pub kind: WorkloadKind,
    /// SMT enabled on this chip.
    pub smt: bool,
    /// Off-chip bandwidth in tenths of GB/s (80 or 160).
    pub bus_dgbps: u32,
}

/// Results of one cell: per-workload metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// STP per workload (12 entries).
    pub stp: Vec<f64>,
    /// ANTT per workload.
    pub antt: Vec<f64>,
    /// Average chip power per workload (power gating on), watts.
    pub power_w: Vec<f64>,
}

impl Cell {
    /// Harmonic-mean STP across workloads (the paper's average for
    /// rate metrics).
    pub fn mean_stp(&self) -> f64 {
        metrics::harmonic_mean(&self.stp)
    }

    /// Arithmetic-mean ANTT across workloads.
    pub fn mean_antt(&self) -> f64 {
        metrics::arithmetic_mean(&self.antt)
    }

    /// Arithmetic-mean chip power across workloads, watts.
    pub fn mean_power(&self) -> f64 {
        metrics::arithmetic_mean(&self.power_w)
    }
}

/// Result of one PARSEC-like application run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsecOutcome {
    /// Cycles spent in the region of interest (between the first and
    /// last barrier release).
    pub roi_cycles: u64,
    /// Whole-program cycles (serial init/finalize included).
    pub total_cycles: u64,
    /// Active-thread histogram over the ROI (`[k]` = cycles with `k`
    /// runnable threads).
    pub histogram: Vec<u64>,
}

/// Cache key for a PARSEC run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ParsecKey {
    design: String,
    app: usize,
    n: usize,
    smt: bool,
    bus_dgbps: u32,
}

/// The memoizing experiment context. Cheap to share by reference
/// across host threads; all caches are internally synchronized.
#[derive(Debug)]
pub struct Ctx {
    /// Simulation scale used for every run.
    pub scale: SimScale,
    iso: Mutex<HashMap<(usize, CoreKind), f64>>,
    cells: Mutex<HashMap<CellKey, Arc<Cell>>>,
    parsec_runs: Mutex<HashMap<ParsecKey, Arc<ParsecOutcome>>>,
    disk: Option<Mutex<std::fs::File>>,
}

impl Ctx {
    /// Create a context at the given scale.
    pub fn new(scale: SimScale) -> Self {
        Ctx {
            scale,
            iso: Mutex::new(HashMap::new()),
            cells: Mutex::new(HashMap::new()),
            parsec_runs: Mutex::new(HashMap::new()),
            disk: None,
        }
    }

    /// Create a context backed by an append-only result cache on disk,
    /// so separate processes (e.g. the per-figure bench targets) share
    /// simulation work. The file is only reused when its header matches
    /// `scale`; on mismatch it is truncated.
    pub fn with_disk_cache<P: AsRef<std::path::Path>>(scale: SimScale, path: P) -> Self {
        let mut ctx = Self::new(scale);
        let path = path.as_ref();
        let header = format!(
            "SCALE {} {} {} {}",
            scale.warmup, scale.budget, scale.parsec_phase, scale.seed
        );
        let mut valid = false;
        if let Ok(text) = std::fs::read_to_string(path) {
            let mut lines = text.lines();
            if lines.next() == Some(header.as_str()) {
                valid = true;
                for line in lines {
                    ctx.load_record(line);
                }
            }
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(valid)
            .write(true)
            .truncate(!valid)
            .open(path);
        if let Ok(mut f) = file {
            use std::io::Write;
            if !valid {
                let _ = writeln!(f, "{header}");
            }
            ctx.disk = Some(Mutex::new(f));
        }
        ctx
    }

    fn load_record(&mut self, line: &str) {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("ISO") => {
                let (Some(b), Some(k), Some(v)) = (it.next(), it.next(), it.next()) else {
                    return;
                };
                let kind = match k {
                    "B" => CoreKind::Big,
                    "M" => CoreKind::Medium,
                    _ => CoreKind::Small,
                };
                if let (Ok(b), Ok(v)) = (b.parse(), v.parse()) {
                    self.iso.get_mut().insert((b, kind), v);
                }
            }
            Some("CELL") => {
                let (Some(d), Some(n), Some(k), Some(smt), Some(bus)) =
                    (it.next(), it.next(), it.next(), it.next(), it.next())
                else {
                    return;
                };
                let vals: Vec<f64> = it.filter_map(|x| x.parse().ok()).collect();
                if vals.len() != 36 {
                    return;
                }
                let key = CellKey {
                    design: d.to_string(),
                    n: n.parse().unwrap_or(0),
                    kind: if k == "H" {
                        WorkloadKind::Homogeneous
                    } else {
                        WorkloadKind::Heterogeneous
                    },
                    smt: smt == "1",
                    bus_dgbps: bus.parse().unwrap_or(80),
                };
                let cell = Cell {
                    stp: vals[0..12].to_vec(),
                    antt: vals[12..24].to_vec(),
                    power_w: vals[24..36].to_vec(),
                };
                self.cells.get_mut().insert(key, Arc::new(cell));
            }
            Some("PARSEC") => {
                let (Some(d), Some(a), Some(n), Some(smt), Some(bus), Some(roi), Some(total)) = (
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                ) else {
                    return;
                };
                let hist: Vec<u64> = it.filter_map(|x| x.parse().ok()).collect();
                let key = ParsecKey {
                    design: d.to_string(),
                    app: a.parse().unwrap_or(0),
                    n: n.parse().unwrap_or(0),
                    smt: smt == "1",
                    bus_dgbps: bus.parse().unwrap_or(80),
                };
                let out = ParsecOutcome {
                    roi_cycles: roi.parse().unwrap_or(0),
                    total_cycles: total.parse().unwrap_or(0),
                    histogram: hist,
                };
                self.parsec_runs.get_mut().insert(key, Arc::new(out));
            }
            _ => {}
        }
    }

    fn persist(&self, line: String) {
        if let Some(f) = &self.disk {
            use std::io::Write;
            let _ = writeln!(f.lock(), "{line}");
        }
    }

    // ---------- isolated profiling (the paper's offline analysis) ----------

    /// IPC of benchmark `bench` running alone on one core of `kind`
    /// (memoized). This is the paper's offline isolated profiling, used
    /// both for scheduling and for STP/ANTT normalization.
    pub fn iso_ipc(&self, bench: usize, kind: CoreKind) -> f64 {
        if let Some(&v) = self.iso.lock().get(&(bench, kind)) {
            return v;
        }
        let core = match kind {
            CoreKind::Big => CoreConfig::big(),
            CoreKind::Medium => CoreConfig::medium(),
            CoreKind::Small => CoreConfig::small(),
        };
        let chip = ChipConfig::homogeneous(1, core, 2.66);
        let profile = &spec::all()[bench];
        let mut sim = MultiCore::new(&chip);
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(profile, 0, self.scale.seed),
            self.scale.warmup,
            self.scale.budget,
        ));
        sim.pin(t, 0, 0);
        sim.prewarm();
        let run = sim.run().expect("isolated run cannot deadlock");
        let ipc = run.threads[0].ipc(self.scale.budget);
        assert!(ipc > 0.0, "benchmark {bench} produced zero IPC");
        self.iso.lock().insert((bench, kind), ipc);
        let k = match kind {
            CoreKind::Big => "B",
            CoreKind::Medium => "M",
            CoreKind::Small => "S",
        };
        self.persist(format!("ISO {bench} {k} {ipc}"));
        ipc
    }

    /// Scheduling traits of a benchmark (offline-analysis products).
    pub fn traits_of(&self, bench: usize) -> ThreadTraits {
        ThreadTraits {
            big_core_benefit: self.iso_ipc(bench, CoreKind::Big)
                / self.iso_ipc(bench, CoreKind::Small),
            memory_intensity: spec::all()[bench].memory_intensity(),
        }
    }

    // ---------- multi-program cells ----------

    /// Simulate (or fetch) the cell for `design` at `n` threads.
    pub fn mp_cell(&self, design: &Design, n: usize, kind: WorkloadKind, smt: bool) -> Arc<Cell> {
        self.mp_cell_bus(design, n, kind, smt, 8.0)
    }

    /// [`mp_cell`](Self::mp_cell) with explicit bus bandwidth (GB/s).
    pub fn mp_cell_bus(
        &self,
        design: &Design,
        n: usize,
        kind: WorkloadKind,
        smt: bool,
        bus_gbps: f64,
    ) -> Arc<Cell> {
        let key = CellKey {
            design: design.name.clone(),
            n,
            kind,
            smt,
            bus_dgbps: (bus_gbps * 10.0) as u32,
        };
        if let Some(c) = self.cells.lock().get(&key) {
            return Arc::clone(c);
        }
        let mixes: Vec<Vec<usize>> = match kind {
            WorkloadKind::Homogeneous => (0..12).map(|b| mix::homogeneous_mix(b, n)).collect(),
            WorkloadKind::Heterogeneous => mix::heterogeneous_mixes(12, n, self.scale.seed),
        };
        let mut stp = Vec::with_capacity(12);
        let mut antt = Vec::with_capacity(12);
        let mut power = Vec::with_capacity(12);
        for (w, m) in mixes.iter().enumerate() {
            let (s, a, p) = self.run_mix(design, m, smt, bus_gbps, w as u64);
            stp.push(s);
            antt.push(a);
            power.push(p);
        }
        let cell = Arc::new(Cell {
            stp,
            antt,
            power_w: power,
        });
        let nums = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        self.persist(format!(
            "CELL {} {} {} {} {} {} {} {}",
            key.design,
            key.n,
            if key.kind == WorkloadKind::Homogeneous {
                "H"
            } else {
                "X"
            },
            u8::from(key.smt),
            key.bus_dgbps,
            nums(&cell.stp),
            nums(&cell.antt),
            nums(&cell.power_w),
        ));
        self.cells.lock().insert(key, Arc::clone(&cell));
        cell
    }

    /// Simulate one multi-program mix; returns `(stp, antt, power_w)`.
    fn run_mix(
        &self,
        design: &Design,
        mixv: &[usize],
        smt: bool,
        bus_gbps: f64,
        wl_seed: u64,
    ) -> (f64, f64, f64) {
        let chip = design.chip(smt, bus_gbps);
        let traits: Vec<ThreadTraits> = mixv.iter().map(|&b| self.traits_of(b)).collect();
        let placements = assign_threads(&chip, &traits, smt);
        let profiles = spec::all();

        let mut sim = MultiCore::new(&chip);
        for (i, &b) in mixv.iter().enumerate() {
            let stream = InstrStream::new(
                &profiles[b],
                i as u64,
                self.scale.seed ^ (wl_seed << 20) ^ 0x9E37,
            );
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                stream,
                self.scale.warmup,
                self.scale.budget,
            ));
            sim.pin(t, placements[i].core, placements[i].slot);
        }
        sim.prewarm();
        let run = sim.run().unwrap_or_else(|e| {
            panic!(
                "mix {mixv:?} on {} (smt={smt}, n={}) failed: {e}",
                design.name,
                mixv.len()
            )
        });
        let pairs: Vec<(f64, f64)> = run
            .threads
            .iter()
            .zip(mixv)
            .map(|(t, &b)| (t.ipc(self.scale.budget), self.iso_ipc(b, CoreKind::Big)))
            .collect();
        let report = PowerModel::with_power_gating().report(&chip, &run);
        (
            metrics::stp(&pairs),
            metrics::antt(&pairs),
            report.avg_power_w,
        )
    }

    // ---------- PARSEC-like applications ----------

    /// Simulate (or fetch) one PARSEC-like application run.
    pub fn parsec_run(
        &self,
        design: &Design,
        app_idx: usize,
        n_threads: usize,
        smt: bool,
        bus_gbps: f64,
    ) -> Arc<ParsecOutcome> {
        let key = ParsecKey {
            design: design.name.clone(),
            app: app_idx,
            n: n_threads,
            smt,
            bus_dgbps: (bus_gbps * 10.0) as u32,
        };
        if let Some(r) = self.parsec_runs.lock().get(&key) {
            return Arc::clone(r);
        }
        let apps = parsec::all();
        let outcome = self.run_parsec_app(design, &apps[app_idx], n_threads, smt, bus_gbps);
        let hist = outcome
            .histogram
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        self.persist(format!(
            "PARSEC {} {} {} {} {} {} {} {}",
            key.design,
            key.app,
            key.n,
            u8::from(key.smt),
            key.bus_dgbps,
            outcome.roi_cycles,
            outcome.total_cycles,
            hist,
        ));
        let arc = Arc::new(outcome);
        self.parsec_runs.lock().insert(key, Arc::clone(&arc));
        arc
    }

    fn run_parsec_app(
        &self,
        design: &Design,
        app: &ParsecApp,
        n_threads: usize,
        smt: bool,
        bus_gbps: f64,
    ) -> ParsecOutcome {
        let chip = design.chip(smt, bus_gbps);
        let w = app.instantiate(n_threads, self.scale.parsec_phase, self.scale.seed);
        // Pinned scheduling (Section 5): equal traits keep thread 0 on
        // the biggest core, so serial phases run there.
        let traits = vec![
            ThreadTraits {
                big_core_benefit: 1.0,
                memory_intensity: app.profile.memory_intensity(),
            };
            n_threads
        ];
        let placements = assign_threads(&chip, &traits, smt);
        let max_barrier = w
            .threads
            .iter()
            .flatten()
            .filter_map(|s| match s {
                Segment::Barrier { id } => Some(*id),
                _ => None,
            })
            .max()
            .expect("apps always have barriers");

        let shared_base = 0x7000_0000_0000u64;
        let mut sim = MultiCore::new(&chip);
        for (i, segs) in w.threads.iter().enumerate() {
            let stream = InstrStream::new(&w.profile, i as u64, self.scale.seed ^ 0xA44_5EED)
                .with_shared_region(shared_base, w.shared_bytes, w.shared_frac);
            let t = sim.add_thread(ThreadProgram::segmented(stream, segs.clone()));
            sim.pin(t, placements[i].core, placements[i].slot);
        }
        sim.set_roi_barriers(0, max_barrier);
        sim.prewarm();
        let run = sim.run().unwrap_or_else(|e| {
            panic!(
                "app {} x{} on {} (smt={smt}) failed: {e}",
                app.name, n_threads, design.name
            )
        });
        ParsecOutcome {
            roi_cycles: run.active_histogram.iter().sum(),
            total_cycles: run.cycles,
            histogram: run.active_histogram,
        }
    }
}

/// Run `f` over `items` on a host thread pool, preserving order.
///
/// This is the sweep executor used by the experiment drivers: each
/// item is typically one design-space cell (internally ~12 simulated
/// chips).
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock() = Some(r);
            });
        }
    })
    .expect("worker panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("all items processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    fn quick_ctx() -> Ctx {
        Ctx::new(SimScale::quick())
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn iso_profiles_are_cached_and_ordered() {
        let ctx = quick_ctx();
        let hmmer = 0; // index of hmmer_like
        let mcf = 9; // index of mcf_like
        let big = ctx.iso_ipc(hmmer, CoreKind::Big);
        let small = ctx.iso_ipc(hmmer, CoreKind::Small);
        assert!(big > small, "hmmer: big {big} <= small {small}");
        // Memoization: identical on second call.
        assert_eq!(ctx.iso_ipc(hmmer, CoreKind::Big), big);
        // mcf benefits less from the big core than hmmer.
        let t_h = ctx.traits_of(hmmer);
        let t_m = ctx.traits_of(mcf);
        assert!(t_h.big_core_benefit > t_m.big_core_benefit);
        assert!(t_m.memory_intensity > t_h.memory_intensity);
    }

    #[test]
    fn cell_runs_and_caches() {
        let ctx = quick_ctx();
        let d = configs::by_name("4B").unwrap();
        let c = ctx.mp_cell(&d, 2, WorkloadKind::Homogeneous, true);
        assert_eq!(c.stp.len(), 12);
        assert!(c.mean_stp() > 0.5, "2-thread 4B STP {}", c.mean_stp());
        assert!(c.mean_antt() >= 1.0, "ANTT below 1: {}", c.mean_antt());
        assert!(
            c.mean_power() > 7.0,
            "power below uncore: {}",
            c.mean_power()
        );
        let again = ctx.mp_cell(&d, 2, WorkloadKind::Homogeneous, true);
        assert!(Arc::ptr_eq(&c, &again), "cell must be cached");
    }

    #[test]
    fn stp_grows_with_thread_count() {
        let ctx = quick_ctx();
        let d = configs::by_name("4B").unwrap();
        let s1 = ctx
            .mp_cell(&d, 1, WorkloadKind::Heterogeneous, true)
            .mean_stp();
        let s4 = ctx
            .mp_cell(&d, 4, WorkloadKind::Heterogeneous, true)
            .mean_stp();
        assert!(s4 > s1 * 1.5, "STP: 1thr {s1} vs 4thr {s4}");
    }

    #[test]
    fn parsec_outcome_sane() {
        let ctx = quick_ctx();
        let d = configs::by_name("4B").unwrap();
        let r = ctx.parsec_run(&d, 0, 4, true, 8.0);
        assert!(r.roi_cycles > 0);
        assert!(r.total_cycles >= r.roi_cycles);
        let again = ctx.parsec_run(&d, 0, 4, true, 8.0);
        assert!(Arc::ptr_eq(&r, &again));
    }
}
