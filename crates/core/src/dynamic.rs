//! The idealized dynamic (core-fusion) multi-core of Section 6.
//!
//! The paper models the dynamic multi-core optimistically: a chip that
//! can morph, with zero overhead, into any of the nine static
//! configurations, and always picks the best one for the current
//! thread count and workload. That makes it an *oracle over the static
//! design space*, which is exactly how we compute it: the per-workload
//! maximum of the nine cells.

use crate::configs::nine_designs;
use crate::ctx::{Ctx, WorkloadKind};
use crate::error::SimError;
use crate::metrics;

/// STP of the ideal dynamic multi-core at `n` threads: for each of the
/// 12 workloads, the best of the nine designs (then harmonic-mean
/// across workloads, like any other design point). A design whose cell
/// fails is logged and excluded from the oracle — the ideal chip simply
/// never morphs into a configuration that cannot run the workload.
///
/// # Errors
/// Returns the last per-design error only if *every* design failed.
pub fn dynamic_stp(ctx: &Ctx, n: usize, kind: WorkloadKind, smt: bool) -> Result<f64, SimError> {
    let designs = nine_designs();
    let mut cells = Vec::with_capacity(designs.len());
    let mut last_err = None;
    for d in &designs {
        match ctx.mp_cell(d, n, kind, smt) {
            Ok(c) => cells.push(c),
            Err(e) => {
                eprintln!(
                    "tlpsim: dynamic oracle: {} at n={n} failed ({e}); excluded",
                    d.name
                );
                last_err = Some(e);
            }
        }
    }
    if cells.is_empty() {
        return Err(last_err
            .unwrap_or_else(|| SimError::InvalidConfig("dynamic oracle has no designs".into())));
    }
    let per_workload: Vec<f64> = (0..12)
        .map(|w| cells.iter().map(|c| c.stp[w]).fold(f64::MIN, f64::max))
        .collect();
    metrics::harmonic_mean(&per_workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use crate::SimScale;

    #[test]
    fn dynamic_dominates_every_static_design() {
        let ctx = Ctx::new(SimScale::quick());
        let n = 3;
        let dyn_stp = dynamic_stp(&ctx, n, WorkloadKind::Homogeneous, true).expect("oracle runs");
        for d in configs::nine_designs() {
            let s = ctx
                .mp_cell(&d, n, WorkloadKind::Homogeneous, true)
                .expect("cell simulates")
                .mean_stp();
            assert!(
                dyn_stp >= s - 1e-9,
                "dynamic {dyn_stp} worse than {}: {s}",
                d.name
            );
        }
    }
}
