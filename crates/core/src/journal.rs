//! The write-ahead sweep journal (DESIGN.md §12, level 1).
//!
//! A sweep (`tlpsim sweep`) evaluates one design at every thread count
//! of [`crate::SWEEP_COUNTS`]; a cell can take minutes, the sweep
//! hours. The journal makes the sweep crash-safe at cell granularity:
//! each completed cell is appended as one framed, checksummed record
//! and `sync_data`'d *before* the sweep counts it done, so a SIGKILL at
//! any instant loses at most the in-flight cells. `tlpsim resume`
//! replays the journal, reports every recovered cell, and re-dispatches
//! only the remainder.
//!
//! Format (line-oriented text, like the disk cache it borrows its
//! framing from):
//!
//! * header — `TLPSIM-JOURNAL v1 <design> <H|X> <smt> <bus_dgbps>
//!   <warmup> <budget> <parsec_phase> <seed>`: everything needed to
//!   re-create the sweep, so `resume` takes only the journal path;
//! * records — the disk cache's framed [`Record::Cell`] lines
//!   (`<fnv1a64> <len> <payload>`), one per completed cell;
//! * torn tail — a crash mid-append leaves a half-written last line;
//!   replay stops at the first bad frame and truncates back to the
//!   last good record (the lost cell is simply re-simulated);
//! * a record whose key does not match the header (foreign design,
//!   different SMT mode...) is rejected and counted, never trusted.
//!
//! Unlike the disk cache, a header mismatch is an *error*, not a
//! fresh start: resuming someone else's journal must fail loudly.

use std::collections::BTreeMap;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::ctx::{Cell, CellKey, WorkloadKind};
use crate::diskcache::{lock_path_for, unframe, FileLock, Record};
use crate::error::SimError;
use crate::executor::lock_unpoisoned;
use crate::SimScale;

/// Journal format version; bump on any layout change.
pub const JOURNAL_VERSION: u32 = 1;

/// Everything that identifies one sweep: re-running these parameters
/// reproduces the journaled cells bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Design name (`"4B"`, ...).
    pub design: String,
    /// Workload class of every cell.
    pub kind: WorkloadKind,
    /// SMT enabled on the chip.
    pub smt: bool,
    /// Off-chip bandwidth in tenths of GB/s.
    pub bus_dgbps: u32,
    /// Simulation scale (warmup/budget/seed) of every cell.
    pub scale: SimScale,
}

impl SweepSpec {
    /// The cache key a cell of this sweep at thread count `n` carries.
    pub fn cell_key(&self, n: usize) -> CellKey {
        CellKey {
            design: self.design.clone(),
            n,
            kind: self.kind,
            smt: self.smt,
            bus_dgbps: self.bus_dgbps,
        }
    }

    fn header_line(&self) -> String {
        format!(
            "TLPSIM-JOURNAL v{JOURNAL_VERSION} {} {} {} {} {} {} {} {}",
            self.design,
            if self.kind == WorkloadKind::Homogeneous {
                "H"
            } else {
                "X"
            },
            u8::from(self.smt),
            self.bus_dgbps,
            self.scale.warmup,
            self.scale.budget,
            self.scale.parsec_phase,
            self.scale.seed,
        )
    }

    fn parse_header(line: &str) -> Result<SweepSpec, String> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("TLPSIM-JOURNAL") => {}
            _ => return Err("not a tlpsim sweep journal".into()),
        }
        match it.next() {
            Some(v) if v == format!("v{JOURNAL_VERSION}") => {}
            Some(v) => return Err(format!("unsupported journal version {v:?}")),
            None => return Err("journal header truncated".into()),
        }
        let (Some(design), Some(k), Some(smt), Some(bus), Some(w), Some(b), Some(p), Some(s)) = (
            it.next(),
            it.next(),
            it.next(),
            it.next(),
            it.next(),
            it.next(),
            it.next(),
            it.next(),
        ) else {
            return Err("journal header truncated".into());
        };
        if it.next().is_some() {
            return Err("journal header has trailing fields".into());
        }
        let kind = match k {
            "H" => WorkloadKind::Homogeneous,
            "X" => WorkloadKind::Heterogeneous,
            _ => return Err(format!("bad workload kind {k:?}")),
        };
        let smt = match smt {
            "0" => false,
            "1" => true,
            _ => return Err(format!("bad smt flag {smt:?}")),
        };
        let num = |t: &str, what: &str| -> Result<u64, String> {
            t.parse().map_err(|_| format!("bad {what} {t:?}"))
        };
        Ok(SweepSpec {
            design: design.to_string(),
            kind,
            smt,
            bus_dgbps: bus.parse().map_err(|_| format!("bad bus field {bus:?}"))?,
            scale: SimScale {
                warmup: num(w, "warmup")?,
                budget: num(b, "budget")?,
                parsec_phase: num(p, "parsec phase")?,
                seed: num(s, "seed")?,
            },
        })
    }
}

/// What replaying a journal recovered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Cells recovered (also the size of the returned map).
    pub recovered: usize,
    /// Intact frames whose record did not belong to this sweep.
    pub rejected: usize,
    /// Byte offset the file was truncated to after a torn tail, if
    /// that happened.
    pub truncated_at: Option<u64>,
}

/// An open sweep journal, ready to append completed cells.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<std::fs::File>,
    lock_path: PathBuf,
    spec: SweepSpec,
}

impl Journal {
    /// Start a fresh journal at `path` (truncating any previous file)
    /// and durably write the sweep header.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] on I/O failure — a sweep asked to
    /// journal must not run unjournaled.
    pub fn create(path: &Path, spec: SweepSpec) -> Result<Journal, SimError> {
        let io = |e: std::io::Error| {
            SimError::InvalidConfig(format!("cannot create journal {}: {e}", path.display()))
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io)?;
            }
        }
        let lock_path = lock_path_for(path);
        let _lock = FileLock::acquire(lock_path.clone());
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)
            .map_err(io)?;
        file.write_all(format!("{}\n", spec.header_line()).as_bytes())
            .map_err(io)?;
        file.sync_data().map_err(io)?;
        Ok(Journal {
            file: Mutex::new(file),
            lock_path,
            spec,
        })
    }

    /// Open an existing journal: parse the header, replay every intact
    /// matching cell record, truncate a torn tail away, and position
    /// for appends. Returns the journal, its sweep spec, the recovered
    /// cells by thread count, and a replay report.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] when the file is missing or its
    /// header is not a compatible sweep-journal header;
    /// [`SimError::CacheCorrupt`] is never returned — corrupt records
    /// are handled by truncation, which is the journal's contract.
    #[allow(clippy::type_complexity)]
    pub fn open(
        path: &Path,
    ) -> Result<(Journal, SweepSpec, BTreeMap<usize, Cell>, ReplayReport), SimError> {
        let io = |e: std::io::Error| {
            SimError::InvalidConfig(format!("cannot open journal {}: {e}", path.display()))
        };
        let lock_path = lock_path_for(path);
        let _lock = FileLock::acquire(lock_path.clone());

        let mut text = String::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(io)?;

        let Some(first_nl) = text.find('\n') else {
            return Err(SimError::InvalidConfig(format!(
                "journal {} has no complete header line",
                path.display()
            )));
        };
        let spec = SweepSpec::parse_header(&text[..first_nl])
            .map_err(|why| SimError::InvalidConfig(format!("journal {}: {why}", path.display())))?;

        let mut report = ReplayReport::default();
        let mut done: BTreeMap<usize, Cell> = BTreeMap::new();
        let mut valid_end = (first_nl + 1) as u64;
        let mut pos = first_nl + 1;
        let mut tail_torn = false;
        while pos < text.len() {
            let Some(nl) = text[pos..].find('\n') else {
                tail_torn = true; // torn final append: no terminator
                break;
            };
            let line = &text[pos..pos + nl];
            match unframe(line).map(Record::decode) {
                Ok(Ok(Record::Cell { key, cell })) if key == spec.cell_key(key.n) => {
                    done.insert(key.n, cell);
                }
                Ok(_) => report.rejected += 1, // intact but foreign
                Err(_) => {
                    tail_torn = true;
                    break;
                }
            }
            pos += nl + 1;
            valid_end = pos as u64;
        }
        report.recovered = done.len();
        if tail_torn {
            report.truncated_at = Some(valid_end);
        }

        let file = std::fs::OpenOptions::new()
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(io)?;
        if tail_torn {
            file.set_len(valid_end).map_err(io)?;
        }
        let mut f = &file;
        f.seek(std::io::SeekFrom::End(0)).map_err(io)?;

        Ok((
            Journal {
                file: Mutex::new(file),
                lock_path,
                spec: spec.clone(),
            },
            spec,
            done,
            report,
        ))
    }

    /// The spec this journal was created (or opened) with.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Durably append one completed cell: a single framed `write_all`
    /// followed by `sync_data`, under the advisory file lock. After
    /// this returns, the cell survives SIGKILL and power loss short of
    /// device failure — the write-ahead property `resume` relies on.
    pub fn record(&self, n: usize, cell: &Cell) {
        let rec = Record::Cell {
            key: self.spec.cell_key(n),
            cell: cell.clone(),
        };
        let line = rec.frame();
        let _lock = FileLock::acquire(self.lock_path.clone());
        let mut f = lock_unpoisoned(&self.file);
        let _ = f.seek(std::io::SeekFrom::End(0));
        let _ = f.write_all(line.as_bytes());
        // The disk cache merely flushes (a lost record is re-simulated
        // from the other process's copy); the journal is the *only*
        // copy of hours of work, so it pays for the fsync.
        let _ = f.sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tlpsim-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("sweep.journal")
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            design: "4B".into(),
            kind: WorkloadKind::Heterogeneous,
            smt: true,
            bus_dgbps: 80,
            scale: SimScale::quick(),
        }
    }

    fn cell(n: usize) -> Cell {
        Cell {
            stp: (0..12).map(|i| n as f64 + i as f64 * 0.125).collect(),
            antt: (0..12).map(|i| 1.0 + i as f64 * 0.0625).collect(),
            power_w: (0..12).map(|i| 10.0 + i as f64).collect(),
        }
    }

    #[test]
    fn create_record_open_round_trip() {
        let p = tmp("rt");
        let j = Journal::create(&p, spec()).unwrap();
        j.record(4, &cell(4));
        j.record(8, &cell(8));
        drop(j);
        let (_j, s, done, report) = Journal::open(&p).unwrap();
        assert_eq!(s, spec());
        assert_eq!(report.recovered, 2);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.truncated_at, None);
        assert_eq!(done.len(), 2);
        assert_eq!(done[&4], cell(4));
        assert_eq!(done[&8], cell(8));
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let p = tmp("torn");
        let j = Journal::create(&p, spec()).unwrap();
        j.record(2, &cell(2));
        j.record(6, &cell(6));
        drop(j);
        // Tear the last record: strip its final 5 bytes (newline gone).
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 5]).unwrap();
        let (j, _s, done, report) = Journal::open(&p).unwrap();
        assert_eq!(done.len(), 1, "only the intact record survives");
        assert!(done.contains_key(&2));
        assert!(report.truncated_at.is_some());
        // The journal keeps working after the repair.
        j.record(6, &cell(6));
        drop(j);
        let (_j, _s, done, report) = Journal::open(&p).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(report.truncated_at, None, "repaired file is clean");
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn foreign_records_are_rejected_not_trusted() {
        let p = tmp("foreign");
        let j = Journal::create(&p, spec()).unwrap();
        j.record(4, &cell(4));
        drop(j);
        // Append an intact record for a *different* sweep (no SMT).
        let mut foreign_spec = spec();
        foreign_spec.smt = false;
        let foreign = Record::Cell {
            key: foreign_spec.cell_key(8),
            cell: cell(8),
        };
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(foreign.frame().as_bytes()).unwrap();
        drop(f);
        let (_j, _s, done, report) = Journal::open(&p).unwrap();
        assert_eq!(done.len(), 1, "foreign cell must not count as done");
        assert_eq!(report.rejected, 1);
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn wrong_header_is_a_loud_error() {
        let p = tmp("hdr");
        std::fs::write(&p, "TLPSIM-CACHE v2 3000 8000 12000 42\n").unwrap();
        assert!(matches!(Journal::open(&p), Err(SimError::InvalidConfig(_))));
        std::fs::write(&p, "TLPSIM-JOURNAL v99 4B X 1 80 1 2 3 4\n").unwrap();
        assert!(matches!(Journal::open(&p), Err(SimError::InvalidConfig(_))));
        assert!(matches!(
            Journal::open(&p.with_extension("missing")),
            Err(SimError::InvalidConfig(_))
        ));
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn header_round_trips_through_parse() {
        let s = spec();
        assert_eq!(SweepSpec::parse_header(&s.header_line()).unwrap(), s);
        let mut nosmt = s.clone();
        nosmt.smt = false;
        nosmt.kind = WorkloadKind::Homogeneous;
        assert_eq!(
            SweepSpec::parse_header(&nosmt.header_line()).unwrap(),
            nosmt
        );
    }
}
