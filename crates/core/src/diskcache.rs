//! The hardened on-disk result cache (DESIGN.md §7).
//!
//! Separate bench processes share simulation work through one
//! append-only text file (`TLPSIM_CACHE`). The seed implementation
//! trusted that file blindly; this module makes it safe to share:
//!
//! * **versioned header** — `TLPSIM-CACHE v2 <warmup> <budget>
//!   <parsec_phase> <seed>`; any mismatch (old version, different
//!   scale) truncates and starts fresh;
//! * **framed records** — every record line is
//!   `<fnv1a64-hex> <payload-len> <payload>`, so torn writes and bit
//!   rot are detected by length + checksum, never replayed;
//! * **corrupt-tail recovery** — replay stops at the first bad frame,
//!   the file is truncated back to the last good record, and the
//!   process continues (the lost cells are simply re-simulated);
//! * **strict payload decoding** — a record whose key fields do not
//!   parse is rejected (counted in the [`LoadReport`]) instead of being
//!   replayed under a bogus-but-valid key;
//! * **advisory locking** — a `<path>.lock` file serializes the
//!   open/replay/truncate sequence and individual appends across
//!   concurrent bench processes, so partial records never interleave.
//!
//! Round-trip guarantee: [`Record::encode`] output always decodes via
//! [`Record::decode`] to an equal value (property-tested in
//! `crates/core/tests/resilience.rs`).

use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use tlpsim_power::CoreKind;

use crate::ctx::{Cell, CellKey, ParsecKey, ParsecOutcome, WorkloadKind};
use crate::SimScale;

/// On-disk format version; bump on any layout change.
pub const CACHE_VERSION: u32 = 2;

/// FNV-1a 64-bit checksum (tiny, dependency-free, good enough to catch
/// torn writes and corruption in a line-oriented cache). The shared
/// implementation lives in `tlpsim-mem` alongside the [`FastHasher`]
/// used for hot-path hash maps; re-exported here so existing callers
/// and the on-disk format stay unchanged.
///
/// [`FastHasher`]: tlpsim_mem::FastHasher
pub use tlpsim_mem::fnv1a64;

/// One replayable cache record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Isolated-benchmark IPC profile.
    Iso {
        /// Benchmark index.
        bench: usize,
        /// Core kind the benchmark ran on.
        kind: CoreKind,
        /// Measured isolated IPC.
        ipc: f64,
    },
    /// A multi-program design-space cell.
    Cell {
        /// The cell's cache key.
        key: CellKey,
        /// Per-workload metrics.
        cell: Cell,
    },
    /// A PARSEC-like application run.
    Parsec {
        /// The run's cache key.
        key: ParsecKey,
        /// Cycle counts and active-thread histogram.
        out: ParsecOutcome,
    },
}

impl Record {
    /// Serialize to the payload text (without framing). `encode` output
    /// is guaranteed to [`decode`](Self::decode) back to an equal value.
    pub fn encode(&self) -> String {
        let nums = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        match self {
            Record::Iso { bench, kind, ipc } => {
                let k = match kind {
                    CoreKind::Big => "B",
                    CoreKind::Medium => "M",
                    CoreKind::Small => "S",
                };
                format!("ISO {bench} {k} {ipc}")
            }
            Record::Cell { key, cell } => format!(
                "CELL {} {} {} {} {} {} {} {}",
                key.design,
                key.n,
                if key.kind == WorkloadKind::Homogeneous {
                    "H"
                } else {
                    "X"
                },
                u8::from(key.smt),
                key.bus_dgbps,
                nums(&cell.stp),
                nums(&cell.antt),
                nums(&cell.power_w),
            ),
            Record::Parsec { key, out } => {
                let hist = out
                    .histogram
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                format!(
                    "PARSEC {} {} {} {} {} {} {} {}",
                    key.design,
                    key.app,
                    key.n,
                    u8::from(key.smt),
                    key.bus_dgbps,
                    out.roi_cycles,
                    out.total_cycles,
                    hist,
                )
            }
        }
    }

    /// Strictly parse a payload back into a record. Every field must
    /// parse; malformed keys are rejected rather than defaulted (the
    /// seed's `unwrap_or(0)` turned garbage into valid-looking keys).
    pub fn decode(payload: &str) -> Result<Record, String> {
        let mut it = payload.split_whitespace();
        match it.next() {
            Some("ISO") => {
                let (Some(b), Some(k), Some(v), None) =
                    (it.next(), it.next(), it.next(), it.next())
                else {
                    return Err("ISO needs exactly 3 fields".into());
                };
                let bench = b.parse().map_err(|_| format!("bad bench index {b:?}"))?;
                let kind = match k {
                    "B" => CoreKind::Big,
                    "M" => CoreKind::Medium,
                    "S" => CoreKind::Small,
                    _ => return Err(format!("bad core kind {k:?}")),
                };
                let ipc: f64 = v.parse().map_err(|_| format!("bad ipc {v:?}"))?;
                if !ipc.is_finite() || ipc <= 0.0 {
                    return Err(format!("non-positive ipc {ipc}"));
                }
                Ok(Record::Iso { bench, kind, ipc })
            }
            Some("CELL") => {
                let (Some(d), Some(n), Some(k), Some(smt), Some(bus)) =
                    (it.next(), it.next(), it.next(), it.next(), it.next())
                else {
                    return Err("CELL header truncated".into());
                };
                let n = n.parse().map_err(|_| format!("bad thread count {n:?}"))?;
                let kind = match k {
                    "H" => WorkloadKind::Homogeneous,
                    "X" => WorkloadKind::Heterogeneous,
                    _ => return Err(format!("bad workload kind {k:?}")),
                };
                let smt = match smt {
                    "0" => false,
                    "1" => true,
                    _ => return Err(format!("bad smt flag {smt:?}")),
                };
                let bus_dgbps = bus.parse().map_err(|_| format!("bad bus field {bus:?}"))?;
                let mut vals = Vec::with_capacity(36);
                for tok in it {
                    let v: f64 = tok.parse().map_err(|_| format!("bad value {tok:?}"))?;
                    vals.push(v);
                }
                if vals.len() != 36 {
                    return Err(format!("CELL carries {} values, want 36", vals.len()));
                }
                Ok(Record::Cell {
                    key: CellKey {
                        design: d.to_string(),
                        n,
                        kind,
                        smt,
                        bus_dgbps,
                    },
                    cell: Cell {
                        stp: vals[0..12].to_vec(),
                        antt: vals[12..24].to_vec(),
                        power_w: vals[24..36].to_vec(),
                    },
                })
            }
            Some("PARSEC") => {
                let (Some(d), Some(a), Some(n), Some(smt), Some(bus), Some(roi), Some(total)) = (
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                    it.next(),
                ) else {
                    return Err("PARSEC header truncated".into());
                };
                let app = a.parse().map_err(|_| format!("bad app index {a:?}"))?;
                let n = n.parse().map_err(|_| format!("bad thread count {n:?}"))?;
                let smt = match smt {
                    "0" => false,
                    "1" => true,
                    _ => return Err(format!("bad smt flag {smt:?}")),
                };
                let bus_dgbps = bus.parse().map_err(|_| format!("bad bus field {bus:?}"))?;
                let roi_cycles = roi.parse().map_err(|_| format!("bad roi cycles {roi:?}"))?;
                let total_cycles = total
                    .parse()
                    .map_err(|_| format!("bad total cycles {total:?}"))?;
                let mut histogram = Vec::new();
                for tok in it {
                    let v: u64 = tok.parse().map_err(|_| format!("bad histogram {tok:?}"))?;
                    histogram.push(v);
                }
                if histogram.is_empty() {
                    return Err("PARSEC histogram is empty".into());
                }
                Ok(Record::Parsec {
                    key: ParsecKey {
                        design: d.to_string(),
                        app,
                        n,
                        smt,
                        bus_dgbps,
                    },
                    out: ParsecOutcome {
                        roi_cycles,
                        total_cycles,
                        histogram,
                    },
                })
            }
            Some(tag) => Err(format!("unknown record tag {tag:?}")),
            None => Err("empty payload".into()),
        }
    }

    /// The full framed line (checksum, length, payload), newline
    /// included: the unit of torn-write detection.
    pub fn frame(&self) -> String {
        let payload = self.encode();
        format!(
            "{:016x} {} {payload}\n",
            fnv1a64(payload.as_bytes()),
            payload.len()
        )
    }
}

/// Parse one framed line (without trailing newline) back into its
/// payload, verifying length and checksum.
pub fn unframe(line: &str) -> Result<&str, String> {
    let (sum, rest) = line.split_once(' ').ok_or("missing checksum field")?;
    let (len, payload) = rest.split_once(' ').ok_or("missing length field")?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| format!("bad checksum {sum:?}"))?;
    let len: usize = len.parse().map_err(|_| format!("bad length {len:?}"))?;
    if payload.len() != len {
        return Err(format!(
            "length mismatch: frame says {len}, got {}",
            payload.len()
        ));
    }
    let actual = fnv1a64(payload.as_bytes());
    if actual != sum {
        return Err(format!(
            "checksum mismatch: frame says {sum:016x}, got {actual:016x}"
        ));
    }
    Ok(payload)
}

/// What happened while replaying an existing cache file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records replayed successfully.
    pub replayed: usize,
    /// Frames whose checksum passed but whose payload was semantically
    /// invalid (skipped, kept on disk).
    pub rejected: usize,
    /// Byte offset the file was truncated to after a corrupt or torn
    /// tail, if that happened.
    pub truncated_at: Option<u64>,
    /// The header did not match (missing, wrong version, or different
    /// scale) and the file was started fresh.
    pub fresh: bool,
}

/// RAII advisory lock: a `create_new`-created lock file next to the
/// cache. Lost locks (crashed holder) are stolen after
/// [`STALE_LOCK`]; if the lock cannot be acquired within
/// [`LOCK_TIMEOUT`] we proceed unlocked — it is advisory, and a wedged
/// peer must not deadlock every bench process on the host. Shared with
/// the sweep journal (`crate::journal`), which appends under the same
/// discipline.
pub(crate) struct FileLock {
    path: Option<PathBuf>,
}

/// Age after which a lock file is considered abandoned.
const STALE_LOCK: Duration = Duration::from_secs(30);
/// How long to wait for a peer before proceeding unlocked.
const LOCK_TIMEOUT: Duration = Duration::from_secs(2);

impl FileLock {
    pub(crate) fn acquire(path: PathBuf) -> FileLock {
        let deadline = std::time::Instant::now() + LOCK_TIMEOUT;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return FileLock { path: Some(path) };
                }
                Err(_) => {
                    // Steal locks abandoned by a crashed process.
                    if let Ok(meta) = std::fs::metadata(&path) {
                        let stale = meta
                            .modified()
                            .ok()
                            .and_then(|m| m.elapsed().ok())
                            .is_some_and(|age| age > STALE_LOCK);
                        if stale {
                            let _ = std::fs::remove_file(&path);
                            continue;
                        }
                    }
                    if std::time::Instant::now() >= deadline {
                        return FileLock { path: None };
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// The cross-process result cache file.
#[derive(Debug)]
pub struct DiskCache {
    file: Mutex<std::fs::File>,
    lock_path: PathBuf,
}

fn header_line(scale: SimScale) -> String {
    format!(
        "TLPSIM-CACHE v{CACHE_VERSION} {} {} {} {}",
        scale.warmup, scale.budget, scale.parsec_phase, scale.seed
    )
}

impl DiskCache {
    /// Open (or create) the cache at `path`, replaying every intact
    /// record. A corrupt or torn tail is truncated away; a header
    /// mismatch starts the file fresh. Returns the cache handle, the
    /// replayable records and a report of what was recovered.
    ///
    /// # Errors
    /// Only on unrecoverable I/O failure (e.g. the directory cannot be
    /// created or the file cannot be opened for writing).
    pub fn open(
        scale: SimScale,
        path: &Path,
    ) -> std::io::Result<(DiskCache, Vec<Record>, LoadReport)> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let lock_path = lock_path_for(path);
        let _lock = FileLock::acquire(lock_path.clone());

        let mut report = LoadReport::default();
        let mut records = Vec::new();
        let header = header_line(scale);

        let mut text = String::new();
        if let Ok(mut f) = std::fs::File::open(path) {
            // Non-UTF8 content is unrecoverable corruption: start fresh.
            if f.read_to_string(&mut text).is_err() {
                text.clear();
            }
        }

        // `valid_end` tracks the byte offset after the last good line.
        let mut valid_end: u64 = 0;
        let mut fresh = true;
        if let Some(first_nl) = text.find('\n') {
            if text[..first_nl] == header {
                fresh = false;
                valid_end = (first_nl + 1) as u64;
                let mut pos = first_nl + 1;
                let mut tail_corrupt = false;
                while pos < text.len() {
                    let Some(nl) = text[pos..].find('\n') else {
                        // Torn final write: no newline terminator.
                        tail_corrupt = true;
                        break;
                    };
                    let line = &text[pos..pos + nl];
                    match unframe(line) {
                        Ok(payload) => match Record::decode(payload) {
                            Ok(rec) => {
                                records.push(rec);
                                report.replayed += 1;
                            }
                            Err(_) => report.rejected += 1,
                        },
                        Err(_) => {
                            tail_corrupt = true;
                            break;
                        }
                    }
                    pos += nl + 1;
                    valid_end = pos as u64;
                }
                if tail_corrupt {
                    report.truncated_at = Some(valid_end);
                }
            }
        }
        report.fresh = fresh;

        // truncate(false): existing content is kept — fresh starts and
        // tail repairs truncate explicitly via set_len below.
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        if fresh {
            file.set_len(0)?;
            let mut f = &file;
            f.write_all(format!("{header}\n").as_bytes())?;
        } else if report.truncated_at.is_some() {
            file.set_len(valid_end)?;
        }
        // Position at the end for appends (O_APPEND semantics are
        // emulated by seeking under the advisory lock).
        let mut f = &file;
        f.seek(std::io::SeekFrom::End(0))?;

        Ok((
            DiskCache {
                file: Mutex::new(file),
                lock_path,
            },
            records,
            report,
        ))
    }

    /// Append one record as a framed line. Takes the advisory lock so
    /// concurrent bench processes never interleave partial records, and
    /// writes the whole line with a single `write_all`.
    pub fn append(&self, rec: &Record) {
        let line = rec.frame();
        let _lock = FileLock::acquire(self.lock_path.clone());
        let mut f = crate::executor::lock_unpoisoned(&self.file);
        // Re-seek: another process may have appended since our last write.
        let _ = f.seek(std::io::SeekFrom::End(0));
        let _ = f.write_all(line.as_bytes());
        let _ = f.flush();
    }
}

/// The advisory lock path for a cache file.
pub fn lock_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> Record {
        Record::Cell {
            key: CellKey {
                design: "4B".into(),
                n: 7,
                kind: WorkloadKind::Heterogeneous,
                smt: true,
                bus_dgbps: 160,
            },
            cell: Cell {
                stp: (0..12).map(|i| 0.5 + i as f64 * 0.25).collect(),
                antt: (0..12).map(|i| 1.0 + i as f64 * 0.125).collect(),
                power_w: (0..12).map(|i| 10.0 + i as f64).collect(),
            },
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frame_and_unframe_round_trip() {
        let rec = sample_cell();
        let line = rec.frame();
        let payload = unframe(line.trim_end_matches('\n')).expect("frame is valid");
        assert_eq!(Record::decode(payload).expect("decodes"), rec);
    }

    #[test]
    fn unframe_rejects_flipped_bits() {
        let line = sample_cell().frame();
        let line = line.trim_end_matches('\n');
        // Flip one character somewhere in the payload.
        let mut bad: Vec<u8> = line.bytes().collect();
        let last = bad.len() - 1;
        bad[last] = if bad[last] == b'0' { b'1' } else { b'0' };
        let bad = String::from_utf8(bad).unwrap();
        assert!(unframe(&bad).is_err());
    }

    #[test]
    fn decode_rejects_malformed_keys() {
        // The seed's unwrap_or(0)/unwrap_or(80) would have accepted these.
        let garbled_n = "CELL 4B not-a-number H 1 80 ".to_string() + &vec!["1.0"; 36].join(" ");
        assert!(Record::decode(&garbled_n).is_err());
        let garbled_bus = "CELL 4B 4 H 1 eighty ".to_string() + &vec!["1.0"; 36].join(" ");
        assert!(Record::decode(&garbled_bus).is_err());
        let bad_kind = "CELL 4B 4 Q 1 80 ".to_string() + &vec!["1.0"; 36].join(" ");
        assert!(Record::decode(&bad_kind).is_err());
        let short = "CELL 4B 4 H 1 80 1.0 2.0";
        assert!(Record::decode(short).is_err());
        assert!(Record::decode("PARSEC 4B x 4 1 80 5 9 1 2").is_err());
        assert!(Record::decode("ISO 3 Z 1.5").is_err());
        assert!(Record::decode("").is_err());
        assert!(Record::decode("BOGUS 1 2 3").is_err());
    }

    #[test]
    fn lock_is_exclusive_and_released() {
        let dir = std::env::temp_dir().join(format!("tlpsim-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("cache.txt");
        let lp = lock_path_for(&p);
        {
            let _l = FileLock::acquire(lp.clone());
            assert!(lp.exists());
        }
        assert!(!lp.exists(), "lock must be released on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
