//! Cooperative interrupt handling for long sweeps (DESIGN.md §12).
//!
//! A SIGINT/SIGTERM during a multi-hour campaign must not discard hours
//! of simulation: the handler only sets one process-global flag, and
//! the cooperative checkpoints observe it — the sweep executor stops
//! claiming new cells, in-flight cells checkpoint their engine state,
//! and the process exits with code 130 leaving the journal and
//! checkpoint files ready for `tlpsim resume`.
//!
//! The handler itself is the minimal async-signal-safe action (one
//! atomic store); everything observable happens on the normal control
//! path via [`requested`].

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Has an interrupt been requested (signal received, or [`request`]
/// called)?
pub fn requested() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Raise the interrupt flag from the normal control path — what the
/// signal handler does, callable directly (tests, embedding).
pub fn request() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clear the flag (tests; a fresh command after a handled interrupt).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Route SIGINT and SIGTERM to the interrupt flag. Idempotent; no-op
/// off Unix (the flag still works via [`request`]).
#[cfg(unix)]
pub fn install_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe thing we do: one atomic store.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
pub fn install_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
