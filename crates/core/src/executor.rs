//! The panic-isolated sweep executor (DESIGN.md §7).
//!
//! Experiment drivers fan thousands of independent cells out over a
//! host thread pool. One poisoned cell must cost exactly that cell:
//! every item runs under `catch_unwind`, a panicking item is retried
//! once (transient host conditions), and a second panic becomes an
//! `Err(SimError::WorkerPanicked)` entry in the result vector — the
//! other items' results survive, so a 12-workload figure degrades to
//! 11/12 instead of killing the bench binary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::SimError;

/// Render a panic payload for diagnostics.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` over `items` on a host thread pool, preserving order.
///
/// This is the sweep executor used by the experiment drivers: each
/// item is typically one design-space cell (internally ~12 simulated
/// chips). Failure containment:
///
/// * `f` returning `Err` surfaces that error at the item's position;
/// * `f` panicking is caught, retried once, and on a second panic
///   surfaced as [`SimError::WorkerPanicked`] — the worker thread and
///   every other item keep going.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, SimError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, SimError> + Sync,
{
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<R, SimError>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    let run_one = |i: usize| -> Result<R, SimError> {
        let mut last_panic = String::new();
        for _attempt in 0..2 {
            // AssertUnwindSafe: on panic the item's partial state is
            // discarded entirely — only its Err entry escapes.
            match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                Ok(r) => return r,
                Err(p) => last_panic = panic_detail(p.as_ref()),
            }
        }
        Err(SimError::WorkerPanicked {
            item: i,
            detail: last_panic,
        })
    };
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = run_one(i);
                *results[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(SimError::WorkerPanicked {
                        item: usize::MAX,
                        detail: "item was never processed".into(),
                    })
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| Ok(x * 2));
        let vals: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_panicking_item_degrades_not_kills() {
        let items: Vec<u64> = (0..12).collect();
        let out = par_map(&items, |&x| {
            if x == 7 {
                panic!("cell {x} is poisoned");
            }
            Ok(x)
        });
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                match r {
                    Err(SimError::WorkerPanicked { item, detail }) => {
                        assert_eq!(*item, 7);
                        assert!(detail.contains("poisoned"));
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64);
            }
        }
    }

    #[test]
    fn transient_panic_is_retried_once() {
        let fails = AtomicU32::new(0);
        let items = [0u32];
        let out = par_map(&items, |_| {
            if fails.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            Ok(99u32)
        });
        assert_eq!(out[0].as_ref().unwrap(), &99);
        assert_eq!(fails.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn err_results_pass_through_without_retry() {
        let calls = AtomicU32::new(0);
        let items = [0u32];
        let out = par_map(&items, |_| -> Result<(), SimError> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(SimError::InvalidConfig("nope".into()))
        });
        assert!(matches!(out[0], Err(SimError::InvalidConfig(_))));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "Err is not a panic; no retry"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u8> = Vec::new();
        let out = par_map(&items, |&x| Ok(x));
        assert!(out.is_empty());
    }
}
