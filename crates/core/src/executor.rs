//! The panic-isolated sweep executor (DESIGN.md §7, §10).
//!
//! Experiment drivers fan thousands of independent cells out over a
//! host thread pool. One poisoned cell must cost exactly that cell:
//! every item runs under `catch_unwind`, a panicking item is retried
//! once (transient host conditions), and a second panic becomes an
//! `Err(SimError::WorkerPanicked)` entry in the result vector — the
//! other items' results survive, so a 12-workload figure degrades to
//! 11/12 instead of killing the bench binary.
//!
//! Scheduling is greedy self-scheduling ("work stealing" from a single
//! shared queue): workers claim the next unclaimed item via one atomic
//! counter the moment they go idle. Nothing is pre-partitioned, so the
//! idle tail is bounded by the single longest item — a worker stuck on
//! a slow cell never strands cheap cells behind it. Results are
//! accumulated in per-worker buffers (no per-item locks on the claim
//! path) and merged positionally after the pool joins.
//!
//! The worker count is `TLPSIM_THREADS` if set (must be a positive
//! integer — anything else is a typed error, never a silent fallback),
//! else the host's available parallelism, clamped to the item count.
//! `TLPSIM_THREADS=1` bypasses the pool entirely: items run on the
//! calling thread in index order, which makes sweeps deterministic for
//! debugging and bisection.
//!
//! A cooperative interrupt ([`crate::interrupt`]) stops the claim loop:
//! no new items start, in-flight items run to their own checkpoint, and
//! every unstarted item's slot reports [`SimError::Interrupted`] so the
//! caller can tell "not done yet" from "failed".

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use tlpsim_trace::CounterSnapshot;

use crate::error::SimError;
use crate::interrupt;

/// Lock a mutex, recovering from poisoning: a worker that panicked
/// while holding a lock must not take the whole campaign down. Only
/// correct for data that is valid at every await-free lock release —
/// the pattern every mutex in this workspace follows (caches and files
/// only ever hold fully-constructed entries).
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a panic payload for diagnostics.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Number of workers a sweep over `n_items` items will use: the
/// `TLPSIM_THREADS` override if set, else the host's available
/// parallelism, clamped to the item count.
///
/// # Errors
/// [`SimError::InvalidConfig`] when `TLPSIM_THREADS` is set but is not
/// a positive integer. The seed silently fell back to host parallelism
/// on garbage, which turned `TLPSIM_THREADS=1` typos into
/// non-deterministic "deterministic" sweeps.
pub fn worker_count(n_items: usize) -> Result<usize, SimError> {
    let host = match std::env::var("TLPSIM_THREADS") {
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "TLPSIM_THREADS={v:?} is not a positive worker count"
                ))
            })?,
    };
    Ok(host.min(n_items.max(1)))
}

/// Run `f` over `items` on a host thread pool, preserving order.
///
/// This is the sweep executor used by the experiment drivers: each
/// item is typically one design-space cell (internally ~12 simulated
/// chips). Failure containment:
///
/// * `f` returning `Err` surfaces that error at the item's position;
/// * `f` panicking is caught, retried once, and on a second panic
///   surfaced as [`SimError::WorkerPanicked`] — the worker thread and
///   every other item keep going.
///
/// With one worker (item count, host parallelism or `TLPSIM_THREADS`
/// equal to 1) no threads are spawned: items run on the calling thread
/// in index order.
///
/// A malformed `TLPSIM_THREADS` makes every slot
/// [`SimError::InvalidConfig`] — nothing runs under a configuration the
/// user did not ask for. A cooperative interrupt mid-sweep leaves
/// unstarted items as [`SimError::Interrupted`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, SimError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, SimError> + Sync,
{
    par_map_with(items, f, |_, _| {})
}

/// [`par_map`] with a completion hook: `on_done(i, &result)` runs the
/// moment item `i` finishes (on the worker that ran it, concurrently
/// across workers), before the pool joins. This is how the sweep
/// journal gets its write-ahead property — a cell is durably recorded
/// when it completes, not when the whole sweep does, so a crash loses
/// at most the in-flight cells.
///
/// The hook is not called for items that never ran (interrupt,
/// worker-config error).
pub fn par_map_with<T, R, F, C>(items: &[T], f: F, on_done: C) -> Vec<Result<R, SimError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, SimError> + Sync,
    C: Fn(usize, &Result<R, SimError>) + Sync,
{
    let n = items.len();
    let run_one = |i: usize| -> Result<R, SimError> {
        let mut last_panic = String::new();
        for _attempt in 0..2 {
            // AssertUnwindSafe: on panic the item's partial state is
            // discarded entirely — only its Err entry escapes.
            match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                Ok(r) => return r,
                Err(p) => last_panic = panic_detail(p.as_ref()),
            }
        }
        Err(SimError::WorkerPanicked {
            item: i,
            detail: last_panic,
        })
    };
    let run_and_report = |i: usize| -> Result<R, SimError> {
        let r = run_one(i);
        on_done(i, &r);
        r
    };

    let n_workers = match worker_count(n) {
        Ok(w) => w,
        // Surface the configuration error at every position: the sweep
        // shape is preserved and nothing is silently recomputed under a
        // worker count the user did not configure.
        Err(e) => return (0..n).map(|_| Err(e.clone())).collect(),
    };
    if n_workers <= 1 {
        return (0..n)
            .map(|i| {
                if interrupt::requested() {
                    Err(SimError::Interrupted)
                } else {
                    run_and_report(i)
                }
            })
            .collect();
    }

    // Greedy self-scheduling: one shared claim counter, per-worker
    // result buffers. A worker claims an item the moment it goes idle,
    // so no item ever waits behind an unrelated slow one. An interrupt
    // parks the claim counter past the end: idle workers drain out and
    // busy ones finish (and checkpoint) their current item.
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, Result<R, SimError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        if interrupt::requested() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run_and_report(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let mut out: Vec<Option<Result<R, SimError>>> = (0..n).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        out[i] = Some(r);
    }
    let interrupted = interrupt::requested();
    out.into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                if interrupted {
                    // Never claimed because the sweep was interrupted:
                    // resumable, not failed.
                    Err(SimError::Interrupted)
                } else {
                    // Only reachable if a worker died outside
                    // catch_unwind (e.g. an abort-on-OOM race); the
                    // item's position still gets a typed error instead
                    // of poisoning the sweep.
                    Err(SimError::WorkerPanicked {
                        item: i,
                        detail: "item was never processed".into(),
                    })
                }
            })
        })
        .collect()
}

/// Fold the counter snapshots of a sweep's *successful* items into one
/// aggregate, counting how many items contributed.
///
/// This is the registry-backed replacement for ad-hoc per-field stat
/// summing: any layer that publishes into a [`CounterSnapshot`]
/// (pipeline, caches, DRAM, CPI stacks) aggregates across a sweep with
/// no per-subsystem plumbing. Integer counters sum; gauges
/// (`set_f64`) keep the last written value, so averages should be
/// published as sum + count pairs by the producer. Failed items
/// (`Err` cells) contribute nothing — the aggregate degrades exactly
/// like the sweep itself does.
pub fn aggregate_counters<'a, I>(results: I) -> (CounterSnapshot, usize)
where
    I: IntoIterator<Item = &'a Result<CounterSnapshot, SimError>>,
{
    let mut agg = CounterSnapshot::new();
    let mut n_ok = 0;
    for snap in results.into_iter().filter_map(|r| r.as_ref().ok()) {
        agg.merge(snap);
        n_ok += 1;
    }
    (agg, n_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Mutex;

    /// Serializes tests that mutate `TLPSIM_THREADS` (process-global).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    struct EnvGuard;
    impl EnvGuard {
        fn set(v: &str) -> Self {
            std::env::set_var("TLPSIM_THREADS", v);
            EnvGuard
        }
    }
    impl Drop for EnvGuard {
        fn drop(&mut self) {
            std::env::remove_var("TLPSIM_THREADS");
        }
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| Ok(x * 2));
        let vals: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_panicking_item_degrades_not_kills() {
        let items: Vec<u64> = (0..12).collect();
        let out = par_map(&items, |&x| {
            if x == 7 {
                panic!("cell {x} is poisoned");
            }
            Ok(x)
        });
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                match r {
                    Err(SimError::WorkerPanicked { item, detail }) => {
                        assert_eq!(*item, 7);
                        assert!(detail.contains("poisoned"));
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64);
            }
        }
    }

    #[test]
    fn transient_panic_is_retried_once() {
        let fails = AtomicU32::new(0);
        let items = [0u32];
        let out = par_map(&items, |_| {
            if fails.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            Ok(99u32)
        });
        assert_eq!(out[0].as_ref().unwrap(), &99);
        assert_eq!(fails.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn err_results_pass_through_without_retry() {
        let calls = AtomicU32::new(0);
        let items = [0u32];
        let out = par_map(&items, |_| -> Result<(), SimError> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(SimError::InvalidConfig("nope".into()))
        });
        assert!(matches!(out[0], Err(SimError::InvalidConfig(_))));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "Err is not a panic; no retry"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u8> = Vec::new();
        let out = par_map(&items, |&x| Ok(x));
        assert!(out.is_empty());
    }

    #[test]
    fn threads_env_overrides_worker_count() {
        let _l = lock_unpoisoned(&ENV_LOCK);
        let _g = EnvGuard::set("3");
        assert_eq!(worker_count(100).unwrap(), 3);
        assert_eq!(
            worker_count(2).unwrap(),
            2,
            "still clamped to the item count"
        );
        drop(_g);
        std::env::remove_var("TLPSIM_THREADS");
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        assert_eq!(
            worker_count(1_000_000).unwrap(),
            host,
            "unset uses the host"
        );
    }

    #[test]
    fn malformed_threads_env_is_a_typed_error_not_a_fallback() {
        let _l = lock_unpoisoned(&ENV_LOCK);
        for bad in ["not-a-number", "0", "-2", "1.5", ""] {
            let _g = EnvGuard::set(bad);
            match worker_count(8) {
                Err(SimError::InvalidConfig(msg)) => {
                    assert!(msg.contains(bad), "diagnostic must quote {bad:?}: {msg}")
                }
                other => panic!("TLPSIM_THREADS={bad:?}: expected InvalidConfig, got {other:?}"),
            }
            // The sweep surface: every slot reports the same error and
            // nothing is computed.
            let ran = AtomicU32::new(0);
            let out = par_map(&[1u8, 2, 3], |_| {
                ran.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
            assert_eq!(out.len(), 3);
            assert!(out
                .iter()
                .all(|r| matches!(r, Err(SimError::InvalidConfig(_)))));
            assert_eq!(ran.load(Ordering::SeqCst), 0, "nothing may run");
        }
    }

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let m = Mutex::new(41);
        // Poison it: a thread panics while holding the guard.
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let _g = m.lock().unwrap();
                panic!("poison the lock");
            });
            assert!(h.join().is_err(), "the poisoning thread must panic");
        });
        assert!(m.is_poisoned());
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42, "data survives the poison");
    }

    #[test]
    fn completion_hook_sees_every_processed_item() {
        let _l = lock_unpoisoned(&ENV_LOCK);
        let _g = EnvGuard::set("2");
        let seen = Mutex::new(Vec::new());
        let items: Vec<u32> = (0..9).collect();
        let out = par_map_with(
            &items,
            |&x| {
                if x == 4 {
                    Err(SimError::InvalidConfig("cell 4".into()))
                } else {
                    Ok(x * 10)
                }
            },
            |i, r| seen.lock().unwrap().push((i, r.is_ok())),
        );
        assert_eq!(out.len(), 9);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let want: Vec<(usize, bool)> = (0..9).map(|i| (i, i != 4)).collect();
        assert_eq!(seen, want, "hook fires once per item, Ok and Err alike");
    }

    // Interrupt-driven executor behavior is covered in
    // `tests/interrupt_sweep.rs`: the flag is process-global, so those
    // tests live in their own binary where raising it cannot race the
    // other par_map tests here.

    #[test]
    fn single_thread_is_serial_in_order_on_calling_thread() {
        let _l = lock_unpoisoned(&ENV_LOCK);
        let _g = EnvGuard::set("1");
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..32).collect();
        let out = par_map(&items, |&x| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "serial path must not spawn"
            );
            order.lock().unwrap().push(x);
            Ok(x)
        });
        assert!(out.iter().all(|r| r.is_ok()));
        assert_eq!(*order.lock().unwrap(), items, "index order, deterministic");
    }

    #[test]
    fn aggregate_counters_sums_successes_and_skips_failures() {
        let items: Vec<u64> = (0..4).collect();
        let out = par_map(&items, |&x| {
            if x == 2 {
                return Err(SimError::InvalidConfig("poisoned cell".into()));
            }
            let mut s = CounterSnapshot::new();
            s.add_u64("run.cycles", 10 * (x + 1));
            s.add_u64(&format!("cell{x}.only"), 1);
            Ok(s)
        });
        let (agg, n_ok) = aggregate_counters(&out);
        assert_eq!(n_ok, 3);
        assert_eq!(agg.get_u64("run.cycles"), Some(10 + 20 + 40));
        assert_eq!(agg.get_u64("cell2.only"), None, "failed cell excluded");
        assert_eq!(agg.get_u64("cell3.only"), Some(1));
    }

    #[test]
    fn idle_tail_is_bounded_by_greedy_scheduling() {
        // Two workers, one slow item and six fast ones. The slow item
        // refuses to finish until all fast items have completed — which
        // is only possible if the *other* worker drains every fast item
        // while this one is stuck. Static partitioning (half the items
        // pre-assigned to the stuck worker) would deadlock here; the
        // 10s ceiling turns that into a loud failure.
        let _l = lock_unpoisoned(&ENV_LOCK);
        let _g = EnvGuard::set("2");
        let fast_done = AtomicU32::new(0);
        let items: Vec<u32> = (0..7).collect();
        let out = par_map(&items, |&x| {
            if x == 0 {
                let t0 = std::time::Instant::now();
                while fast_done.load(Ordering::SeqCst) < 6 {
                    assert!(
                        t0.elapsed().as_secs() < 10,
                        "fast items starved behind the slow one"
                    );
                    std::thread::yield_now();
                }
            } else {
                fast_done.fetch_add(1, Ordering::SeqCst);
            }
            Ok(x)
        });
        assert!(out.iter().all(|r| r.is_ok()));
    }
}
