//! The typed error model of the resilience layer (DESIGN.md §7).
//!
//! Every failure on the simulation path — engine stalls, invalid cell
//! parameters, exhausted cycle budgets, corrupted cache records, and
//! panicking sweep workers — is a [`SimError`] value, so a 5,000-cell
//! campaign can log, skip and resume instead of aborting the process.

use tlpsim_uarch::{RunError, StallSnapshot};

/// Why a simulation (or one cell of a sweep) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The engine's watchdog saw no commit for its whole window; the
    /// snapshot records per-context ROB occupancy, pending memory
    /// operations and barrier/lock grant state at that moment.
    Stalled {
        /// Cycle at which the stall was declared.
        cycle: u64,
        /// Chip state at the moment of the stall.
        snapshot: Box<StallSnapshot>,
    },
    /// A cell was requested with parameters that cannot be simulated
    /// (zero threads, unknown design, a benchmark with zero IPC, ...).
    InvalidConfig(String),
    /// The engine exceeded its cycle budget before every thread
    /// finished.
    BudgetExhausted {
        /// The cycle limit that was hit.
        limit: u64,
    },
    /// A thread was registered but never pinned to a hardware context.
    UnassignedThread(usize),
    /// A disk-cache record failed its length/checksum/format checks.
    CacheCorrupt {
        /// Byte offset (or line number when offsets are unknown) of the
        /// bad record.
        offset: u64,
        /// What exactly was wrong.
        reason: String,
    },
    /// A sweep worker panicked while evaluating one item, twice (the
    /// executor retries each item once before giving up on it).
    WorkerPanicked {
        /// Index of the item in the sweep.
        item: usize,
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// The work was cut short by a cooperative interrupt (SIGINT or
    /// SIGTERM): the item was either never started or checkpointed
    /// mid-flight, and a `tlpsim resume` will pick it back up. Not a
    /// failure of the simulation itself.
    Interrupted,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The snapshot's own Display already leads with the cycle.
            SimError::Stalled { snapshot, .. } => write!(f, "simulation {snapshot}"),
            SimError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            SimError::BudgetExhausted { limit } => {
                write!(f, "cycle budget of {limit} exhausted before completion")
            }
            SimError::UnassignedThread(t) => write!(f, "thread {t} was never pinned"),
            SimError::CacheCorrupt { offset, reason } => {
                write!(f, "cache record at byte {offset} is corrupt: {reason}")
            }
            SimError::WorkerPanicked { item, detail } => {
                write!(f, "sweep worker panicked on item {item} (twice): {detail}")
            }
            SimError::Interrupted => {
                write!(f, "interrupted; completed work was journaled for resume")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<RunError> for SimError {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Stalled { cycle, snapshot } => SimError::Stalled { cycle, snapshot },
            RunError::CycleLimit { limit } => SimError::BudgetExhausted { limit },
            RunError::UnassignedThread(t) => SimError::UnassignedThread(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_error_conversion_preserves_kind() {
        assert_eq!(
            SimError::from(RunError::CycleLimit { limit: 7 }),
            SimError::BudgetExhausted { limit: 7 }
        );
        assert_eq!(
            SimError::from(RunError::UnassignedThread(3)),
            SimError::UnassignedThread(3)
        );
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::CacheCorrupt {
            offset: 120,
            reason: "bad checksum".into(),
        };
        let s = e.to_string();
        assert!(s.contains("120") && s.contains("bad checksum"));
    }
}
