//! # tlpsim-core — the multi-core design-space study
//!
//! This crate is the paper's contribution proper: it assembles the
//! substrates (cycle-level simulator, synthetic workloads, scheduler,
//! power model) into the design-space exploration of *"The Benefit of
//! SMT in the Multi-Core Era: Flexibility towards Degrees of
//! Thread-Level Parallelism"* (ASPLOS 2014):
//!
//! * [`configs`] — the nine power-equivalent multi-core designs of
//!   Figure 2 (4B, 3B2m, 3B5s, 2B4m, 2B10s, 1B6m, 1B15s, 8m, 20s) plus
//!   the Section 8 variants (larger caches, higher frequency, doubled
//!   memory bandwidth);
//! * [`metrics`] — system throughput (STP / weighted speedup), average
//!   normalized turnaround time (ANTT), and the aggregation rules the
//!   paper uses (harmonic mean across workloads for rate metrics,
//!   time-weighted means across thread-count distributions);
//! * [`ctx`] — the memoizing experiment context: isolated-benchmark
//!   profiling, multi-program cell simulation (a *cell* is one
//!   (design, thread count, workload class, SMT mode) point averaged
//!   over 12 workloads), PARSEC-like application runs, and a parallel
//!   sweep executor;
//! * [`experiments`] — one driver per figure of the paper, each
//!   returning the figure's series ready for printing;
//! * [`dynamic`] — the idealized dynamic (core-fusion) multi-core of
//!   Section 6, modeled as the per-thread-count oracle over the nine
//!   static designs.
//!
//! # Example
//!
//! ```no_run
//! use tlpsim_core::{ctx::Ctx, configs, SimScale};
//!
//! let ctx = Ctx::new(SimScale::quick());
//! let cell = ctx.mp_cell(&configs::by_name("4B").unwrap(), 4,
//!                        tlpsim_core::ctx::WorkloadKind::Homogeneous, true)
//!     .expect("cell simulates");
//! println!("4B @ 4 threads: STP = {:.2}", cell.mean_stp());
//! ```

pub mod configs;
pub mod ctx;
pub mod diskcache;
pub mod dynamic;
pub mod error;
pub mod executor;
pub mod experiments;
pub mod interrupt;
pub mod journal;
pub mod metrics;
pub mod snapshot;

pub use error::SimError;

/// Simulation scaling knobs (see DESIGN.md §6). The paper simulates
/// 750M-instruction SimPoints; we pre-warm caches functionally and
/// measure a scaled window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimScale {
    /// Timed warmup instructions per thread before the measured window.
    pub warmup: u64,
    /// Measured instructions per thread (multi-program runs).
    pub budget: u64,
    /// Per-phase parallel work of a PARSEC-like app instantiation.
    pub parsec_phase: u64,
    /// Base seed for all streams.
    pub seed: u64,
}

impl SimScale {
    /// Small scale for unit tests (seconds per figure).
    pub fn quick() -> Self {
        SimScale {
            warmup: 3_000,
            budget: 8_000,
            parsec_phase: 12_000,
            seed: 42,
        }
    }

    /// The scale used by the benchmark harness and EXPERIMENTS.md.
    pub fn standard() -> Self {
        SimScale {
            warmup: 8_000,
            budget: 24_000,
            parsec_phase: 40_000,
            seed: 42,
        }
    }
}

impl Default for SimScale {
    fn default() -> Self {
        Self::standard()
    }
}

/// The thread counts at which sweep experiments sample the 1..=24
/// range (dense enough for curve shape, cheap enough to simulate —
/// this host is single-core, so every simulated chip-cycle is paid
/// serially).
pub const SWEEP_COUNTS: [usize; 9] = [1, 2, 4, 6, 8, 12, 16, 20, 24];
