//! Timing probe for design-space cells (used to size the benches).
use std::time::Instant;
use tlpsim_core::configs::by_name;
use tlpsim_core::ctx::{Ctx, WorkloadKind};
use tlpsim_core::SimScale;

fn main() {
    let ctx = Ctx::new(SimScale::quick());
    for dn in ["4B", "20s"] {
        let d = by_name(dn).unwrap();
        for smt in [true, false] {
            for n in [8usize, 24] {
                let t0 = Instant::now();
                match ctx.mp_cell(&d, n, WorkloadKind::Heterogeneous, smt) {
                    Ok(c) => println!(
                        "{dn} smt={smt} n={n}: {:?} stp={:.2}",
                        t0.elapsed(),
                        c.mean_stp()
                    ),
                    Err(e) => println!("{dn} smt={smt} n={n}: FAILED ({e})"),
                }
            }
        }
    }
}
