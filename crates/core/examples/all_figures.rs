//! Regenerate every figure in one process (maximum cache reuse).
//! Output doubles as the data source for EXPERIMENTS.md.
use tlpsim_core::configs;
use tlpsim_core::ctx::{Ctx, WorkloadKind};
use tlpsim_core::experiments::*;
use tlpsim_core::SimScale;

fn main() {
    let ctx = Ctx::with_disk_cache(SimScale::quick(), "target/tlpsim-cache.txt");
    println!("### Table 1 / Figure 2");
    for r in configs::table1_rows() {
        println!("{r}");
    }
    for d in configs::nine_designs() {
        println!(
            "{:>6}: {}B {}m {}s ({} contexts)",
            d.name,
            d.big,
            d.medium,
            d.small,
            d.contexts()
        );
    }

    // Multi-program sweeps first (fig 3-10, 13-15 share cells).
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        println!(
            "\n### Figure 3 ({kind:?})\n{}",
            fig3_throughput(&ctx, kind).render()
        );
    }
    let tonto = 3usize;
    let libq = 10usize;
    println!(
        "\n### Figure 4\n{}\n{}",
        fig4_per_benchmark(&ctx, tonto).render(),
        fig4_per_benchmark(&ctx, libq).render()
    );
    println!("\n### Figure 5\n{}", fig5_antt(&ctx).render());
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        for policy in [SmtPolicy::None, SmtPolicy::HomogeneousOnly, SmtPolicy::All] {
            let b = fig6to8_uniform(&ctx, kind, policy);
            let (best, v) = b.best();
            println!(
                "\n### Figures 6-8 ({kind:?}, {policy:?}) best={best} ({v:.3})\n{}",
                b.render()
            );
        }
    }
    println!("\n### Figure 9");
    for (name, bars) in fig9_per_benchmark(&ctx) {
        let (best, _) = bars.best();
        println!(
            "{name:18} best={best:8} {}",
            bars.bars
                .iter()
                .map(|(l, v)| format!("{l}={v:.2} "))
                .collect::<String>()
        );
    }
    println!("\n### Figure 10");
    for (dist, smt, bars) in fig10_datacenter(&ctx) {
        let (best, v) = bars.best();
        println!("[{dist} smt={smt}] best={best} ({v:.3})\n{}", bars.render());
    }
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        println!(
            "\n### Figure 13 ({kind:?})\n{}",
            fig13_dynamic(&ctx, kind).render()
        );
    }
    println!("\n### Figure 14\n{}", fig14_power(&ctx).render());
    println!("\n### Figure 15");
    for p in fig15_power_perf(&ctx) {
        println!(
            "{:>8} perf={:.3} power={:.1}W energy_norm={:.3} edp_norm={:.3}",
            p.design, p.perf, p.power_w, p.energy_norm, p.edp_norm
        );
    }

    // PARSEC-based figures.
    println!("\n### Figure 1");
    for (name, b) in fig1_active_threads(&ctx) {
        println!(
            "{name:22} {}",
            b.iter()
                .map(|f| format!("{:>6.1}%", f * 100.0))
                .collect::<String>()
        );
    }
    let cols: Vec<String> = parsec_design_columns()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    for (roi, label) in [(true, "ROI"), (false, "whole")] {
        println!("\n### Figures 11/12 ({label})");
        println!("{:22} noSMT: {:?}  SMT: (same order)", "app", cols);
        for (name, vals) in fig11_12_parsec(&ctx, roi, 8.0) {
            println!(
                "{name:22} {}",
                vals.iter().map(|v| format!("{v:>7.3}")).collect::<String>()
            );
        }
    }
    println!("\n### Figure 16\n{}", fig16_alt_designs(&ctx).render());
    println!("\n### Figure 17");
    let (h, x, p16) = fig17_high_bandwidth(&ctx);
    println!("{}\n{}", h.render(), x.render());
    if let Some((name, vals)) = p16.last() {
        println!(
            "parsec avg 16GB/s {name}: {}",
            vals.iter().map(|v| format!("{v:>7.3}")).collect::<String>()
        );
    }
    println!("\nDONE");
}
