//! Shared plumbing for the per-figure benchmark harness.
//!
//! Every `benches/figNN_*.rs` target is a plain `fn main()`
//! (`harness = false`) that regenerates one table or figure of the
//! paper and prints the same rows/series the paper plots. Absolute
//! numbers differ from the paper's testbed (this is a scaled synthetic
//! reproduction; see DESIGN.md), but the shape — who wins, by roughly
//! what factor, where the crossovers fall — is the reproduction target
//! and is recorded in EXPERIMENTS.md.
//!
//! Scale is controlled by the `TLPSIM_SCALE` environment variable:
//! `standard` (large windows) or `quick` (the default and the
//! EXPERIMENTS.md scale).

use tlpsim_core::ctx::Ctx;
use tlpsim_core::SimScale;

/// Read the simulation scale from `TLPSIM_SCALE`: `standard` for the
/// larger measurement windows, anything else (default) for `quick`.
/// The default is quick because the full figure set is thousands of
/// simulated chips and reference hosts may be single-core.
pub fn scale_from_env() -> SimScale {
    match std::env::var("TLPSIM_SCALE").as_deref() {
        Ok("standard") => SimScale::standard(),
        _ => SimScale::quick(),
    }
}

/// Build the experiment context: scale from `TLPSIM_SCALE`, disk-backed
/// result cache at `TLPSIM_CACHE` (default `target/tlpsim-cache.txt`)
/// so the per-figure bench processes share simulation work.
pub fn ctx() -> Ctx {
    let path =
        std::env::var("TLPSIM_CACHE").unwrap_or_else(|_| "target/tlpsim-cache.txt".to_string());
    Ctx::with_disk_cache(scale_from_env(), path)
}

/// Print the standard harness header for figure `name`.
pub fn header(name: &str, what: &str) {
    println!("=== {name}: {what} ===");
    println!(
        "(scaled synthetic reproduction; shapes comparable to the paper, absolutes are not)\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // Only check the default path; the env-var path is exercised by
        // the bench targets themselves.
        if std::env::var("TLPSIM_SCALE").is_err() {
            assert_eq!(scale_from_env(), SimScale::quick());
        }
    }
}
