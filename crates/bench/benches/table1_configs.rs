//! Table 1 + Figure 2: the core configurations and the nine
//! power-equivalent designs.
use tlpsim_core::configs::{nine_designs, table1_rows};

fn main() {
    tlpsim_bench::header("Table 1", "big, medium and small core configurations");
    for row in table1_rows() {
        println!("{row}");
    }
    println!("\n=== Figure 2: the nine power-equivalent designs ===");
    println!(
        "{:>6} {:>4} {:>7} {:>6} {:>6} {:>9}",
        "name", "big", "medium", "small", "cores", "contexts"
    );
    for d in nine_designs() {
        println!(
            "{:>6} {:>4} {:>7} {:>6} {:>6} {:>9}",
            d.name,
            d.big,
            d.medium,
            d.small,
            d.cores(),
            d.contexts()
        );
    }
}
