//! Figure 5: average normalized turnaround time vs thread count
//! (homogeneous workloads). Lower is better.
use tlpsim_core::experiments::fig5_antt;

fn main() {
    tlpsim_bench::header("Figure 5", "ANTT vs thread count");
    let ctx = tlpsim_bench::ctx();
    println!("{}", fig5_antt(&ctx).render());
}
