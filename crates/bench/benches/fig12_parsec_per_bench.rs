//! Figure 12: per-benchmark normalized speedups for the PARSEC-like
//! applications (SMT enabled).
use tlpsim_core::experiments::{fig11_12_parsec, parsec_design_columns};

fn main() {
    tlpsim_bench::header("Figure 12", "PARSEC-like per-benchmark speedups");
    let ctx = tlpsim_bench::ctx();
    let cols: Vec<String> = parsec_design_columns()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    for (roi, label) in [(true, "ROI only"), (false, "whole program")] {
        println!("--- {label} (with SMT) ---");
        println!(
            "{:22} {}",
            "app",
            cols.iter().map(|c| format!("{c:>8}")).collect::<String>()
        );
        for (name, vals) in fig11_12_parsec(&ctx, roi, 8.0) {
            let smt_vals = &vals[cols.len()..];
            println!(
                "{name:22} {}",
                smt_vals
                    .iter()
                    .map(|v| format!("{v:>8.3}"))
                    .collect::<String>()
            );
        }
        println!();
    }
}
