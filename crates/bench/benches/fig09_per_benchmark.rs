//! Figure 9: per-benchmark uniform-distribution performance (SMT in
//! all designs, homogeneous workloads).
use tlpsim_core::experiments::fig9_per_benchmark;

fn main() {
    tlpsim_bench::header("Figure 9", "per-benchmark uniform-distribution STP");
    let ctx = tlpsim_bench::ctx();
    for (name, bars) in fig9_per_benchmark(&ctx) {
        let (best, _) = bars.best();
        println!("{}  -> best: {best}", bars.render());
        let _ = name;
    }
}
