//! Figure 06: average performance under a uniform thread-count
//! distribution, SMT policy: None.
use tlpsim_core::ctx::WorkloadKind;
use tlpsim_core::experiments::{fig6to8_uniform, SmtPolicy};

fn main() {
    tlpsim_bench::header("Figure 06", "uniform distribution, SMT policy None");
    let ctx = tlpsim_bench::ctx();
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        let bars = fig6to8_uniform(&ctx, kind, SmtPolicy::None);
        println!("{}", bars.render());
        let (best, v) = bars.best();
        println!("best: {best} ({v:.3})\n");
    }
}
