//! Criterion microbenchmarks of the simulator's building blocks:
//! cache lookups, DRAM/bus timing, instruction-stream generation, and
//! a whole-core cycle loop. These guard the simulator's own
//! performance (simulation throughput), not the paper's results.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tlpsim_mem::{AccessKind, Addr, Cache, CacheConfig, MemoryConfig, MemorySystem};
use tlpsim_uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
use tlpsim_workloads::{spec, InstrStream};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::new(32 * 1024, 4, 3));
        cache.access(tlpsim_mem::LineAddr(7), false);
        b.iter(|| black_box(cache.access(tlpsim_mem::LineAddr(7), false)));
    });
    c.bench_function("cache_access_stream", |b| {
        let mut cache = Cache::new(CacheConfig::new(32 * 1024, 4, 3));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.access(tlpsim_mem::LineAddr(i), false))
        });
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("memsys_l1_hit", |b| {
        let mut mem = MemorySystem::new(&MemoryConfig::big_core_chip(1));
        mem.access(0, AccessKind::Load, Addr(64), 0);
        let mut now = 1000;
        b.iter(|| {
            now += 1;
            black_box(mem.access(0, AccessKind::Load, Addr(64), now))
        });
    });
    c.bench_function("memsys_dram_stream", |b| {
        let mut mem = MemorySystem::new(&MemoryConfig::big_core_chip(1));
        let mut a = 0u64;
        let mut now = 0;
        b.iter(|| {
            a += 64;
            now += 30;
            black_box(mem.access(0, AccessKind::Load, Addr(0x1000_0000 + a * 97), now))
        });
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("instr_stream_next", |b| {
        let mut s = InstrStream::new(&spec::gcc_like(), 0, 1);
        b.iter(|| black_box(s.next()));
    });
}

fn bench_core_cycle(c: &mut Criterion) {
    c.bench_function("big_core_10k_instrs", |b| {
        b.iter(|| {
            let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
            let mut sim = MultiCore::new(&chip);
            let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                InstrStream::new(&spec::hmmer_like(), 0, 1),
                0,
                10_000,
            ));
            sim.pin(t, 0, 0);
            sim.prewarm();
            black_box(sim.run().expect("runs"))
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_memory_system,
    bench_generator,
    bench_core_cycle
);
criterion_main!(benches);
