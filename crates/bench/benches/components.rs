//! Microbenchmarks of the simulator's building blocks: cache lookups,
//! DRAM/bus timing, instruction-stream generation, and a whole-core
//! cycle loop. These guard the simulator's own performance (simulation
//! throughput), not the paper's results.
//!
//! This is a plain `harness = false` benchmark (no external harness
//! crates, so the workspace builds offline): each case is timed with
//! `std::time::Instant` over enough iterations to smooth noise, and
//! reported as ns/op. Run with `cargo bench -p tlpsim-bench`.

use std::hint::black_box;
use std::time::Instant;

use tlpsim_core::executor::par_map;
use tlpsim_core::snapshot::write_atomic;
use tlpsim_mem::{AccessKind, Addr, Cache, CacheConfig, MemoryConfig, MemorySystem};
use tlpsim_uarch::{
    ChipConfig, CoreConfig, MultiCore, RunStatus, ThreadProgram, TraceSink, Tracer,
};
use tlpsim_workloads::{spec, InstrStream};

/// Time `iters` runs of `f` (after a small warmup) and print ns/op.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let dt = t0.elapsed();
    println!(
        "{name:28} {:>12.1} ns/op   ({iters} iters, {:.3} s)",
        dt.as_nanos() as f64 / iters as f64,
        dt.as_secs_f64()
    );
}

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 4, 3));
    cache.access(tlpsim_mem::LineAddr(7), false);
    bench("cache_access_hit", 2_000_000, || {
        black_box(cache.access(tlpsim_mem::LineAddr(7), false));
    });
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 4, 3));
    let mut i = 0u64;
    bench("cache_access_stream", 2_000_000, || {
        i += 1;
        black_box(cache.access(tlpsim_mem::LineAddr(i), false));
    });
}

fn bench_memory_system() {
    let mut mem = MemorySystem::new(&MemoryConfig::big_core_chip(1));
    mem.access(0, AccessKind::Load, Addr(64), 0);
    let mut now = 1000;
    bench("memsys_l1_hit", 1_000_000, || {
        now += 1;
        black_box(mem.access(0, AccessKind::Load, Addr(64), now));
    });
    let mut mem = MemorySystem::new(&MemoryConfig::big_core_chip(1));
    let mut a = 0u64;
    let mut now = 0;
    bench("memsys_dram_stream", 500_000, || {
        a += 64;
        now += 30;
        black_box(mem.access(0, AccessKind::Load, Addr(0x1000_0000 + a * 97), now));
    });
}

fn bench_generator() {
    let mut s = InstrStream::new(&spec::gcc_like(), 0, 1);
    bench("instr_stream_next", 2_000_000, || {
        black_box(s.next());
    });
}

fn bench_core_cycle() {
    bench("big_core_10k_instrs", 50, || {
        let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
        let mut sim = MultiCore::new(&chip);
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&spec::hmmer_like(), 0, 1),
            0,
            10_000,
        ));
        sim.pin(t, 0, 0);
        sim.prewarm();
        black_box(sim.run().expect("runs"));
    });
}

/// One cell of the end-to-end engine sweep: the same chip + workload
/// run dense and fast-forwarded, with throughput and skip statistics.
struct SweepCell {
    name: &'static str,
    wall_dense_s: f64,
    wall_skip_s: f64,
    cycles: u64,
    skipped: u64,
    windows: u64,
    instrs: u64,
}

impl SweepCell {
    fn speedup(&self) -> f64 {
        self.wall_dense_s / self.wall_skip_s
    }
    fn skip_ratio(&self) -> f64 {
        self.skipped as f64 / self.cycles as f64
    }
    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"wall_dense_s\": {:.6}, \"wall_skip_s\": {:.6}, \
             \"sim_cycles\": {}, \"instrs\": {}, \"skip_ratio\": {:.4}, \
             \"skip_windows\": {}, \
             \"mcycles_per_s_dense\": {:.2}, \"mcycles_per_s_skip\": {:.2}, \
             \"speedup\": {:.2}}}",
            self.name,
            self.wall_dense_s,
            self.wall_skip_s,
            self.cycles,
            self.instrs,
            self.skip_ratio(),
            self.windows,
            self.cycles as f64 / self.wall_dense_s / 1e6,
            self.cycles as f64 / self.wall_skip_s / 1e6,
            self.speedup(),
        )
    }
}

/// LLC-thrashing workload on the 4-big-core SMT chip: eight
/// memory-bound threads (mcf/libquantum mixes) streaming through far
/// more data than the LLC holds. This is the configuration the PR's
/// speedup target is measured on.
fn llc_thrash_sim(budget: u64) -> MultiCore {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::new(&chip);
    for i in 0..8u64 {
        let p = if i % 2 == 0 {
            spec::mcf_like()
        } else {
            spec::libquantum_like()
        };
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&p, i, 31),
            1_000,
            budget,
        ));
        sim.pin(t, (i % 4) as usize, (i / 4) as usize);
    }
    sim.prewarm();
    sim
}

/// Compute-bound counterpart: high-IPC threads that rarely quiesce, so
/// the skip ratio (and speedup) should be modest. Guards against the
/// detector claiming skips on busy chips.
fn compute_bound_sim(budget: u64) -> MultiCore {
    compute_bound_sim_with(budget, tlpsim_uarch::NopSink)
}

/// Same cell with an arbitrary trace sink attached (the tracing
/// overhead A/B runs it once per sink type).
fn compute_bound_sim_with<S: TraceSink>(budget: u64, sink: S) -> MultiCore<S> {
    let chip = ChipConfig::homogeneous(4, CoreConfig::big(), 2.66);
    let mut sim = MultiCore::with_sink(&chip, sink);
    for i in 0..8u64 {
        let p = if i % 2 == 0 {
            spec::hmmer_like()
        } else {
            spec::gamess_like()
        };
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&p, i, 31),
            1_000,
            budget,
        ));
        sim.pin(t, (i % 4) as usize, (i / 4) as usize);
    }
    sim.prewarm();
    sim
}

/// Run one sweep cell: dense then fast-forwarded, asserting the two
/// engines agree bit-for-bit before reporting any numbers. Each engine
/// runs `reps` times and reports its median wall time (single-CPU
/// containers jitter badly; the simulated results are deterministic,
/// asserted identical across repetitions).
fn sweep_cell(name: &'static str, reps: usize, mk: impl Fn() -> MultiCore) -> SweepCell {
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };

    let mut dense_walls = Vec::new();
    let mut rd = None;
    let mut fast_walls = Vec::new();
    let mut rf = None;
    let mut fast = mk(); // kept for skip statistics
    for _ in 0..reps.max(1) {
        let mut dense = mk();
        dense.set_cycle_skipping(false);
        let t0 = Instant::now();
        let r = dense.run().expect("dense run completes");
        dense_walls.push(t0.elapsed().as_secs_f64());
        match &rd {
            Some(prev) => assert_eq!(prev, &r, "dense run not deterministic"),
            None => rd = Some(r),
        }

        fast = mk();
        fast.set_cycle_skipping(true);
        let t0 = Instant::now();
        let r = fast.run().expect("fast-forward run completes");
        fast_walls.push(t0.elapsed().as_secs_f64());
        match &rf {
            Some(prev) => assert_eq!(prev, &r, "fast run not deterministic"),
            None => rf = Some(r),
        }
    }
    let (rd, rf) = (rd.unwrap(), rf.unwrap());
    let wall_dense_s = median(dense_walls);
    let wall_skip_s = median(fast_walls);

    assert_eq!(rd, rf, "engines diverged on sweep cell {name}");
    let instrs: u64 = rd.threads.iter().map(|t| t.committed).sum();
    let cell = SweepCell {
        name,
        wall_dense_s,
        wall_skip_s,
        cycles: rd.cycles,
        skipped: fast.skipped_cycles(),
        windows: fast.skip_windows(),
        instrs,
    };
    println!(
        "engine_sweep/{name:16} {:>8.3} s dense, {:>8.3} s skip  \
         ({:.0}% skipped over {} windows, {:.2}x)",
        cell.wall_dense_s,
        cell.wall_skip_s,
        cell.skip_ratio() * 100.0,
        cell.windows,
        cell.speedup(),
    );
    cell
}

/// End-to-end engine sweep (DESIGN.md §9): dense vs fast-forward wall
/// time across an LLC-thrashing and a compute-bound cell. Returns the
/// `"cells"` JSON fragment for the combined report.
///
/// With `TLPSIM_BENCH_SMOKE=1` (the CI smoke job) the budgets shrink
/// and the run fails if the LLC-thrashing speedup drops below a
/// generous floor — a relative, machine-independent regression check.
fn bench_engine_sweep(smoke: bool) -> String {
    let budget: u64 = if smoke { 20_000 } else { 120_000 };
    let reps = if smoke { 3 } else { 5 };
    let cells = [
        sweep_cell("llc_thrash", reps, || llc_thrash_sim(budget)),
        sweep_cell("compute_bound", reps, || compute_bound_sim(budget)),
    ];

    let thrash = &cells[0];
    if smoke {
        // Generous floor: the full-size run clears 3x with margin; the
        // smoke budget still quiesces constantly, so < 1.5x means the
        // fast-forward path has effectively stopped engaging.
        assert!(
            thrash.speedup() >= 1.5,
            "LLC-thrash speedup regressed to {:.2}x (floor 1.5x)",
            thrash.speedup()
        );
        assert!(
            thrash.skip_ratio() > 0.3,
            "LLC-thrash skip ratio collapsed to {:.2}",
            thrash.skip_ratio()
        );
    }

    let body = cells
        .iter()
        .map(SweepCell::json)
        .collect::<Vec<_>>()
        .join(",\n");
    format!("  \"budget_instrs_per_thread\": {budget},\n  \"cells\": [\n{body}\n  ]")
}

/// Dense-path throughput (DESIGN.md §10): the compute-bound cell with
/// cycle skipping disabled, reported as simulated Mcycles per wall
/// second. This is the number the PR 3 dense-path work is measured on.
/// Min-of-reps: on shared/1-CPU hosts the minimum is the only
/// defensible statistic (all noise is additive).
fn bench_dense_throughput(smoke: bool) -> String {
    let budget: u64 = if smoke { 20_000 } else { 120_000 };
    let reps = if smoke { 3 } else { 7 };
    let mut wall = f64::MAX;
    let mut cycles = 0;
    let mut instrs = 0;
    for _ in 0..reps {
        let mut sim = compute_bound_sim(budget);
        sim.set_cycle_skipping(false);
        let t0 = Instant::now();
        let r = sim.run().expect("dense run completes");
        wall = wall.min(t0.elapsed().as_secs_f64());
        cycles = r.cycles;
        instrs = r.threads.iter().map(|t| t.committed).sum();
    }
    let mcps = cycles as f64 / wall / 1e6;
    println!(
        "dense_throughput/compute_bound {cycles} cycles, {instrs} instrs, \
         {wall:.3} s min-of-{reps} => {mcps:.3} Mcycles/s"
    );
    if smoke {
        // Catastrophe floor only: absolute throughput is machine
        // dependent, so this guards against order-of-magnitude
        // regressions (e.g. an accidental O(n^2) in the issue scan),
        // not percent-level drift.
        assert!(
            mcps >= 0.02,
            "dense throughput collapsed to {mcps:.4} Mcycles/s (floor 0.02)"
        );
    }
    format!(
        "  \"dense_throughput\": {{\"name\": \"compute_bound_dense\", \"sim_cycles\": {cycles}, \
         \"instrs\": {instrs}, \"wall_dense_s\": {wall:.6}, \"mcycles_per_s_dense\": {mcps:.3}, \
         \"reps\": {reps}}}"
    )
}

/// Simulated-cycle throughput of the dense compute-bound cell on the
/// PR 3 reference host, from the committed `BENCH_pr3.json`
/// (`dense_throughput.mcycles_per_s_dense`). The tracing-disabled
/// path must stay within 5% of it — the monomorphized `NopSink`
/// build's zero-cost claim, enforced where the hardware matches.
const PR3_DENSE_MCPS: f64 = 0.329;

/// Tracing-overhead A/B (DESIGN.md §11): the dense compute-bound cell
/// run with the default `NopSink` (tracing compiled out) and again
/// with the full `Tracer` (CPI stacks + event ring). Reports both
/// throughputs and their ratio; min-of-reps for the same reason as
/// [`bench_dense_throughput`].
///
/// The disabled path is additionally held to the PR 3 dense-path
/// figure in full (non-smoke) runs, where the host is the reference
/// host; smoke runs on arbitrary CI hardware keep the catastrophe
/// floor only.
fn bench_trace_overhead(smoke: bool) -> String {
    let budget: u64 = if smoke { 20_000 } else { 120_000 };
    let reps = if smoke { 3 } else { 7 };

    let mut wall_off = f64::MAX;
    let mut cycles_off = 0u64;
    for _ in 0..reps {
        let mut sim = compute_bound_sim(budget);
        sim.set_cycle_skipping(false);
        let t0 = Instant::now();
        let r = sim.run().expect("untraced dense run completes");
        wall_off = wall_off.min(t0.elapsed().as_secs_f64());
        cycles_off = r.cycles;
    }

    let mut wall_on = f64::MAX;
    let mut cycles_on = 0u64;
    let mut attributed = 0u64;
    for _ in 0..reps {
        let mut sim = compute_bound_sim_with(budget, Tracer::default());
        sim.set_cycle_skipping(false);
        let t0 = Instant::now();
        let r = sim.run().expect("traced dense run completes");
        wall_on = wall_on.min(t0.elapsed().as_secs_f64());
        cycles_on = r.cycles;
        attributed = sim.sink().stacks.chip_totals().iter().sum();
    }

    assert_eq!(
        cycles_off, cycles_on,
        "attaching a sink changed the simulated cycle count"
    );
    assert!(attributed > 0, "traced run attributed no cycles");

    let mcps_off = cycles_off as f64 / wall_off / 1e6;
    let mcps_on = cycles_on as f64 / wall_on / 1e6;
    let overhead = wall_on / wall_off;
    println!(
        "trace_overhead/compute_bound {mcps_off:.3} Mcycles/s disabled, \
         {mcps_on:.3} Mcycles/s enabled ({overhead:.2}x wall, min-of-{reps})"
    );
    if smoke {
        assert!(
            mcps_off >= 0.02,
            "tracing-disabled throughput collapsed to {mcps_off:.4} Mcycles/s (floor 0.02)"
        );
    } else {
        assert!(
            mcps_off >= 0.95 * PR3_DENSE_MCPS,
            "tracing-disabled dense throughput {mcps_off:.3} fell below 95% of the \
             PR 3 figure {PR3_DENSE_MCPS:.3} — the NopSink path is no longer free"
        );
    }
    format!(
        "  \"trace_overhead\": {{\"budget_instrs_per_thread\": {budget}, \"reps\": {reps}, \
         \"sim_cycles\": {cycles_off}, \"wall_disabled_s\": {wall_off:.6}, \
         \"wall_enabled_s\": {wall_on:.6}, \"mcycles_per_s_disabled\": {mcps_off:.3}, \
         \"mcycles_per_s_enabled\": {mcps_on:.3}, \"overhead_ratio\": {overhead:.3}, \
         \"pr3_dense_mcps\": {PR3_DENSE_MCPS}}}"
    )
}

/// Simulated-cycle throughput of the dense compute-bound cell on the
/// PR 4 reference host, from the committed `BENCH_pr4.json`
/// (`dense_throughput.mcycles_per_s_dense`). The checkpoint-off path
/// must stay within 5% of it: crash safety that taxes every sweep
/// whether or not checkpointing is on would not ship.
const PR4_DENSE_MCPS: f64 = 0.324;

/// Checkpoint-overhead A/B (DESIGN.md §12): the dense compute-bound
/// cell run plain (`run()`, exactly what a sweep without
/// `TLPSIM_CKPT_CYCLES` executes) and again sliced at a checkpoint
/// cadence with a full atomic state write at every boundary. Both runs
/// must produce bit-identical results — slicing and serializing are
/// invisible to the simulation — and the plain path is held to the
/// PR 4 dense-throughput figure in full runs (min-of-reps, reference
/// host only; smoke runs keep the catastrophe floor).
fn bench_checkpoint_overhead(smoke: bool) -> String {
    let budget: u64 = if smoke { 20_000 } else { 120_000 };
    let reps = if smoke { 3 } else { 7 };
    let every: u64 = 25_000;

    let mut wall_off = f64::MAX;
    let mut r_off = None;
    for _ in 0..reps {
        let mut sim = compute_bound_sim(budget);
        sim.set_cycle_skipping(false);
        let t0 = Instant::now();
        let r = sim.run().expect("plain dense run completes");
        wall_off = wall_off.min(t0.elapsed().as_secs_f64());
        r_off = Some(r);
    }

    let dir = std::env::temp_dir().join(format!("tlpsim-bench-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint scratch dir");
    let path = dir.join("cell.ckpt");
    let mut wall_on = f64::MAX;
    let mut r_on = None;
    let mut checkpoints = 0u64;
    for _ in 0..reps {
        let mut sim = compute_bound_sim(budget);
        sim.set_cycle_skipping(false);
        checkpoints = 0;
        let t0 = Instant::now();
        let r = loop {
            let stop = sim.now().saturating_add(every);
            match sim.run_slice(1 << 40, stop) {
                Ok(RunStatus::Done(r)) => break r,
                Ok(RunStatus::Paused) => {
                    write_atomic(&path, &sim.save_state()).expect("checkpoint write");
                    checkpoints += 1;
                }
                Err(e) => panic!("checkpointed run failed: {e:?}"),
            }
        };
        wall_on = wall_on.min(t0.elapsed().as_secs_f64());
        r_on = Some(r);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let (r_off, r_on) = (r_off.unwrap(), r_on.unwrap());
    assert_eq!(
        r_off, r_on,
        "checkpoint slicing changed the simulated results"
    );
    let cycles = r_off.cycles;
    let mcps_off = cycles as f64 / wall_off / 1e6;
    let mcps_on = cycles as f64 / wall_on / 1e6;
    let overhead = wall_on / wall_off;
    println!(
        "checkpoint_overhead/compute_bound {mcps_off:.3} Mcycles/s off, \
         {mcps_on:.3} Mcycles/s on ({checkpoints} checkpoints every {every} cycles, \
         {overhead:.2}x wall, min-of-{reps})"
    );
    if smoke {
        assert!(
            mcps_off >= 0.02,
            "checkpoint-off throughput collapsed to {mcps_off:.4} Mcycles/s (floor 0.02)"
        );
    } else {
        assert!(
            mcps_off >= 0.95 * PR4_DENSE_MCPS,
            "checkpoint-off dense throughput {mcps_off:.3} fell below 95% of the \
             PR 4 figure {PR4_DENSE_MCPS:.3} — crash safety is taxing plain sweeps"
        );
    }
    format!(
        "  \"checkpoint_overhead\": {{\"budget_instrs_per_thread\": {budget}, \"reps\": {reps}, \
         \"sim_cycles\": {cycles}, \"ckpt_every_cycles\": {every}, \"checkpoints\": {checkpoints}, \
         \"wall_off_s\": {wall_off:.6}, \"wall_on_s\": {wall_on:.6}, \
         \"mcycles_per_s_off\": {mcps_off:.3}, \"mcycles_per_s_on\": {mcps_on:.3}, \
         \"overhead_ratio\": {overhead:.3}, \"pr4_dense_mcps\": {PR4_DENSE_MCPS}}}"
    )
}

/// Work-stealing sweep executor A/B (DESIGN.md §10): a 9-cell config
/// sweep (3 chip widths x 3 workload pairings) run through `par_map`
/// with `TLPSIM_THREADS=8` and again with `TLPSIM_THREADS=1`, asserting
/// identical results and reporting the wall-clock ratio. On hosts with
/// fewer than 8 CPUs the ratio reflects the host, not the executor —
/// `host_parallelism` is recorded so readers can judge.
fn bench_sweep_executor(smoke: bool) -> String {
    let budget: u64 = if smoke { 5_000 } else { 40_000 };
    struct Cfg {
        cores: usize,
        specs: [fn() -> tlpsim_workloads::BenchmarkProfile; 2],
    }
    let pairings: [[fn() -> tlpsim_workloads::BenchmarkProfile; 2]; 3] = [
        [spec::hmmer_like, spec::gamess_like],
        [spec::mcf_like, spec::libquantum_like],
        [spec::gcc_like, spec::bzip2_like],
    ];
    let mut cfgs = Vec::new();
    for cores in [1usize, 2, 4] {
        for specs in pairings {
            cfgs.push(Cfg { cores, specs });
        }
    }
    let run_sweep = |threads: &str| -> (f64, Vec<u64>) {
        std::env::set_var("TLPSIM_THREADS", threads);
        let t0 = Instant::now();
        let out = par_map(&cfgs, |cfg| {
            let chip = ChipConfig::homogeneous(cfg.cores, CoreConfig::big(), 2.66);
            let mut sim = MultiCore::new(&chip);
            for i in 0..(cfg.cores as u64 * 2) {
                let p = (cfg.specs[(i % 2) as usize])();
                let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
                    InstrStream::new(&p, i, 31),
                    1_000,
                    budget,
                ));
                sim.pin(t, (i as usize) % cfg.cores, (i as usize) / cfg.cores);
            }
            sim.prewarm();
            sim.run().map_err(tlpsim_core::SimError::from)
        });
        let wall = t0.elapsed().as_secs_f64();
        std::env::remove_var("TLPSIM_THREADS");
        let cycles = out
            .into_iter()
            .map(|r| r.expect("sweep cell completes").cycles)
            .collect();
        (wall, cycles)
    };
    let (wall_8t, res_8t) = run_sweep("8");
    let (wall_1t, res_1t) = run_sweep("1");
    assert_eq!(res_8t, res_1t, "executor changed simulation results");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = wall_1t / wall_8t;
    println!(
        "sweep_executor/9_configs {wall_8t:.3} s @8 threads, {wall_1t:.3} s serial \
         ({speedup:.2}x, host parallelism {host})"
    );
    if smoke && host >= 8 {
        // Only meaningful where 8 workers can actually run in parallel.
        assert!(
            speedup >= 1.5,
            "sweep executor speedup {speedup:.2}x below 1.5x floor on {host}-CPU host"
        );
    }
    format!(
        "  \"sweep_executor\": {{\"configs\": {}, \"workers_requested\": 8, \
         \"host_parallelism\": {host}, \"wall_8t_s\": {wall_8t:.6}, \"wall_1t_s\": {wall_1t:.6}, \
         \"speedup\": {speedup:.2}, \"budget_instrs_per_thread\": {budget}}}",
        cfgs.len()
    )
}

fn main() {
    let smoke = std::env::var("TLPSIM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    bench_cache();
    bench_memory_system();
    bench_generator();
    bench_core_cycle();
    let sweep_frag = bench_engine_sweep(smoke);
    let dense_frag = bench_dense_throughput(smoke);
    let exec_frag = bench_sweep_executor(smoke);
    let trace_frag = bench_trace_overhead(smoke);
    let ckpt_frag = bench_checkpoint_overhead(smoke);

    let json = format!(
        "{{\n  \"bench\": \"engine_sweep\",\n  \"chip\": \"4x big SMT-2 @ 2.66GHz\",\n  \
         \"threads\": 8,\n  \"smoke\": {smoke},\n{sweep_frag},\n{dense_frag},\n{exec_frag},\n\
         {trace_frag},\n{ckpt_frag}\n}}\n"
    );
    // Default to the workspace root (cargo runs benches with the
    // package directory as cwd, which would bury the report).
    let out = std::env::var("TLPSIM_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json").into());
    std::fs::write(&out, &json).expect("write bench report");
    println!("engine_sweep: report written to {out}");
}
