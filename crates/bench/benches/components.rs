//! Microbenchmarks of the simulator's building blocks: cache lookups,
//! DRAM/bus timing, instruction-stream generation, and a whole-core
//! cycle loop. These guard the simulator's own performance (simulation
//! throughput), not the paper's results.
//!
//! This is a plain `harness = false` benchmark (no external harness
//! crates, so the workspace builds offline): each case is timed with
//! `std::time::Instant` over enough iterations to smooth noise, and
//! reported as ns/op. Run with `cargo bench -p tlpsim-bench`.

use std::hint::black_box;
use std::time::Instant;

use tlpsim_mem::{AccessKind, Addr, Cache, CacheConfig, MemoryConfig, MemorySystem};
use tlpsim_uarch::{ChipConfig, CoreConfig, MultiCore, ThreadProgram};
use tlpsim_workloads::{spec, InstrStream};

/// Time `iters` runs of `f` (after a small warmup) and print ns/op.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let dt = t0.elapsed();
    println!(
        "{name:28} {:>12.1} ns/op   ({iters} iters, {:.3} s)",
        dt.as_nanos() as f64 / iters as f64,
        dt.as_secs_f64()
    );
}

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 4, 3));
    cache.access(tlpsim_mem::LineAddr(7), false);
    bench("cache_access_hit", 2_000_000, || {
        black_box(cache.access(tlpsim_mem::LineAddr(7), false));
    });
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 4, 3));
    let mut i = 0u64;
    bench("cache_access_stream", 2_000_000, || {
        i += 1;
        black_box(cache.access(tlpsim_mem::LineAddr(i), false));
    });
}

fn bench_memory_system() {
    let mut mem = MemorySystem::new(&MemoryConfig::big_core_chip(1));
    mem.access(0, AccessKind::Load, Addr(64), 0);
    let mut now = 1000;
    bench("memsys_l1_hit", 1_000_000, || {
        now += 1;
        black_box(mem.access(0, AccessKind::Load, Addr(64), now));
    });
    let mut mem = MemorySystem::new(&MemoryConfig::big_core_chip(1));
    let mut a = 0u64;
    let mut now = 0;
    bench("memsys_dram_stream", 500_000, || {
        a += 64;
        now += 30;
        black_box(mem.access(0, AccessKind::Load, Addr(0x1000_0000 + a * 97), now));
    });
}

fn bench_generator() {
    let mut s = InstrStream::new(&spec::gcc_like(), 0, 1);
    bench("instr_stream_next", 2_000_000, || {
        black_box(s.next());
    });
}

fn bench_core_cycle() {
    bench("big_core_10k_instrs", 50, || {
        let chip = ChipConfig::homogeneous(1, CoreConfig::big(), 2.66);
        let mut sim = MultiCore::new(&chip);
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&spec::hmmer_like(), 0, 1),
            0,
            10_000,
        ));
        sim.pin(t, 0, 0);
        sim.prewarm();
        black_box(sim.run().expect("runs"));
    });
}

fn main() {
    bench_cache();
    bench_memory_system();
    bench_generator();
    bench_core_cycle();
}
