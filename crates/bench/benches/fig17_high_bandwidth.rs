//! Figure 17: all headline comparisons at 16 GB/s memory bandwidth.
use tlpsim_core::experiments::{fig17_high_bandwidth, parsec_design_columns};

fn main() {
    tlpsim_bench::header("Figure 17", "16 GB/s memory bandwidth");
    let ctx = tlpsim_bench::ctx();
    let (homog, heterog, parsec) = fig17_high_bandwidth(&ctx);
    println!("{}", homog.render());
    println!("{}", heterog.render());
    let cols: Vec<String> = parsec_design_columns()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    let avg = parsec.last().unwrap();
    let (no_smt, smt) = avg.1.split_at(cols.len());
    println!("PARSEC-like ROI average speedups at 16 GB/s:");
    println!(
        "{:>10} | {}",
        "",
        cols.iter().map(|c| format!("{c:>8}")).collect::<String>()
    );
    println!(
        "{:>10} | {}",
        "no SMT",
        no_smt
            .iter()
            .map(|v| format!("{v:>8.3}"))
            .collect::<String>()
    );
    println!(
        "{:>10} | {}",
        "SMT",
        smt.iter().map(|v| format!("{v:>8.3}")).collect::<String>()
    );
}
