//! Ablation of the paper's SMT model choices (DESIGN.md §2): static
//! ROB partitioning + round-robin fetch (the paper's configuration,
//! after Raasch & Reinhardt) versus a fully shared window and ICOUNT
//! fetch, on a 6-way-SMT big core running a mixed workload.
use tlpsim_uarch::{ChipConfig, CoreConfig, FetchPolicy, MultiCore, RobSharing, ThreadProgram};
use tlpsim_workloads::{spec, InstrStream};

fn throughput(fetch: FetchPolicy, rob: RobSharing) -> (f64, f64) {
    let mut core = CoreConfig::big();
    core.fetch_policy = fetch;
    core.rob_sharing = rob;
    let chip = ChipConfig::homogeneous(1, core, 2.66);
    let mut sim = MultiCore::new(&chip);
    let budget = 12_000;
    // Three compute-bound + three memory-bound co-runners.
    let mix = [0usize, 1, 5, 9, 10, 11];
    for (i, &b) in mix.iter().enumerate() {
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(&spec::all()[b], i as u64, 3),
            4_000,
            budget,
        ));
        sim.pin(t, 0, i);
    }
    sim.prewarm();
    let r = sim.run().expect("runs");
    let ipcs: Vec<f64> = r.threads.iter().map(|t| t.ipc(budget)).collect();
    let total: f64 = ipcs.iter().sum();
    let min = ipcs.iter().cloned().fold(f64::MAX, f64::min);
    (total, min)
}

fn main() {
    tlpsim_bench::header(
        "Ablation",
        "SMT fetch policy x ROB sharing (6-way SMT big core, mixed workload)",
    );
    println!(
        "{:>14} {:>10} {:>12} {:>12}",
        "fetch", "rob", "total IPC", "min thread"
    );
    for (f, fname) in [
        (FetchPolicy::RoundRobin, "round-robin"),
        (FetchPolicy::ICount, "icount"),
    ] {
        for (r, rname) in [
            (RobSharing::StaticPartition, "static"),
            (RobSharing::Shared, "shared"),
        ] {
            let (total, min) = throughput(f, r);
            println!("{fname:>14} {rname:>10} {total:>12.3} {min:>12.3}");
        }
    }
    println!("\nThe paper's configuration is round-robin + static partitioning;");
    println!("shared windows raise peak throughput but let memory-bound threads");
    println!("monopolize the window (lower min-thread fairness).");
}
