//! Figure 3: STP vs thread count for the nine designs (SMT enabled),
//! homogeneous and heterogeneous multi-program workloads.
use tlpsim_core::ctx::WorkloadKind;
use tlpsim_core::experiments::fig3_throughput;

fn main() {
    tlpsim_bench::header("Figure 3", "throughput vs thread count, nine designs");
    let ctx = tlpsim_bench::ctx();
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        println!("{}", fig3_throughput(&ctx, kind).render());
    }
}
