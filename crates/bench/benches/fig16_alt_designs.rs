//! Figure 16: larger-cache and higher-frequency variants of the
//! medium/small-core designs (multi-threaded ROI speedups).
use tlpsim_core::experiments::fig16_alt_designs;

fn main() {
    tlpsim_bench::header("Figure 16", "alternative multi-core designs");
    let ctx = tlpsim_bench::ctx();
    let bars = fig16_alt_designs(&ctx);
    println!("{}", bars.render());
    let (best, v) = bars.best();
    println!("best: {best} ({v:.3})");
}
