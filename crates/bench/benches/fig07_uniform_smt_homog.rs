//! Figure 07: average performance under a uniform thread-count
//! distribution, SMT policy: HomogeneousOnly.
use tlpsim_core::ctx::WorkloadKind;
use tlpsim_core::experiments::{fig6to8_uniform, SmtPolicy};

fn main() {
    tlpsim_bench::header(
        "Figure 07",
        "uniform distribution, SMT policy HomogeneousOnly",
    );
    let ctx = tlpsim_bench::ctx();
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        let bars = fig6to8_uniform(&ctx, kind, SmtPolicy::HomogeneousOnly);
        println!("{}", bars.render());
        let (best, v) = bars.best();
        println!("best: {best} ({v:.3})\n");
    }
}
