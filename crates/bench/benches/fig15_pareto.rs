//! Figure 15: throughput vs power and energy; Pareto frontier and EDP.
use tlpsim_core::experiments::fig15_power_perf;

fn main() {
    tlpsim_bench::header("Figure 15", "power/energy vs performance (uniform dist)");
    let ctx = tlpsim_bench::ctx();
    let pts = fig15_power_perf(&ctx);
    println!(
        "{:>8} {:>8} {:>9} {:>12} {:>9}",
        "design", "perf", "power(W)", "energy(norm)", "EDP(norm)"
    );
    for p in &pts {
        println!(
            "{:>8} {:>8.3} {:>9.1} {:>12.3} {:>9.3}",
            p.design, p.perf, p.power_w, p.energy_norm, p.edp_norm
        );
    }
    let best_edp = pts
        .iter()
        .min_by(|a, b| a.edp_norm.partial_cmp(&b.edp_norm).unwrap())
        .unwrap();
    println!(
        "\nminimum-EDP design: {} ({:.3} vs 4B)",
        best_edp.design, best_edp.edp_norm
    );
}
