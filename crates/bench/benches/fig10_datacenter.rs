//! Figure 10: average performance under the datacenter and mirrored
//! datacenter thread-count distributions.
use tlpsim_core::experiments::fig10_datacenter;

fn main() {
    tlpsim_bench::header("Figure 10", "datacenter distributions");
    let ctx = tlpsim_bench::ctx();
    for (dist, smt, bars) in fig10_datacenter(&ctx) {
        println!("{}", bars.render());
        let (best, v) = bars.best();
        println!("[{dist}, SMT={smt}] best: {best} ({v:.3})\n");
    }
}
