//! Figure 4: per-benchmark STP curves for the two representative
//! classes: tonto-like (core-bound) and libquantum-like
//! (bandwidth-bound).
use tlpsim_core::experiments::fig4_per_benchmark;
use tlpsim_workloads::spec;

fn main() {
    tlpsim_bench::header("Figure 4", "tonto-like and libquantum-like classes");
    let ctx = tlpsim_bench::ctx();
    let tonto = spec::names()
        .iter()
        .position(|n| *n == "tonto_like")
        .unwrap();
    let libq = spec::names()
        .iter()
        .position(|n| *n == "libquantum_like")
        .unwrap();
    println!("{}", fig4_per_benchmark(&ctx, tonto).render());
    println!("{}", fig4_per_benchmark(&ctx, libq).render());
}
