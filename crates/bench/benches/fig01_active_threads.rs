//! Figure 1: distribution of the number of active threads for the
//! PARSEC-like benchmarks on a twenty-core processor.
use tlpsim_core::experiments::{fig1_active_threads, FIG1_BUCKETS};

fn main() {
    tlpsim_bench::header(
        "Figure 1",
        "active-thread distribution, PARSEC-like on 20 cores",
    );
    let ctx = tlpsim_bench::ctx();
    println!(
        "{:20} {}",
        "app",
        FIG1_BUCKETS.map(|b| format!("{b:>7}")).join("")
    );
    for (name, buckets) in fig1_active_threads(&ctx) {
        let row: String = buckets
            .iter()
            .map(|f| format!("{:>6.1}%", f * 100.0))
            .collect();
        println!("{name:20} {row}");
    }
}
