//! CPI stacks: where every context cycle goes, per design point.
//!
//! Not a figure from the paper — an explanatory companion to three of
//! its findings (EXPERIMENTS.md summary table), produced with the
//! `tlpsim-trace` accounting sink:
//!
//! * **Finding 1** — 4B+SMT wins at low thread counts but the gap
//!   compresses at high counts. The stacks show why: going from 4 to
//!   16 threads the DRAM/bus share of the cycle budget grows while the
//!   Base share shrinks — bandwidth saturation, not core
//!   microarchitecture, sets the ceiling everyone hits.
//! * **Finding 3** — 4B+SMT beats heterogeneous no-SMT designs. The
//!   no-SMT chip burns the cycles SMT would recover as idle contexts
//!   and fetch-starved small cores; on 4B+SMT the same cycles show up
//!   as useful Base work plus bounded SMT interference.
//! * **Finding 8** — the ideal dynamic multi-core is only slightly
//!   better than 4B+SMT. The entire price 4B+SMT pays is visible as
//!   the SMT-interference + contention bands; they stay a small
//!   fraction of the stack, which is the bound on what any
//!   reconfiguration oracle could claw back.

use tlpsim_core::configs;
use tlpsim_uarch::{ChipConfig, CpiComponent, CpiStacks, MultiCore, ThreadProgram};
use tlpsim_workloads::{spec, InstrStream};

/// Simulate `n` multiprogrammed threads on `chip` under the accounting
/// sink; returns chip-wide cycle totals per CPI component plus the
/// run's wall cycles.
fn stack_for(chip: &ChipConfig, n: usize, warmup: u64, budget: u64) -> ([u64; 11], u64) {
    let profiles = spec::all();
    let mut sim = MultiCore::with_sink(chip, CpiStacks::new());
    // Round-robin placement across cores, then across SMT contexts —
    // the same breadth-first policy the experiment drivers use.
    let n_cores = chip.cores.len();
    for i in 0..n {
        let p = &profiles[i % profiles.len()];
        let t = sim.add_thread(ThreadProgram::multiprogram_with_warmup(
            InstrStream::new(p, i as u64, 42),
            warmup,
            budget,
        ));
        let core = i % n_cores;
        let slot = (i / n_cores) % chip.cores[core].smt_contexts.max(1) as usize;
        sim.pin(t, core, slot);
    }
    sim.prewarm();
    let cycles = sim.run().expect("cpi-stack run completes").cycles;
    // Sum only contexts that ever did anything: 4B carries 24 SMT
    // contexts, and the structurally-empty ones would otherwise drown
    // the populated contexts' breakdown in pure idle.
    let stacks = sim.into_sink();
    let mut totals = [0u64; 11];
    for (_, comps) in stacks.iter() {
        let idle = comps[CpiComponent::Idle.index()];
        if comps.iter().sum::<u64>() > idle {
            for (t, c) in totals.iter_mut().zip(comps) {
                *t += c;
            }
        }
    }
    (totals, cycles)
}

/// Render one stack as percentages of total attributed cycles.
fn render(label: &str, totals: &[u64; 11]) {
    let sum: u64 = totals.iter().sum();
    print!("{label:<28}");
    for c in CpiComponent::ALL {
        let pct = 100.0 * totals[c.index()] as f64 / sum.max(1) as f64;
        if pct >= 0.05 {
            print!(" {}:{pct:.1}%", c.name());
        }
    }
    println!();
}

fn group(totals: &[u64; 11], comps: &[CpiComponent]) -> f64 {
    let sum: u64 = totals.iter().sum();
    let part: u64 = comps.iter().map(|c| totals[c.index()]).sum();
    part as f64 / sum.max(1) as f64
}

fn main() {
    tlpsim_bench::header("CPI stacks", "cycle accounting behind findings 1, 3, 8");
    let scale = tlpsim_bench::scale_from_env();
    let (w, b) = (scale.warmup, scale.budget);

    let d4b = configs::by_name("4B").expect("4B exists");
    let smt = d4b.chip(true, 8.0);
    let nosmt_het = configs::by_name("2B10s")
        .or_else(|| configs::by_name("1B6m"))
        .expect("a heterogeneous design exists");
    let het = nosmt_het.chip(false, 8.0);

    // Finding 1: thread-count sweep on 4B+SMT.
    println!("-- Finding 1: 4B+SMT, memory share vs thread count --");
    let mut mem_shares = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let (t, _) = stack_for(&smt, n, w, b);
        render(&format!("4B+SMT n={n}"), &t);
        mem_shares.push((
            n,
            group(
                &t,
                &[CpiComponent::Llc, CpiComponent::Dram, CpiComponent::L2],
            ),
        ));
    }
    let (first, last) = (mem_shares[0].1, mem_shares.last().unwrap().1);
    println!(
        "memory-hierarchy share {:.1}% -> {:.1}% (saturation compresses the high-count gap)\n",
        100.0 * first,
        100.0 * last
    );

    // Finding 3: 4B+SMT vs heterogeneous no-SMT at equal thread count.
    println!(
        "-- Finding 3: 4B+SMT vs {} no-SMT at n=8 --",
        nosmt_het.name
    );
    let (t_smt, cyc_smt) = stack_for(&smt, 8, w, b);
    let (t_het, cyc_het) = stack_for(&het, 8, w, b);
    render("4B+SMT n=8", &t_smt);
    render(&format!("{} no-SMT n=8", nosmt_het.name), &t_het);
    println!(
        "wall cycles for the same work: 4B+SMT {cyc_smt} vs {} {cyc_het} — SMT overlaps \
         the DRAM band ({:.1}% of context cycles) that the no-SMT chip must expose\n",
        nosmt_het.name,
        100.0 * group(&t_smt, &[CpiComponent::Dram]),
    );

    // Finding 8: the SMT-interference band bounds the oracle's edge.
    println!("-- Finding 8: what a dynamic oracle could reclaim from 4B+SMT --");
    for n in [4usize, 8, 16] {
        let (t, _) = stack_for(&smt, n, w, b);
        let smt_tax = group(
            &t,
            &[
                CpiComponent::SmtFetch,
                CpiComponent::SmtIssue,
                CpiComponent::FuContention,
                CpiComponent::RobFull,
            ],
        );
        println!(
            "4B+SMT n={n}: SMT interference + contention = {:.1}% of all context cycles",
            100.0 * smt_tax
        );
    }
    println!("(the reclaimable band stays small — the oracle's headroom, Fig. 13)");
}
