//! Figure 11: average normalized speedup for the PARSEC-like
//! benchmarks (ROI-only and whole-program, without and with SMT).
use tlpsim_core::experiments::{fig11_12_parsec, parsec_design_columns};

fn main() {
    tlpsim_bench::header("Figure 11", "PARSEC-like average speedups");
    let ctx = tlpsim_bench::ctx();
    let cols: Vec<String> = parsec_design_columns()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    for (roi, label) in [(true, "ROI only"), (false, "whole program")] {
        let rows = fig11_12_parsec(&ctx, roi, 8.0);
        let avg = rows.last().unwrap();
        println!("--- {label} ---");
        println!(
            "{:>10} | {}",
            "",
            cols.iter().map(|c| format!("{c:>8}")).collect::<String>()
        );
        let (no_smt, smt) = avg.1.split_at(cols.len());
        println!(
            "{:>10} | {}",
            "no SMT",
            no_smt
                .iter()
                .map(|v| format!("{v:>8.3}"))
                .collect::<String>()
        );
        println!(
            "{:>10} | {}",
            "SMT",
            smt.iter().map(|v| format!("{v:>8.3}")).collect::<String>()
        );
        println!();
    }
}
