//! Figure 14: chip power vs thread count with idle cores power-gated.
use tlpsim_core::experiments::fig14_power;

fn main() {
    tlpsim_bench::header("Figure 14", "power vs thread count (power gating)");
    let ctx = tlpsim_bench::ctx();
    println!("{}", fig14_power(&ctx).render());
}
