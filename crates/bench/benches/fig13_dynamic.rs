//! Figure 13: 4B with SMT versus the ideal dynamic (core-fusion)
//! multi-core with and without SMT.
use tlpsim_core::ctx::WorkloadKind;
use tlpsim_core::experiments::fig13_dynamic;

fn main() {
    tlpsim_bench::header("Figure 13", "4B+SMT vs ideal dynamic multi-core");
    let ctx = tlpsim_bench::ctx();
    for kind in [WorkloadKind::Homogeneous, WorkloadKind::Heterogeneous] {
        println!("{}", fig13_dynamic(&ctx, kind).render());
    }
}
