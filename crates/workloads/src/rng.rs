//! Deterministic pseudo-random number generation.
//!
//! The simulator must be exactly reproducible from a seed across runs
//! and platforms, so we use our own tiny SplitMix64 implementation
//! rather than an external RNG whose stream might change between
//! versions. SplitMix64 is statistically strong enough for workload
//! synthesis and extremely fast.

/// A SplitMix64 PRNG (Steele, Lea & Flood; public-domain algorithm).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Different seeds yield independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            // Avoid the all-zero fixed point neighbourhood by mixing once.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniformity.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n). `n` must be non-zero.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping; tiny bias is irrelevant
        // for workload synthesis.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derive an independent child generator (for fan-out to threads).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// The raw internal state, for checkpointing. Note this is *not*
    /// the seed: [`new`](Self::new) mixes the seed once, so restoring
    /// must go through [`from_raw_state`](Self::from_raw_state).
    pub fn raw_state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from [`raw_state`](Self::raw_state). The
    /// restored generator continues the stream exactly where the saved
    /// one stopped.
    pub fn from_raw_state(state: u64) -> Self {
        SplitMix64 { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} not ~10000");
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn raw_state_round_trip_continues_the_stream() {
        let mut a = SplitMix64::new(1234);
        for _ in 0..57 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_raw_state(a.raw_state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // from_raw_state must NOT re-mix: new(seed) != from_raw_state(seed).
        assert_ne!(
            SplitMix64::new(77).next_u64(),
            SplitMix64::from_raw_state(77).next_u64()
        );
    }
}
