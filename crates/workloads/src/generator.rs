//! The instruction-stream generator: turns a [`BenchmarkProfile`] into
//! an unbounded, deterministic sequence of [`Instr`]s.

use tlpsim_mem::Addr;

use crate::instr::{Instr, InstrKind};
use crate::profile::BenchmarkProfile;
use crate::rng::SplitMix64;

/// Size of the per-thread private address space (1 GiB). Programs in a
/// multi-program workload are placed in disjoint spaces so they only
/// interact through shared-resource contention, exactly as separate
/// processes would.
pub const THREAD_SPACE_BYTES: u64 = 1 << 30;

/// An unbounded instruction stream for one software thread.
///
/// The stream is deterministic in `(profile, space_id, seed)`. It
/// implements [`Iterator`] and never ends; consumers take as many
/// instructions as their simulation budget requires.
#[derive(Debug, Clone)]
pub struct InstrStream {
    profile: BenchmarkProfile,
    rng: SplitMix64,
    /// Base address of this thread's private data region.
    data_base: u64,
    /// Base address of this thread's code region.
    code_base: u64,
    /// Optional shared region (multi-threaded apps): `(base, bytes)`.
    shared: Option<(u64, u64)>,
    /// Probability a memory access targets the shared region.
    shared_frac: f64,
    /// Current streaming pointer offset.
    stream_pos: u64,
    /// Current program counter offset within the code region.
    pc: u64,
    /// Dynamic instruction count so far.
    seq: u64,
}

impl InstrStream {
    /// Create the stream for `space_id` (a unique index per software
    /// thread in the simulated system) with the given seed.
    pub fn new(profile: &BenchmarkProfile, space_id: u64, seed: u64) -> Self {
        debug_assert!(profile.validate().is_ok());
        let base = space_id * THREAD_SPACE_BYTES;
        // Per-thread set coloring: physical page allocation staggers
        // where each process lands in the caches. Without this, spaces
        // exactly 1 GiB apart alias onto identical cache sets and
        // co-running threads thrash a fraction of each cache while the
        // rest sits idle (65 lines = an odd multiple of the line size,
        // co-prime to every power-of-two set count).
        let color = (space_id % 61) * 65 * 64;
        InstrStream {
            profile: profile.clone(),
            rng: SplitMix64::new(seed ^ space_id.wrapping_mul(0xA076_1D64_78BD_642F)),
            data_base: base + (64 << 20) + color, // data 64MB into the space
            code_base: base + color,
            shared: None,
            shared_frac: 0.0,
            stream_pos: 0,
            pc: 0,
            seq: 0,
        }
    }

    /// Give the stream access to a shared data region (multi-threaded
    /// applications). A fraction `frac` of memory accesses will target
    /// uniformly random lines of the region.
    pub fn with_shared_region(mut self, base: u64, bytes: u64, frac: f64) -> Self {
        assert!(bytes > 0 && (0.0..=1.0).contains(&frac));
        self.shared = Some((base, bytes));
        self.shared_frac = frac;
        self
    }

    /// The profile this stream draws from.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Dynamic instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    /// Serialize the stream's mutable cursor (RNG state, streaming
    /// pointer, PC, dynamic instruction count). The profile, address
    /// bases and shared-region setup are structural — deterministic
    /// from the cell construction — and are not serialized; a restored
    /// stream continues producing the exact instruction sequence the
    /// saved one would have.
    pub fn snap_save(&self, w: &mut tlpsim_mem::SnapWriter) {
        w.marker(b"STRM");
        w.u64(self.rng.raw_state());
        w.u64(self.stream_pos);
        w.u64(self.pc);
        w.u64(self.seq);
    }

    /// Restore the cursor saved by [`snap_save`](Self::snap_save).
    ///
    /// # Errors
    /// [`tlpsim_mem::SnapError`] on truncation or marker mismatch.
    pub fn snap_restore(
        &mut self,
        r: &mut tlpsim_mem::SnapReader<'_>,
    ) -> Result<(), tlpsim_mem::SnapError> {
        r.marker(b"STRM")?;
        self.rng = SplitMix64::from_raw_state(r.u64()?);
        self.stream_pos = r.u64()?;
        self.pc = r.u64()?;
        self.seq = r.u64()?;
        Ok(())
    }

    fn draw_kind(&mut self) -> InstrKind {
        let m = &self.profile.mix;
        let x = self.rng.next_f64();
        let mut acc = m.int_alu;
        if x < acc {
            return InstrKind::IntAlu;
        }
        acc += m.int_mul;
        if x < acc {
            return InstrKind::IntMul;
        }
        acc += m.int_div;
        if x < acc {
            return InstrKind::IntDiv;
        }
        acc += m.fp_alu;
        if x < acc {
            return InstrKind::FpAlu;
        }
        acc += m.load;
        if x < acc {
            return InstrKind::Load;
        }
        acc += m.store;
        if x < acc {
            return InstrKind::Store;
        }
        InstrKind::Branch
    }

    fn draw_dep(&mut self) -> u16 {
        let d = &self.profile.dep;
        let dist = if self.rng.chance(d.near_frac) {
            1 + self.rng.below(d.near_max as u64)
        } else {
            1 + self.rng.below(d.far_max as u64)
        };
        // Clamp to the instructions that actually exist.
        dist.min(self.seq) as u16
    }

    fn draw_addr(&mut self) -> Addr {
        // Shared region first (multi-threaded apps only). Popularity is
        // power-law skewed (u^3): a small set of hot shared lines absorbs
        // most accesses — reuse exists at any simulation scale — while
        // the long tail still pressures the LLC and memory bus.
        if self.shared_frac > 0.0 && self.rng.chance(self.shared_frac) {
            if let Some((base, bytes)) = self.shared {
                let u = self.rng.next_f64();
                let idx = ((bytes / 8) as f64 * u * u * u) as u64;
                return Addr(base + idx * 8);
            }
        }
        let m = &self.profile.mem;
        let x = self.rng.next_f64();
        if x < m.hot_frac {
            Addr(self.data_base + self.rng.below(m.hot_bytes / 8) * 8)
        } else if x < m.hot_frac + m.stream_frac {
            self.stream_pos = (self.stream_pos + m.stream_stride) % m.cold_bytes;
            Addr(self.data_base + m.hot_bytes + self.stream_pos)
        } else {
            Addr(self.data_base + m.hot_bytes + self.rng.below(m.cold_bytes / 8) * 8)
        }
    }

    /// Addresses to functionally pre-warm before timed simulation:
    /// `(is_code, addr)` pairs covering the code footprint, the tail of
    /// the cold/streaming region (capped — regions larger than any cache
    /// can only ever be partially resident), the tail of the shared
    /// region, and finally the hot set (last, so LRU keeps it closest).
    pub fn prewarm_addrs(&self) -> Vec<(bool, Addr)> {
        const LINE: u64 = 64;
        /// Regions beyond this can't be fully cache-resident anyway.
        const COLD_CAP: u64 = 12 * 1024 * 1024;
        let mut v = Vec::new();
        let m = &self.profile.mem;
        // Cold region tail.
        let cold = m.cold_bytes.min(COLD_CAP);
        let cold_start = self.data_base + m.hot_bytes + (m.cold_bytes - cold);
        let mut a = cold_start;
        while a < cold_start + cold {
            v.push((false, Addr(a)));
            a += LINE;
        }
        // Shared region (hot head: the power-law skew favours low
        // addresses, so warm from the start).
        if let Some((base, bytes)) = self.shared {
            let warm = bytes.min(COLD_CAP);
            let mut a = base;
            while a < base + warm {
                v.push((false, Addr(a)));
                a += LINE;
            }
        }
        // Code footprint.
        let mut a = self.code_base;
        while a < self.code_base + self.profile.code_bytes {
            v.push((true, Addr(a)));
            a += LINE;
        }
        // Hot set last.
        let mut a = self.data_base;
        while a < self.data_base + m.hot_bytes {
            v.push((false, Addr(a)));
            a += LINE;
        }
        v
    }

    fn advance_pc(&mut self) -> Addr {
        let fetch = Addr(self.code_base + self.pc);
        if self.rng.chance(self.profile.code_jump_prob) {
            // Jump to a random (aligned) location in the code footprint.
            self.pc = self.rng.below(self.profile.code_bytes / 16) * 16;
        } else {
            // `pc < code_bytes` always holds, so the sequential wrap is
            // a single compare instead of a 64-bit remainder.
            self.pc += 4;
            if self.pc >= self.profile.code_bytes {
                self.pc -= self.profile.code_bytes;
            }
        }
        fetch
    }
}

impl Iterator for InstrStream {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        let kind = self.draw_kind();
        let fetch_addr = self.advance_pc();
        let src1_dist = self.draw_dep();
        let src2_dist = if self.rng.chance(self.profile.dep.two_src_frac) {
            self.draw_dep()
        } else {
            0
        };
        let addr = if kind.is_mem() {
            self.draw_addr()
        } else {
            Addr(0)
        };
        let mispredicted =
            kind == InstrKind::Branch && self.rng.chance(self.profile.mispredict_rate);
        self.seq += 1;
        Some(Instr {
            kind,
            src1_dist,
            src2_dist,
            addr,
            fetch_addr,
            mispredicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DepProfile, InstrMix, MemProfile};

    fn profile() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "gen_test",
            mix: InstrMix::typical_int(),
            dep: DepProfile::high_ilp(),
            mem: MemProfile::cache_friendly(),
            mispredict_rate: 0.05,
            code_bytes: 16 * 1024,
            code_jump_prob: 0.05,
        }
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = InstrStream::new(&profile(), 0, 1).take(1000).collect();
        let b: Vec<_> = InstrStream::new(&profile(), 0, 1).take(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_spaces_have_disjoint_addresses() {
        let a: Vec<_> = InstrStream::new(&profile(), 0, 1).take(5000).collect();
        let b: Vec<_> = InstrStream::new(&profile(), 1, 1).take(5000).collect();
        let max_a = a.iter().map(|i| i.addr.0).max().unwrap();
        let min_b = b
            .iter()
            .filter(|i| i.kind.is_mem())
            .map(|i| i.addr.0)
            .min()
            .unwrap();
        assert!(max_a < THREAD_SPACE_BYTES);
        assert!(min_b >= THREAD_SPACE_BYTES);
    }

    #[test]
    fn mix_is_respected() {
        let n = 200_000;
        let stream = InstrStream::new(&profile(), 0, 3);
        let mut loads = 0u32;
        let mut branches = 0u32;
        for i in stream.take(n) {
            match i.kind {
                InstrKind::Load => loads += 1,
                InstrKind::Branch => branches += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        assert!((lf - 0.25).abs() < 0.01, "load frac {lf}");
        assert!((bf - 0.20).abs() < 0.01, "branch frac {bf}");
    }

    #[test]
    fn deps_never_point_before_stream_start() {
        for i in InstrStream::new(&profile(), 0, 4).take(100) {
            assert!(u64::from(i.src1_dist) <= 100);
        }
        // the very first instruction cannot depend on anything
        let first = InstrStream::new(&profile(), 0, 4).next().unwrap();
        assert_eq!(first.src1_dist, 0);
        assert_eq!(first.src2_dist, 0);
    }

    #[test]
    fn mispredict_rate_is_approximate() {
        let mut mis = 0u32;
        let mut total = 0u32;
        for i in InstrStream::new(&profile(), 0, 5).take(200_000) {
            if i.kind == InstrKind::Branch {
                total += 1;
                if i.mispredicted {
                    mis += 1;
                }
            }
        }
        let rate = mis as f64 / total as f64;
        assert!((rate - 0.05).abs() < 0.01, "mispredict rate {rate}");
    }

    #[test]
    fn hot_set_addresses_stay_hot() {
        let p = profile();
        let hot = p.mem.hot_bytes;
        let mut in_hot = 0u32;
        let mut mem = 0u32;
        for i in InstrStream::new(&p, 0, 6).take(100_000) {
            if i.kind.is_mem() {
                mem += 1;
                if i.addr.0 - (64 << 20) < hot {
                    in_hot += 1;
                }
            }
        }
        let frac = in_hot as f64 / mem as f64;
        assert!((frac - 0.97).abs() < 0.02, "hot frac {frac}");
    }

    #[test]
    fn snapshot_round_trip_continues_the_stream() {
        let p = profile();
        let mut a = InstrStream::new(&p, 0, 9).with_shared_region(0x4000_0000_0000, 1 << 20, 0.3);
        for _ in 0..12_345 {
            a.next().unwrap();
        }
        let mut w = tlpsim_mem::SnapWriter::new();
        a.snap_save(&mut w);
        let bytes = w.finish();
        // Restore into a structurally-identical but freshly built stream.
        let mut b = InstrStream::new(&p, 0, 9).with_shared_region(0x4000_0000_0000, 1 << 20, 0.3);
        let mut r = tlpsim_mem::SnapReader::new(&bytes);
        b.snap_restore(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(b.generated(), a.generated());
        for i in 0..10_000u64 {
            assert_eq!(a.next(), b.next(), "instr {i} diverged after restore");
        }
        // Truncated snapshots are errors, not panics.
        let mut c = InstrStream::new(&p, 0, 9);
        assert!(c
            .snap_restore(&mut tlpsim_mem::SnapReader::new(&bytes[..bytes.len() - 1]))
            .is_err());
    }

    #[test]
    fn shared_region_accesses_appear() {
        let p = profile();
        let s = InstrStream::new(&p, 0, 7).with_shared_region(0x4000_0000_0000, 1 << 20, 0.5);
        let mut shared = 0u32;
        let mut mem = 0u32;
        for i in s.take(50_000) {
            if i.kind.is_mem() {
                mem += 1;
                if i.addr.0 >= 0x4000_0000_0000 {
                    shared += 1;
                }
            }
        }
        let frac = shared as f64 / mem as f64;
        assert!((frac - 0.5).abs() < 0.05, "shared frac {frac}");
    }
}
