//! Multi-program workload mix construction (Section 3.2).
//!
//! * **Homogeneous** mixes: `n` copies of the same benchmark.
//! * **Heterogeneous** mixes: the paper builds 12 random mixes per
//!   thread count using *balanced random sampling* (Velasquez et al.):
//!   every benchmark appears an equal number of times across the 12
//!   mixes of a given thread count. We reproduce that exactly: a bag
//!   containing each benchmark `n` times is shuffled deterministically
//!   and chopped into 12 mixes of `n` programs.

use crate::rng::SplitMix64;

/// Number of mixes generated per thread count (the paper's 12).
pub const MIXES_PER_COUNT: usize = 12;

/// A homogeneous mix: `n` copies of benchmark `bench`.
pub fn homogeneous_mix(bench: usize, n: usize) -> Vec<usize> {
    vec![bench; n]
}

/// Balanced-random heterogeneous mixes: [`MIXES_PER_COUNT`] mixes of
/// `n` programs each, drawn from `n_benchmarks` benchmarks such that
/// every benchmark appears exactly `n * MIXES_PER_COUNT / n_benchmarks`
/// times in total. Deterministic in `seed`.
///
/// # Panics
/// Panics if `n_benchmarks` does not divide `MIXES_PER_COUNT`
/// (the balance property needs it; the paper uses 12 benchmarks and 12
/// mixes).
pub fn heterogeneous_mixes(n_benchmarks: usize, n: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(n_benchmarks > 0 && n > 0);
    assert_eq!(
        MIXES_PER_COUNT % n_benchmarks,
        0,
        "benchmark count must divide the number of mixes for balance"
    );
    let copies = n * MIXES_PER_COUNT / n_benchmarks;
    let mut bag: Vec<usize> = (0..n_benchmarks)
        .flat_map(|b| std::iter::repeat_n(b, copies))
        .collect();
    // Fisher-Yates with our deterministic PRNG.
    let mut rng = SplitMix64::new(seed ^ (n as u64) << 32);
    for i in (1..bag.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        bag.swap(i, j);
    }
    bag.chunks(n).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_is_all_copies() {
        let m = homogeneous_mix(3, 5);
        assert_eq!(m, vec![3, 3, 3, 3, 3]);
    }

    #[test]
    fn heterogeneous_shape() {
        let mixes = heterogeneous_mixes(12, 7, 42);
        assert_eq!(mixes.len(), MIXES_PER_COUNT);
        assert!(mixes.iter().all(|m| m.len() == 7));
    }

    #[test]
    fn heterogeneous_is_balanced() {
        for n in [1, 2, 5, 24] {
            let mixes = heterogeneous_mixes(12, n, 1);
            let mut counts = vec![0usize; 12];
            for m in &mixes {
                for &b in m {
                    counts[b] += 1;
                }
            }
            let expected = n * MIXES_PER_COUNT / 12;
            assert!(
                counts.iter().all(|&c| c == expected),
                "n={n}: counts {counts:?}"
            );
        }
    }

    #[test]
    fn heterogeneous_is_deterministic_and_seed_sensitive() {
        assert_eq!(heterogeneous_mixes(12, 4, 9), heterogeneous_mixes(12, 4, 9));
        assert_ne!(
            heterogeneous_mixes(12, 4, 9),
            heterogeneous_mixes(12, 4, 10)
        );
    }

    #[test]
    fn mixes_are_actually_mixed() {
        // With 24 slots per mix and 12 benchmarks, a mix should contain
        // several distinct benchmarks.
        let mixes = heterogeneous_mixes(12, 24, 3);
        for m in &mixes {
            let mut s = m.clone();
            s.sort_unstable();
            s.dedup();
            assert!(s.len() >= 6, "suspiciously uniform mix {m:?}");
        }
    }
}
