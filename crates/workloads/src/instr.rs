//! The dynamic instruction representation consumed by the core models.

use tlpsim_mem::Addr;

/// Operation class of a dynamic instruction.
///
/// Classes map one-to-one onto the functional-unit types of Table 1
/// (int ALUs, a mul/div unit, an FP unit, load/store ports) plus
/// branches, which occupy an int ALU and may redirect fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Simple integer op (1-cycle execute).
    IntAlu,
    /// Integer multiply (3-cycle execute, mul/div unit).
    IntMul,
    /// Integer divide (20-cycle execute, mul/div unit, unpipelined).
    IntDiv,
    /// Floating-point op (4-cycle execute, FP unit).
    FpAlu,
    /// Memory load (load/store port + D-cache access).
    Load,
    /// Memory store (load/store port; retires via store buffer).
    Store,
    /// Conditional branch (int ALU; may be mispredicted).
    Branch,
}

impl InstrKind {
    /// Execute latency in cycles on a big/medium OoO core.
    pub fn exec_latency(self) -> u64 {
        match self {
            InstrKind::IntAlu | InstrKind::Branch => 1,
            InstrKind::IntMul => 3,
            InstrKind::IntDiv => 20,
            InstrKind::FpAlu => 4,
            // For memory ops the cache hierarchy supplies the latency; this
            // is just the address-generation slot.
            InstrKind::Load | InstrKind::Store => 1,
        }
    }

    /// True for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, InstrKind::Load | InstrKind::Store)
    }
}

/// One dynamic instruction produced by the stream generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Operation class.
    pub kind: InstrKind,
    /// Distance (in dynamic instructions) back to the producer of the
    /// first source operand; 0 means no register dependence.
    pub src1_dist: u16,
    /// Same for the second source operand.
    pub src2_dist: u16,
    /// Effective address (loads/stores only; `Addr(0)` otherwise).
    pub addr: Addr,
    /// Instruction address, used for I-cache modeling.
    pub fetch_addr: Addr,
    /// For branches: whether the predictor misses it (the generator
    /// pre-draws the outcome so core models stay deterministic).
    pub mispredicted: bool,
}

impl Instr {
    /// A register-only instruction with no dependences (test helper).
    pub fn nop() -> Self {
        Instr {
            kind: InstrKind::IntAlu,
            src1_dist: 0,
            src2_dist: 0,
            addr: Addr(0),
            fetch_addr: Addr(0),
            mispredicted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_ordered_sensibly() {
        assert!(InstrKind::IntDiv.exec_latency() > InstrKind::IntMul.exec_latency());
        assert!(InstrKind::IntMul.exec_latency() > InstrKind::IntAlu.exec_latency());
        assert_eq!(InstrKind::Branch.exec_latency(), 1);
    }

    #[test]
    fn mem_classification() {
        assert!(InstrKind::Load.is_mem());
        assert!(InstrKind::Store.is_mem());
        assert!(!InstrKind::FpAlu.is_mem());
    }
}
