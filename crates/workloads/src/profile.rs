//! Statistical benchmark profiles.
//!
//! A [`BenchmarkProfile`] is the synthetic stand-in for a SPEC
//! benchmark-input pair: a set of distributions from which an unbounded
//! instruction stream can be generated. The parameters were chosen so
//! the 12 profiles in [`crate::spec`] span the relative-performance
//! range across the three core types, mirroring how the paper selected
//! its 12 representatives.

/// Fractions of each instruction class; must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrMix {
    /// Simple integer ALU ops.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mul: f64,
    /// Integer divides.
    pub int_div: f64,
    /// Floating-point ops.
    pub fp_alu: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
}

impl InstrMix {
    /// A typical integer-code mix.
    pub fn typical_int() -> Self {
        InstrMix {
            int_alu: 0.40,
            int_mul: 0.02,
            int_div: 0.005,
            fp_alu: 0.005,
            load: 0.25,
            store: 0.12,
            branch: 0.20,
        }
    }

    /// A typical floating-point-code mix.
    pub fn typical_fp() -> Self {
        InstrMix {
            int_alu: 0.28,
            int_mul: 0.02,
            int_div: 0.005,
            fp_alu: 0.33,
            load: 0.25,
            store: 0.085,
            branch: 0.03,
        }
    }

    /// Sum of all fractions (should be ~1).
    pub fn total(&self) -> f64 {
        self.int_alu
            + self.int_mul
            + self.int_div
            + self.fp_alu
            + self.load
            + self.store
            + self.branch
    }
}

/// Register-dependency distance distribution, the knob controlling how
/// much instruction-level parallelism the stream exposes.
///
/// With probability `near_frac` a source operand depends on one of the
/// previous `near_max` instructions (serializing); otherwise it depends
/// on an instruction up to `far_max` back (or not at all, when the drawn
/// distance exceeds the instruction's sequence number).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepProfile {
    /// Probability that a source is a near (serializing) dependence.
    pub near_frac: f64,
    /// Maximum distance of a near dependence.
    pub near_max: u16,
    /// Maximum distance of a far dependence.
    pub far_max: u16,
    /// Probability that the second source operand exists at all.
    pub two_src_frac: f64,
}

impl DepProfile {
    /// High-ILP code: dependences are mostly far apart.
    pub fn high_ilp() -> Self {
        DepProfile {
            near_frac: 0.10,
            near_max: 2,
            far_max: 64,
            two_src_frac: 0.4,
        }
    }

    /// Low-ILP code: long serial chains (pointer chasing and similar).
    pub fn low_ilp() -> Self {
        DepProfile {
            near_frac: 0.55,
            near_max: 2,
            far_max: 24,
            two_src_frac: 0.4,
        }
    }
}

/// Memory behaviour: a two-level working set plus a streaming component.
///
/// Addresses are drawn from
/// * a **hot region** of `hot_bytes` (with probability `hot_frac`),
/// * a **streaming pointer** advancing sequentially through a large
///   region (probability `stream_frac`),
/// * a **cold region** of `cold_bytes`, uniformly (remaining probability).
///
/// Sizing the regions relative to the Table 1 cache capacities produces
/// the paper's qualitative classes: a hot set that fits a 32 KB L1 but
/// not a 6 KB one separates big from small cores; a dominant streaming
/// component makes the benchmark bandwidth-bound at high thread counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemProfile {
    /// Bytes in the hot working set.
    pub hot_bytes: u64,
    /// Bytes in the cold working set.
    pub cold_bytes: u64,
    /// Probability a memory access falls in the hot region.
    pub hot_frac: f64,
    /// Probability a memory access is the next streaming element.
    pub stream_frac: f64,
    /// Stride of the streaming pointer in bytes.
    pub stream_stride: u64,
}

impl MemProfile {
    /// Cache-resident behaviour (hot set fits every L1).
    pub fn cache_friendly() -> Self {
        MemProfile {
            hot_bytes: 4 * 1024,
            cold_bytes: 256 * 1024,
            hot_frac: 0.97,
            stream_frac: 0.0,
            stream_stride: 64,
        }
    }

    /// Pure streaming behaviour (bandwidth-bound).
    pub fn streaming() -> Self {
        MemProfile {
            hot_bytes: 2 * 1024,
            cold_bytes: 64 * 1024 * 1024,
            hot_frac: 0.25,
            stream_frac: 0.70,
            stream_stride: 64,
        }
    }
}

/// A complete statistical benchmark description.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Stable, SPEC-evocative name (e.g. `"libquantum_like"`).
    pub name: &'static str,
    /// Instruction-class mix.
    pub mix: InstrMix,
    /// Dependency-distance distribution.
    pub dep: DepProfile,
    /// Memory behaviour.
    pub mem: MemProfile,
    /// Branch misprediction rate (per branch).
    pub mispredict_rate: f64,
    /// Static code footprint in bytes (drives I-cache behaviour).
    pub code_bytes: u64,
    /// Probability a fetched instruction jumps to a random code location.
    pub code_jump_prob: f64,
}

impl BenchmarkProfile {
    /// Check internal consistency (fractions sum to 1, probabilities in
    /// range, non-empty regions).
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let t = self.mix.total();
        if (t - 1.0).abs() > 1e-6 {
            return Err(format!("{}: instruction mix sums to {t}", self.name));
        }
        for (label, p) in [
            ("near_frac", self.dep.near_frac),
            ("two_src_frac", self.dep.two_src_frac),
            ("hot_frac", self.mem.hot_frac),
            ("stream_frac", self.mem.stream_frac),
            ("mispredict_rate", self.mispredict_rate),
            ("code_jump_prob", self.code_jump_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{}: {label} = {p} out of range", self.name));
            }
        }
        if self.mem.hot_frac + self.mem.stream_frac > 1.0 + 1e-9 {
            return Err(format!("{}: hot_frac + stream_frac > 1", self.name));
        }
        if self.mem.hot_bytes == 0 || self.mem.cold_bytes == 0 || self.code_bytes == 0 {
            return Err(format!("{}: zero-sized region", self.name));
        }
        Ok(())
    }

    /// Fraction of instructions that access memory.
    pub fn mem_frac(&self) -> f64 {
        self.mix.load + self.mix.store
    }

    /// A crude scalar "memory intensity" in [0, 1], used by the
    /// symbiosis scheduling heuristic: how much off-core traffic the
    /// benchmark is expected to generate.
    pub fn memory_intensity(&self) -> f64 {
        let miss_prone = self.mem.stream_frac + (1.0 - self.mem.hot_frac - self.mem.stream_frac);
        (self.mem_frac() * miss_prone * 4.0).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_profile() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "test",
            mix: InstrMix::typical_int(),
            dep: DepProfile::high_ilp(),
            mem: MemProfile::cache_friendly(),
            mispredict_rate: 0.05,
            code_bytes: 32 * 1024,
            code_jump_prob: 0.05,
        }
    }

    #[test]
    fn builtin_mixes_sum_to_one() {
        assert!((InstrMix::typical_int().total() - 1.0).abs() < 1e-9);
        assert!((InstrMix::typical_fp().total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn valid_profile_passes() {
        assert!(a_profile().validate().is_ok());
    }

    #[test]
    fn bad_mix_fails_validation() {
        let mut p = a_profile();
        p.mix.load += 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_probability_fails_validation() {
        let mut p = a_profile();
        p.mispredict_rate = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn streaming_is_more_memory_intense_than_friendly() {
        let mut s = a_profile();
        s.mem = MemProfile::streaming();
        assert!(s.memory_intensity() > a_profile().memory_intensity());
    }
}
