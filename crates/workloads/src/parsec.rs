//! PARSEC-like multi-threaded application models.
//!
//! Each application is a [`ParsecApp`] template that can be instantiated
//! for any thread count (the paper varies 4..=24 in steps of 4). An
//! instantiation is a per-thread list of [`Segment`]s: compute bursts,
//! barriers, and critical sections, bracketed by serial init/finalize
//! phases executed by thread 0. Threads waiting at a barrier or for a
//! lock *yield the core* (the paper's OS model), which is what creates
//! the time-varying active thread counts of Figure 1.
//!
//! Scaling behaviour is controlled per app by `max_parallelism` (work is
//! split over at most that many threads per phase), `imbalance` (spread
//! of per-thread work within a phase), `cs_frac` (fraction of parallel
//! work inside one global critical section) and `serial_frac`.

use crate::profile::BenchmarkProfile;
use crate::rng::SplitMix64;
use crate::spec;

/// One step of a software thread's control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Execute `instrs` dynamic instructions from the app's profile.
    Compute {
        /// Number of instructions.
        instrs: u64,
    },
    /// Wait until all threads of the app arrive at barrier `id`.
    Barrier {
        /// Barrier identity (monotonically increasing per app).
        id: u32,
    },
    /// Acquire global lock `lock`, run `instrs` instructions, release.
    Critical {
        /// Lock identity.
        lock: u32,
        /// Length of the critical section in instructions.
        instrs: u64,
    },
}

/// A PARSEC-like application template.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsecApp {
    /// Application name (synthetic analogue, `_like`-suffixed).
    pub name: &'static str,
    /// Instruction-level profile of all of the app's code.
    pub profile: BenchmarkProfile,
    /// Largest thread count that still gets useful work per phase.
    pub max_parallelism: usize,
    /// Number of barrier-delimited parallel phases in the ROI.
    pub phases: u32,
    /// Within-phase per-thread work spread (0 = perfectly balanced;
    /// 1 = up to 2x between threads).
    pub imbalance: f64,
    /// Fraction of each thread's phase work executed inside a global
    /// critical section.
    pub cs_frac: f64,
    /// Fraction of the whole program's instructions that are serial
    /// (init + finalize, executed by thread 0 outside the ROI).
    pub serial_frac: f64,
    /// Shared-data region size in bytes.
    pub shared_bytes: u64,
    /// Fraction of memory accesses that go to the shared region.
    pub shared_frac: f64,
}

/// A concrete instantiation of an app for a given thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsecWorkload {
    /// Application name.
    pub name: &'static str,
    /// Instruction profile for every thread.
    pub profile: BenchmarkProfile,
    /// Per-thread segment lists. `threads[0]` starts with the serial
    /// init phase and ends with the serial finalize phase.
    pub threads: Vec<Vec<Segment>>,
    /// Shared-region size in bytes.
    pub shared_bytes: u64,
    /// Fraction of accesses into the shared region.
    pub shared_frac: f64,
    /// Instructions in the serial init (prefix of thread 0).
    pub serial_init: u64,
    /// Instructions in the serial finalize (suffix of thread 0).
    pub serial_fini: u64,
}

impl ParsecWorkload {
    /// Total dynamic instructions across all threads.
    pub fn total_instrs(&self) -> u64 {
        self.threads
            .iter()
            .flatten()
            .map(|s| match s {
                Segment::Compute { instrs } => *instrs,
                Segment::Critical { instrs, .. } => *instrs,
                Segment::Barrier { .. } => 0,
            })
            .sum()
    }

    /// Instructions inside the ROI only (excludes serial init/finalize).
    pub fn roi_instrs(&self) -> u64 {
        self.total_instrs() - self.serial_init - self.serial_fini
    }
}

impl ParsecApp {
    /// Instantiate for `n_threads` threads with a per-phase work budget
    /// of roughly `phase_instrs` instructions (split across threads).
    ///
    /// Deterministic in `(self, n_threads, phase_instrs, seed)`.
    ///
    /// # Panics
    /// Panics if `n_threads == 0`.
    pub fn instantiate(&self, n_threads: usize, phase_instrs: u64, seed: u64) -> ParsecWorkload {
        assert!(n_threads > 0, "need at least one thread");
        let mut rng = SplitMix64::new(seed ^ 0x5EED_0000);
        let mut threads: Vec<Vec<Segment>> = vec![Vec::new(); n_threads];

        // Total parallel work over the whole ROI.
        let roi_total = phase_instrs * self.phases as u64;
        // serial_frac = serial / (serial + roi)  =>  serial = roi * f/(1-f)
        let serial_total = (roi_total as f64 * self.serial_frac / (1.0 - self.serial_frac)) as u64;
        let serial_init = serial_total * 2 / 3; // init usually dominates
        let serial_fini = serial_total - serial_init;

        if serial_init > 0 {
            threads[0].push(Segment::Compute {
                instrs: serial_init,
            });
        }
        let mut barrier_id = 0u32;
        // Entry barrier: workers wait for init to finish.
        for t in threads.iter_mut() {
            t.push(Segment::Barrier { id: barrier_id });
        }
        barrier_id += 1;

        let workers = n_threads.min(self.max_parallelism);
        for phase in 0..self.phases {
            // Split the phase work over the participating threads with
            // imbalance; threads beyond max_parallelism get nothing and
            // just wait at the barrier (inactive -> Figure 1 behaviour).
            let share = phase_instrs / workers as u64;
            for (i, t) in threads.iter_mut().enumerate() {
                if i < workers {
                    let f = 1.0 + self.imbalance * rng.next_f64();
                    let mut work = (share as f64 * f) as u64;
                    if self.cs_frac > 0.0 {
                        let cs = ((work as f64) * self.cs_frac) as u64;
                        work -= cs;
                        // Split the critical-section work into a few
                        // acquisitions to create realistic lock traffic.
                        let pieces = 1 + rng.below(3);
                        for _ in 0..pieces {
                            t.push(Segment::Compute {
                                instrs: work / (pieces + 1),
                            });
                            t.push(Segment::Critical {
                                lock: 0,
                                instrs: cs / pieces,
                            });
                        }
                        t.push(Segment::Compute {
                            instrs: work / (pieces + 1),
                        });
                    } else {
                        t.push(Segment::Compute { instrs: work });
                    }
                }
                t.push(Segment::Barrier { id: barrier_id });
            }
            barrier_id += 1;
            let _ = phase;
        }

        if serial_fini > 0 {
            threads[0].push(Segment::Compute {
                instrs: serial_fini,
            });
        }

        ParsecWorkload {
            name: self.name,
            profile: self.profile.clone(),
            threads,
            shared_bytes: self.shared_bytes,
            shared_frac: self.shared_frac,
            serial_init,
            serial_fini,
        }
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// All PARSEC-like application templates, in a stable order.
pub fn all() -> Vec<ParsecApp> {
    vec![
        blackscholes_like(),
        bodytrack_like(),
        canneal_like(),
        dedup_like(),
        ferret_like(),
        freqmine_like(),
        raytrace_like(),
        streamcluster_like(),
        swaptions_like(),
    ]
}

/// Look up an app template by name.
pub fn app_by_name(name: &str) -> Option<ParsecApp> {
    all().into_iter().find(|a| a.name == name)
}

/// blackscholes: embarrassingly parallel FP kernel; scales to any count.
pub fn blackscholes_like() -> ParsecApp {
    ParsecApp {
        name: "blackscholes_like",
        profile: spec::calculix_like(),
        max_parallelism: 64,
        phases: 4,
        imbalance: 0.05,
        cs_frac: 0.0,
        serial_frac: 0.04,
        shared_bytes: 32 * KB,
        shared_frac: 0.15,
    }
}

/// bodytrack: alternating serial and parallel stages; large serial part.
pub fn bodytrack_like() -> ParsecApp {
    ParsecApp {
        name: "bodytrack_like",
        profile: spec::h264ref_like(),
        max_parallelism: 16,
        phases: 10,
        imbalance: 0.25,
        cs_frac: 0.02,
        serial_frac: 0.18,
        shared_bytes: 128 * KB,
        shared_frac: 0.20,
    }
}

/// canneal: scales well but is memory-bound (large shared graph,
/// essentially random access).
pub fn canneal_like() -> ParsecApp {
    ParsecApp {
        name: "canneal_like",
        profile: spec::mcf_like(),
        max_parallelism: 64,
        phases: 6,
        imbalance: 0.10,
        cs_frac: 0.01,
        serial_frac: 0.06,
        shared_bytes: 16 * MB,
        shared_frac: 0.40,
    }
}

/// dedup: pipeline-parallel; stage imbalance limits useful parallelism.
pub fn dedup_like() -> ParsecApp {
    ParsecApp {
        name: "dedup_like",
        profile: spec::bzip2_like(),
        max_parallelism: 12,
        phases: 8,
        imbalance: 0.8,
        cs_frac: 0.05,
        serial_frac: 0.08,
        shared_bytes: 192 * KB,
        shared_frac: 0.25,
    }
}

/// ferret: pipeline-parallel similarity search; limited scaling.
pub fn ferret_like() -> ParsecApp {
    ParsecApp {
        name: "ferret_like",
        profile: spec::gcc_like(),
        max_parallelism: 10,
        phases: 8,
        imbalance: 0.9,
        cs_frac: 0.04,
        serial_frac: 0.07,
        shared_bytes: 192 * KB,
        shared_frac: 0.30,
    }
}

/// freqmine: data-mining with phase-dependent parallelism.
pub fn freqmine_like() -> ParsecApp {
    ParsecApp {
        name: "freqmine_like",
        profile: spec::astar_like(),
        max_parallelism: 8,
        phases: 6,
        imbalance: 0.6,
        cs_frac: 0.06,
        serial_frac: 0.10,
        shared_bytes: 256 * KB,
        shared_frac: 0.30,
    }
}

/// raytrace: scales well, cache-friendly.
pub fn raytrace_like() -> ParsecApp {
    ParsecApp {
        name: "raytrace_like",
        profile: spec::namd_like(),
        max_parallelism: 64,
        phases: 5,
        imbalance: 0.15,
        cs_frac: 0.0,
        serial_frac: 0.05,
        shared_bytes: 64 * KB,
        shared_frac: 0.25,
    }
}

/// streamcluster: barrier-heavy streaming kernel.
pub fn streamcluster_like() -> ParsecApp {
    ParsecApp {
        name: "streamcluster_like",
        profile: spec::milc_like(),
        max_parallelism: 16,
        phases: 16,
        imbalance: 0.15,
        cs_frac: 0.02,
        serial_frac: 0.05,
        shared_bytes: 4 * MB,
        shared_frac: 0.35,
    }
}

/// swaptions: coarse-grained independent work units.
pub fn swaptions_like() -> ParsecApp {
    ParsecApp {
        name: "swaptions_like",
        profile: spec::gamess_like(),
        max_parallelism: 64,
        phases: 2,
        imbalance: 0.5,
        cs_frac: 0.0,
        serial_frac: 0.03,
        shared_bytes: 32 * KB,
        shared_frac: 0.10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_apps() {
        assert_eq!(all().len(), 9);
    }

    #[test]
    fn instantiation_is_deterministic() {
        let app = dedup_like();
        let a = app.instantiate(8, 100_000, 7);
        let b = app.instantiate(8, 100_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn all_threads_share_every_barrier() {
        let app = streamcluster_like();
        let w = app.instantiate(6, 50_000, 1);
        let barriers_of = |t: &Vec<Segment>| {
            t.iter()
                .filter_map(|s| match s {
                    Segment::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let first = barriers_of(&w.threads[0]);
        for t in &w.threads {
            assert_eq!(barriers_of(t), first, "barrier structure must match");
        }
        assert_eq!(first.len() as u32, app.phases + 1);
    }

    #[test]
    fn threads_beyond_max_parallelism_get_no_work() {
        let app = freqmine_like(); // max_parallelism = 8
        let w = app.instantiate(16, 50_000, 3);
        for (i, t) in w.threads.iter().enumerate() {
            let work: u64 = t
                .iter()
                .map(|s| match s {
                    Segment::Compute { instrs } => *instrs,
                    Segment::Critical { instrs, .. } => *instrs,
                    _ => 0,
                })
                .sum();
            if i >= 8 {
                assert_eq!(work, 0, "thread {i} should be idle");
            } else {
                assert!(work > 0, "thread {i} should have work");
            }
        }
    }

    #[test]
    fn serial_work_is_on_thread_zero_only() {
        let app = bodytrack_like();
        let w = app.instantiate(4, 100_000, 9);
        assert!(w.serial_init > 0 && w.serial_fini > 0);
        // Thread 0 starts with the serial compute, others with a barrier.
        assert!(matches!(w.threads[0][0], Segment::Compute { .. }));
        for t in &w.threads[1..] {
            assert!(matches!(t[0], Segment::Barrier { .. }));
        }
    }

    #[test]
    fn serial_fraction_roughly_honored() {
        let app = bodytrack_like();
        let w = app.instantiate(8, 200_000, 5);
        let serial = (w.serial_init + w.serial_fini) as f64;
        let total = w.total_instrs() as f64;
        let f = serial / total;
        // Imbalance inflates parallel work, so allow slack.
        assert!(
            (f - app.serial_frac).abs() < 0.08,
            "serial fraction {f} vs target {}",
            app.serial_frac
        );
    }

    #[test]
    fn critical_sections_present_when_configured() {
        let w = dedup_like().instantiate(8, 100_000, 2);
        let has_cs = w
            .threads
            .iter()
            .flatten()
            .any(|s| matches!(s, Segment::Critical { .. }));
        assert!(has_cs);
        let w2 = blackscholes_like().instantiate(8, 100_000, 2);
        let has_cs2 = w2
            .threads
            .iter()
            .flatten()
            .any(|s| matches!(s, Segment::Critical { .. }));
        assert!(!has_cs2);
    }
}
