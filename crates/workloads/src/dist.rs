//! Active-thread-count distributions (Section 4.2 of the paper).
//!
//! A [`ThreadCountDistribution`] assigns a probability to each active
//! thread count `1..=max`. The paper evaluates three: a uniform
//! distribution, a "datacenter" distribution adapted from Barroso &
//! Hölzle's CPU-utilization data (peaks at 1 thread and around 7-9
//! threads), and the same distribution mirrored around the center to
//! model a heavily loaded server park (peaks at 24 and around 16-18).

/// A probability distribution over active thread counts `1..=max`.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadCountDistribution {
    probs: Vec<f64>, // probs[i] = P(thread count == i + 1)
}

impl ThreadCountDistribution {
    /// Build from raw weights (normalized internally).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative value, or sums
    /// to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty distribution");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "negative weight in distribution"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "distribution sums to zero");
        ThreadCountDistribution {
            probs: weights.iter().map(|&w| w / total).collect(),
        }
    }

    /// Uniform over `1..=max` (each thread count equally likely).
    pub fn uniform(max: usize) -> Self {
        Self::from_weights(&vec![1.0; max])
    }

    /// The paper's datacenter distribution (Figure 10a), adapted to a
    /// maximum of `max` threads: a peak at 1 thread (near-idle servers)
    /// and a second, broader peak around 30-40% utilization (7-9 threads
    /// of 24), with a tail falling off towards full utilization.
    pub fn datacenter(max: usize) -> Self {
        let center = 8.0 * max as f64 / 24.0;
        let weights: Vec<f64> = (1..=max)
            .map(|n| {
                let n = n as f64;
                // Near-idle peak: sharp exponential at n = 1.
                let idle = 1.35 * (-(n - 1.0) / 1.6).exp();
                // Utilization peak around `center` threads.
                let busy = 0.95 * (-((n - center) * (n - center)) / 18.0).exp();
                // Small uniform floor so the tail is not exactly zero.
                idle + busy + 0.06
            })
            .collect();
        Self::from_weights(&weights)
    }

    /// The datacenter distribution mirrored around the center
    /// (Section 4.2.2): peaks at `max` and around `max * 2 / 3`.
    pub fn mirrored_datacenter(max: usize) -> Self {
        let dc = Self::datacenter(max);
        let mut w = dc.probs;
        w.reverse();
        Self::from_weights(&w)
    }

    /// Maximum thread count covered.
    pub fn max_threads(&self) -> usize {
        self.probs.len()
    }

    /// Probability of exactly `n` active threads.
    ///
    /// # Panics
    /// Panics if `n` is 0 or above `max_threads()`.
    pub fn prob(&self, n: usize) -> f64 {
        assert!(n >= 1 && n <= self.probs.len(), "thread count out of range");
        self.probs[n - 1]
    }

    /// Iterate `(thread_count, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs.iter().enumerate().map(|(i, &p)| (i + 1, p))
    }

    /// Expected thread count.
    pub fn mean(&self) -> f64 {
        self.iter().map(|(n, p)| n as f64 * p).sum()
    }

    /// Time-weighted average of a per-thread-count rate metric `f(n)`
    /// (e.g. STP): `sum_n p(n) * f(n)`.
    ///
    /// The fraction of *time* spent at each thread count is given by the
    /// distribution, and throughput is a rate, so the time-weighted
    /// arithmetic mean is the aggregate jobs-per-unit-time.
    pub fn expect<F: FnMut(usize) -> f64>(&self, mut f: F) -> f64 {
        self.iter().map(|(n, p)| p * f(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sums_to_one() {
        let d = ThreadCountDistribution::uniform(24);
        let s: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((d.prob(1) - 1.0 / 24.0).abs() < 1e-12);
        assert!((d.mean() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn datacenter_peaks_match_paper() {
        let d = ThreadCountDistribution::datacenter(24);
        // Peak at 1 thread.
        assert!(d.prob(1) > d.prob(4));
        // Second peak around 7-9 threads: 8 beats both 4 and 14.
        assert!(d.prob(8) > d.prob(4));
        assert!(d.prob(8) > d.prob(14));
        // Tail towards 24 is low.
        assert!(d.prob(24) < d.prob(8) / 2.0);
        // Skewed towards few threads overall.
        assert!(d.mean() < 12.0);
    }

    #[test]
    fn mirrored_is_exactly_reversed() {
        let d = ThreadCountDistribution::datacenter(24);
        let m = ThreadCountDistribution::mirrored_datacenter(24);
        for n in 1..=24 {
            assert!((d.prob(n) - m.prob(25 - n)).abs() < 1e-12);
        }
        assert!(m.mean() > 12.0);
    }

    #[test]
    fn expect_weights_rates() {
        let d = ThreadCountDistribution::uniform(4);
        // f(n) = n: expectation is the mean.
        let e = d.expect(|n| n as f64);
        assert!((e - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prob_zero_panics() {
        ThreadCountDistribution::uniform(4).prob(0);
    }

    #[test]
    #[should_panic(expected = "sums to zero")]
    fn zero_weights_panic() {
        ThreadCountDistribution::from_weights(&[0.0, 0.0]);
    }
}
