//! # tlpsim-workloads — synthetic workload substrate
//!
//! The paper evaluates SPEC CPU2006 (12 representative benchmark-input
//! pairs, 750M-instruction SimPoints) and PARSEC (medium inputs).
//! Neither the binaries, the inputs, nor the trace infrastructure are
//! available here, so this crate provides the closest synthetic
//! equivalent (see `DESIGN.md` §2 for the substitution argument):
//!
//! * a **statistical instruction-stream generator**: each benchmark is a
//!   [`BenchmarkProfile`] (instruction mix, dependency-distance
//!   distribution, two-level working set with a streaming component,
//!   branch mispredict rate, code footprint) from which an unbounded,
//!   deterministic instruction stream is generated per (thread, seed);
//! * **12 SPEC-like profiles** ([`spec`]) spanning the same
//!   relative-performance range across the three core types that the
//!   paper's selection was chosen to cover, including the two classes
//!   discussed in Figure 4 (core-bound `tonto_like`, bandwidth-bound
//!   `libquantum_like`);
//! * **PARSEC-like multi-threaded applications** ([`parsec`]) with serial
//!   init/finalize phases, barrier-synchronized parallel sections, work
//!   imbalance, and critical sections — the sources of the time-varying
//!   active thread counts of Figure 1;
//! * **thread-count distributions** ([`dist`]): uniform, datacenter and
//!   mirrored-datacenter (Figure 10);
//! * **workload mix construction** ([`mix`]): homogeneous mixes and
//!   balanced-random heterogeneous mixes (Velasquez et al.).
//!
//! Everything is deterministic given a seed.

pub mod dist;
pub mod generator;
pub mod instr;
pub mod mix;
pub mod parsec;
pub mod profile;
pub mod rng;
pub mod spec;

pub use dist::ThreadCountDistribution;
pub use generator::InstrStream;
pub use instr::{Instr, InstrKind};
pub use mix::{heterogeneous_mixes, homogeneous_mix};
pub use parsec::{ParsecApp, ParsecWorkload, Segment};
pub use profile::{BenchmarkProfile, DepProfile, InstrMix, MemProfile};
pub use rng::SplitMix64;
