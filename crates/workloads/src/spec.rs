//! The 12 SPEC-like benchmark profiles.
//!
//! The paper selects 12 SPEC CPU2006 benchmark-inputs that *cover the
//! full relative-performance range* across the three core types. These
//! synthetic profiles are constructed to cover the same range:
//!
//! * **core-bound, cache-friendly** profiles (`hmmer_like`,
//!   `calculix_like`, `gamess_like`, `tonto_like`, `namd_like`,
//!   `h264ref_like`) gain the most from the big core's width and ROB and
//!   keep scaling with aggregate core resources — the paper's *tonto
//!   class* (Figure 4a);
//! * **intermediate** profiles (`gcc_like`, `bzip2_like`, `astar_like`)
//!   with larger working sets and worse branch behaviour;
//! * **memory-bound** profiles (`mcf_like`, `libquantum_like`,
//!   `milc_like`) whose performance at high thread counts is dominated
//!   by shared-resource contention — the paper's *libquantum class*
//!   (Figure 4b).
//!
//! Names are suffixed `_like` throughout: they are synthetic analogues,
//! not the SPEC programs.

use crate::profile::{BenchmarkProfile, DepProfile, InstrMix, MemProfile};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// All 12 profiles, in a stable order used across the whole crate
/// (indices into this slice identify benchmarks in workload mixes).
pub fn all() -> Vec<BenchmarkProfile> {
    vec![
        hmmer_like(),
        calculix_like(),
        gamess_like(),
        tonto_like(),
        namd_like(),
        h264ref_like(),
        gcc_like(),
        bzip2_like(),
        astar_like(),
        mcf_like(),
        libquantum_like(),
        milc_like(),
    ]
}

/// Look up a profile by name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// Names of all profiles in index order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|p| p.name).collect()
}

/// hmmer: extremely regular integer code, near-perfect caches, very high
/// ILP. The strongest case for a wide core.
pub fn hmmer_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "hmmer_like",
        mix: InstrMix {
            int_alu: 0.46,
            int_mul: 0.02,
            int_div: 0.0,
            fp_alu: 0.01,
            load: 0.28,
            store: 0.13,
            branch: 0.10,
        },
        dep: DepProfile {
            near_frac: 0.06,
            near_max: 2,
            far_max: 96,
            two_src_frac: 0.45,
        },
        mem: MemProfile {
            hot_bytes: 4 * KB,
            cold_bytes: 128 * KB,
            hot_frac: 0.985,
            stream_frac: 0.0,
            stream_stride: 64,
        },
        mispredict_rate: 0.006,
        code_bytes: 4 * KB,
        code_jump_prob: 0.02,
    }
}

/// calculix: FP solver, high ILP, small hot set.
pub fn calculix_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "calculix_like",
        mix: InstrMix::typical_fp(),
        dep: DepProfile {
            near_frac: 0.08,
            near_max: 2,
            far_max: 80,
            two_src_frac: 0.5,
        },
        mem: MemProfile {
            hot_bytes: 12 * KB,
            cold_bytes: 512 * KB,
            hot_frac: 0.98,
            stream_frac: 0.01,
            stream_stride: 64,
        },
        mispredict_rate: 0.012,
        code_bytes: 8 * KB,
        code_jump_prob: 0.03,
    }
}

/// gamess: FP chemistry, high ILP, tiny footprint.
pub fn gamess_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "gamess_like",
        mix: InstrMix {
            int_alu: 0.25,
            int_mul: 0.02,
            int_div: 0.005,
            fp_alu: 0.36,
            load: 0.23,
            store: 0.085,
            branch: 0.05,
        },
        dep: DepProfile {
            near_frac: 0.10,
            near_max: 2,
            far_max: 72,
            two_src_frac: 0.5,
        },
        mem: MemProfile {
            hot_bytes: 8 * KB,
            cold_bytes: 256 * KB,
            hot_frac: 0.985,
            stream_frac: 0.0,
            stream_stride: 64,
        },
        mispredict_rate: 0.015,
        code_bytes: 12 * KB,
        code_jump_prob: 0.03,
    }
}

/// tonto: FP chemistry. The paper's example of a benchmark that keeps
/// benefiting from more aggregate core resources (Figure 4a): high ILP,
/// hot set that fits a big core's L1 but thrashes the small core's.
pub fn tonto_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "tonto_like",
        mix: InstrMix {
            int_alu: 0.27,
            int_mul: 0.02,
            int_div: 0.005,
            fp_alu: 0.325,
            load: 0.25,
            store: 0.10,
            branch: 0.03,
        },
        dep: DepProfile {
            near_frac: 0.09,
            near_max: 2,
            far_max: 88,
            two_src_frac: 0.5,
        },
        mem: MemProfile {
            hot_bytes: 24 * KB,
            cold_bytes: MB,
            hot_frac: 0.955,
            stream_frac: 0.02,
            stream_stride: 64,
        },
        mispredict_rate: 0.014,
        code_bytes: 16 * KB,
        code_jump_prob: 0.04,
    }
}

/// namd: molecular dynamics, FP, very regular.
pub fn namd_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "namd_like",
        mix: InstrMix {
            int_alu: 0.24,
            int_mul: 0.015,
            int_div: 0.005,
            fp_alu: 0.40,
            load: 0.24,
            store: 0.07,
            branch: 0.03,
        },
        dep: DepProfile {
            near_frac: 0.08,
            near_max: 2,
            far_max: 80,
            two_src_frac: 0.55,
        },
        mem: MemProfile {
            hot_bytes: 40 * KB,
            cold_bytes: 2 * MB,
            hot_frac: 0.95,
            stream_frac: 0.03,
            stream_stride: 64,
        },
        mispredict_rate: 0.010,
        code_bytes: 8 * KB,
        code_jump_prob: 0.02,
    }
}

/// h264ref: video encoder, integer, moderate ILP, mid-size hot set.
pub fn h264ref_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "h264ref_like",
        mix: InstrMix {
            int_alu: 0.42,
            int_mul: 0.03,
            int_div: 0.005,
            fp_alu: 0.015,
            load: 0.27,
            store: 0.12,
            branch: 0.14,
        },
        dep: DepProfile {
            near_frac: 0.18,
            near_max: 3,
            far_max: 56,
            two_src_frac: 0.45,
        },
        mem: MemProfile {
            hot_bytes: 48 * KB,
            cold_bytes: 4 * MB,
            hot_frac: 0.94,
            stream_frac: 0.04,
            stream_stride: 64,
        },
        mispredict_rate: 0.035,
        code_bytes: 16 * KB,
        code_jump_prob: 0.03,
    }
}

/// gcc: compiler, big code footprint (I-cache pressure), mid working set.
pub fn gcc_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "gcc_like",
        mix: InstrMix::typical_int(),
        dep: DepProfile {
            near_frac: 0.28,
            near_max: 3,
            far_max: 40,
            two_src_frac: 0.4,
        },
        mem: MemProfile {
            hot_bytes: 64 * KB,
            cold_bytes: 4 * MB,
            hot_frac: 0.93,
            stream_frac: 0.03,
            stream_stride: 64,
        },
        mispredict_rate: 0.055,
        code_bytes: 24 * KB,
        code_jump_prob: 0.04,
    }
}

/// bzip2: compression, integer, mid working set, data-dependent branches.
pub fn bzip2_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "bzip2_like",
        mix: InstrMix {
            int_alu: 0.43,
            int_mul: 0.01,
            int_div: 0.0,
            fp_alu: 0.0,
            load: 0.26,
            store: 0.12,
            branch: 0.18,
        },
        dep: DepProfile {
            near_frac: 0.30,
            near_max: 3,
            far_max: 36,
            two_src_frac: 0.4,
        },
        mem: MemProfile {
            hot_bytes: 64 * KB,
            cold_bytes: 2 * MB,
            hot_frac: 0.90,
            stream_frac: 0.06,
            stream_stride: 64,
        },
        mispredict_rate: 0.075,
        code_bytes: 8 * KB,
        code_jump_prob: 0.03,
    }
}

/// astar: path-finding, pointer-ish integer code, poor branches.
pub fn astar_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "astar_like",
        mix: InstrMix {
            int_alu: 0.40,
            int_mul: 0.005,
            int_div: 0.0,
            fp_alu: 0.015,
            load: 0.30,
            store: 0.10,
            branch: 0.18,
        },
        dep: DepProfile {
            near_frac: 0.40,
            near_max: 2,
            far_max: 28,
            two_src_frac: 0.35,
        },
        mem: MemProfile {
            hot_bytes: 24 * KB,
            cold_bytes: 16 * MB,
            hot_frac: 0.86,
            stream_frac: 0.02,
            stream_stride: 64,
        },
        mispredict_rate: 0.09,
        code_bytes: 12 * KB,
        code_jump_prob: 0.05,
    }
}

/// mcf: the canonical pointer-chasing, DRAM-latency-bound benchmark:
/// long dependence chains through loads, huge sparse working set.
pub fn mcf_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "mcf_like",
        mix: InstrMix {
            int_alu: 0.35,
            int_mul: 0.0,
            int_div: 0.0,
            fp_alu: 0.0,
            load: 0.35,
            store: 0.08,
            branch: 0.22,
        },
        dep: DepProfile {
            near_frac: 0.60,
            near_max: 2,
            far_max: 20,
            two_src_frac: 0.35,
        },
        mem: MemProfile {
            hot_bytes: 8 * KB,
            cold_bytes: 48 * MB,
            hot_frac: 0.55,
            stream_frac: 0.0,
            stream_stride: 64,
        },
        mispredict_rate: 0.10,
        code_bytes: 6 * KB,
        code_jump_prob: 0.03,
    }
}

/// libquantum: the paper's example of a streaming, bandwidth-bound
/// benchmark (Figure 4b): vectorizable high-ILP code sweeping a huge
/// array, saturating the off-chip bus at high thread counts.
pub fn libquantum_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "libquantum_like",
        mix: InstrMix {
            int_alu: 0.38,
            int_mul: 0.01,
            int_div: 0.0,
            fp_alu: 0.02,
            load: 0.33,
            store: 0.14,
            branch: 0.12,
        },
        dep: DepProfile {
            near_frac: 0.10,
            near_max: 2,
            far_max: 64,
            two_src_frac: 0.4,
        },
        mem: MemProfile {
            hot_bytes: 4 * KB,
            cold_bytes: 64 * MB,
            hot_frac: 0.22,
            stream_frac: 0.74,
            stream_stride: 64,
        },
        mispredict_rate: 0.015,
        code_bytes: 4 * KB,
        code_jump_prob: 0.02,
    }
}

/// milc: FP lattice QCD, streaming with some reuse.
pub fn milc_like() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "milc_like",
        mix: InstrMix {
            int_alu: 0.22,
            int_mul: 0.01,
            int_div: 0.0,
            fp_alu: 0.38,
            load: 0.27,
            store: 0.09,
            branch: 0.03,
        },
        dep: DepProfile {
            near_frac: 0.12,
            near_max: 2,
            far_max: 64,
            two_src_frac: 0.5,
        },
        mem: MemProfile {
            hot_bytes: 16 * KB,
            cold_bytes: 32 * MB,
            hot_frac: 0.40,
            stream_frac: 0.52,
            stream_stride: 64,
        },
        mispredict_rate: 0.010,
        code_bytes: 12 * KB,
        code_jump_prob: 0.02,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_twelve_profiles() {
        assert_eq!(all().len(), 12);
    }

    #[test]
    fn all_profiles_validate() {
        for p in all() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn by_name_round_trips() {
        for p in all() {
            assert_eq!(by_name(p.name).unwrap(), p);
        }
        assert!(by_name("not_a_benchmark").is_none());
    }

    #[test]
    fn memory_intensity_spans_a_range() {
        let profs = all();
        let min = profs
            .iter()
            .map(|p| p.memory_intensity())
            .fold(f64::MAX, f64::min);
        let max = profs
            .iter()
            .map(|p| p.memory_intensity())
            .fold(f64::MIN, f64::max);
        assert!(min < 0.05, "most cache-friendly too intense: {min}");
        assert!(max > 0.5, "most memory-bound not intense enough: {max}");
    }

    #[test]
    fn classes_are_ordered() {
        assert!(
            libquantum_like().memory_intensity() > tonto_like().memory_intensity() * 5.0,
            "libquantum must be much more memory-bound than tonto"
        );
        assert!(mcf_like().memory_intensity() > gcc_like().memory_intensity());
    }
}
