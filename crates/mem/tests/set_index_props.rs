//! Property tests for the strength-reduced cache set indexing.
//!
//! `Cache::set_of` / `Cache::tag_of` replace `line % sets` and
//! `line / sets` with a fixed-point reciprocal multiply (non-power-of-two
//! set counts) or mask/shift (powers of two). These tests pin the claim
//! that the reduction is *bit-exact* for every representable line
//! address, across the paper's odd geometries (6 KB → 48 sets,
//! 48 KB → 192 sets) and power-of-two ones, and that `(set, tag)`
//! round-trips bijectively to the line — the invariant the writeback
//! victim reconstruction (`tag * sets + set`) relies on.

use tlpsim_mem::{Cache, CacheConfig, LineAddr, LINE_BYTES};

/// Line addresses are byte addresses / 64, so the largest representable
/// line is `2^64 / 64 = 2^58` (exclusive).
const MAX_LINE: u64 = u64::MAX / LINE_BYTES;

/// Deterministic 64-bit mixer (splitmix64) for pseudo-random sampling.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Every cache geometry the simulator actually instantiates (Table 1 of
/// the paper) plus pow2 stress shapes.
fn geometries() -> Vec<CacheConfig> {
    vec![
        CacheConfig::new(6 * 1024, 2, 2),          // small L1: 48 sets
        CacheConfig::new(48 * 1024, 4, 8),         // small L2: 192 sets
        CacheConfig::new(16 * 1024, 2, 3),         // medium L1: 128 sets
        CacheConfig::new(128 * 1024, 4, 10),       // medium L2: 512 sets
        CacheConfig::new(32 * 1024, 4, 3),         // big L1: 128 sets
        CacheConfig::new(256 * 1024, 8, 12),       // big L2: 512 sets
        CacheConfig::new(8 * 1024 * 1024, 16, 30), // LLC: 8192 sets
        CacheConfig::new(64, 1, 1),                // degenerate: 1 set
        CacheConfig::new(3 * 64, 1, 1),            // 3 sets (tiny non-pow2)
        CacheConfig::new(48 * 64, 1, 1),           // 48 sets direct-mapped
    ]
}

fn check(c: &Cache, sets: u64, line: u64) {
    let set = c.set_of(LineAddr(line));
    let tag = c.tag_of(LineAddr(line));
    assert_eq!(set, line % sets, "set_of({line}) with {sets} sets");
    assert_eq!(tag, line / sets, "tag_of({line}) with {sets} sets");
    // Bijective round-trip: exactly the reconstruction used for
    // writeback victims.
    assert_eq!(
        tag * sets + set,
        line,
        "round-trip({line}) with {sets} sets"
    );
}

#[test]
fn reciprocal_matches_division_exhaustively_for_small_lines() {
    for cfg in geometries() {
        let c = Cache::new(cfg);
        let sets = cfg.sets();
        // Exhaustive over several full wraps of every set count.
        for line in 0..(sets * 17 + 13) {
            check(&c, sets, line);
        }
    }
}

#[test]
fn reciprocal_matches_division_at_extremes() {
    for cfg in geometries() {
        let c = Cache::new(cfg);
        let sets = cfg.sets();
        // Boundary lines: around 0, around the top of the representable
        // range, and around multiples of `sets` near both ends.
        let top = MAX_LINE - 1;
        let near_top_multiple = (top / sets) * sets;
        for base in [0, top, near_top_multiple, sets, sets * sets] {
            for delta in 0..4u64 {
                let line = base.saturating_add(delta).min(top);
                check(&c, sets, line);
                let line = base.saturating_sub(delta);
                check(&c, sets, line);
            }
        }
    }
}

#[test]
fn reciprocal_matches_division_on_random_sample() {
    for cfg in geometries() {
        let c = Cache::new(cfg);
        let sets = cfg.sets();
        for i in 0..100_000u64 {
            let line = mix(i.wrapping_mul(sets).wrapping_add(0xD1CE)) % MAX_LINE;
            check(&c, sets, line);
        }
    }
}

#[test]
fn round_trip_is_injective_within_a_set() {
    // Distinct lines mapping to the same set must get distinct tags:
    // stream `ways + 1` conflicting lines through a set and verify each
    // is individually distinguishable via contains().
    let cfg = CacheConfig::new(6 * 1024, 2, 2); // 48 sets, 2 ways
    let sets = cfg.sets();
    let mut c = Cache::new(cfg);
    let conflicting: Vec<u64> = (0..3).map(|k| 7 + k * sets).collect();
    for &l in &conflicting {
        c.access(LineAddr(l), false);
    }
    // Capacity 2: the first line was evicted, the last two are resident.
    assert!(!c.contains(LineAddr(conflicting[0])));
    assert!(c.contains(LineAddr(conflicting[1])));
    assert!(c.contains(LineAddr(conflicting[2])));
}
