//! The full chip memory system: per-core private L1I/L1D/L2, shared LLC
//! behind a crossbar, and DRAM behind a bandwidth-limited bus.
//!
//! The walk is performed in a single call that both updates cache state
//! (allocation, LRU, dirtiness, writebacks) and computes the completion
//! time of the access, including queueing at the DRAM banks and the
//! off-chip bus. MSHR-style merging is modeled: a second access to a
//! line that is still in flight waits for the first fill rather than
//! paying a second full miss.

use crate::addr::{Addr, LineAddr};
use crate::bus::{Bus, BusConfig};
use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::hash::FastMap;
use crate::stats::{CoreMemStats, MemStats};
use crate::{CoreId, Cycle};
use tlpsim_trace::{NopSink, TraceEvent, TraceSink};

/// Kind of memory access issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (goes through the L1 I-cache).
    Fetch,
    /// Data load.
    Load,
    /// Data store (write-allocate, write-back).
    Store,
}

/// Deepest level that had to be consulted to satisfy an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Satisfied by the private L1 (I or D).
    L1,
    /// Satisfied by the private unified L2.
    L2,
    /// Satisfied by the shared last-level cache.
    Llc,
    /// Went to DRAM.
    Dram,
}

/// Result of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available to the core.
    pub complete_at: Cycle,
    /// Deepest level consulted.
    pub level: HitLevel,
}

/// Private cache geometry for one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivateCacheConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified private L2.
    pub l2: CacheConfig,
}

impl PrivateCacheConfig {
    /// Big core: 32 KB 4-way L1s, 256 KB 8-way L2 (Table 1).
    pub fn big() -> Self {
        PrivateCacheConfig {
            l1i: CacheConfig::new(32 * 1024, 4, 3),
            l1d: CacheConfig::new(32 * 1024, 4, 3),
            l2: CacheConfig::new(256 * 1024, 8, 12),
        }
    }

    /// Medium core: 16 KB 2-way L1s, 128 KB 4-way L2 (Table 1).
    pub fn medium() -> Self {
        PrivateCacheConfig {
            l1i: CacheConfig::new(16 * 1024, 2, 3),
            l1d: CacheConfig::new(16 * 1024, 2, 3),
            l2: CacheConfig::new(128 * 1024, 4, 10),
        }
    }

    /// Small core: 6 KB 2-way L1s, 48 KB 4-way L2 (Table 1).
    pub fn small() -> Self {
        PrivateCacheConfig {
            l1i: CacheConfig::new(6 * 1024, 2, 2),
            l1d: CacheConfig::new(6 * 1024, 2, 2),
            l2: CacheConfig::new(48 * 1024, 4, 8),
        }
    }

    /// "Large cache" variant of Section 8.1: medium/small cores with
    /// big-core cache capacities.
    pub fn with_big_caches(self) -> Self {
        let big = Self::big();
        PrivateCacheConfig {
            l1i: CacheConfig {
                latency: self.l1i.latency,
                ..big.l1i
            },
            l1d: CacheConfig {
                latency: self.l1d.latency,
                ..big.l1d
            },
            l2: CacheConfig {
                latency: self.l2.latency,
                ..big.l2
            },
        }
    }
}

/// Full chip memory-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Private cache geometry per core (index = core id). Heterogeneous
    /// chips simply mix entries.
    pub per_core: Vec<PrivateCacheConfig>,
    /// Shared last-level cache (8 MB, 16-way in the paper).
    pub llc: CacheConfig,
    /// One-way crossbar latency between a core's L2 and the LLC, cycles.
    pub crossbar_latency: u64,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Off-chip bus parameters.
    pub bus: BusConfig,
    /// Core clock in GHz; converts DRAM/bus wall time into cycles.
    pub freq_ghz: f64,
}

impl MemoryConfig {
    /// The paper's shared LLC: 8 MB, 16-way.
    pub fn default_llc() -> CacheConfig {
        CacheConfig::new(8 * 1024 * 1024, 16, 30)
    }

    /// A chip of `n` big cores with default shared resources. Mostly a
    /// convenience for examples and tests.
    pub fn big_core_chip(n: usize) -> Self {
        MemoryConfig {
            per_core: vec![PrivateCacheConfig::big(); n],
            llc: Self::default_llc(),
            crossbar_latency: 5,
            dram: DramConfig::default(),
            bus: BusConfig::default(),
            freq_ghz: 2.66,
        }
    }
}

#[derive(Debug)]
struct PrivateCaches {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    /// In-flight fills: line -> cycle the data arrives at this core.
    mshr: FastMap<LineAddr, Cycle>,
    stats: CoreMemStats,
}

impl PrivateCaches {
    fn new(cfg: &PrivateCacheConfig) -> Self {
        PrivateCaches {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            mshr: FastMap::default(),
            stats: CoreMemStats::default(),
        }
    }

    fn prune_mshr(&mut self, now: Cycle) {
        if self.mshr.len() > 64 {
            self.mshr.retain(|_, &mut t| t > now);
        }
    }
}

/// The chip-wide memory system.
///
/// One instance models all private caches, the shared LLC, the crossbar,
/// DRAM and the off-chip bus for a single simulated chip.
#[derive(Debug)]
pub struct MemorySystem {
    cores: Vec<PrivateCaches>,
    llc: Cache,
    /// In-flight LLC fills: line -> cycle the data arrives at the LLC.
    llc_pending: FastMap<LineAddr, Cycle>,
    dram: Dram,
    bus: Bus,
    crossbar_latency: u64,
    /// Bumped whenever a new in-flight fill is recorded; lets callers
    /// cache [`Self::next_event`] results (see its docs).
    fills_version: u64,
    /// Arrival cycles of every recorded fill, min-first. Stale tops
    /// (`<= now`) are pruned lazily in [`Self::next_event`], which
    /// makes the query O(1) amortized instead of a walk over the
    /// MSHR/LLC-pending maps. The heap may retain times for entries
    /// the maps have already pruned — phantom events only shorten a
    /// fast-forward jump, never lengthen one (one-sided safety).
    fill_events: std::collections::BinaryHeap<std::cmp::Reverse<Cycle>>,
}

impl MemorySystem {
    /// Build the memory system for a chip.
    pub fn new(cfg: &MemoryConfig) -> Self {
        MemorySystem {
            cores: cfg.per_core.iter().map(PrivateCaches::new).collect(),
            llc: Cache::new(cfg.llc),
            llc_pending: FastMap::default(),
            dram: Dram::new(&cfg.dram, cfg.freq_ghz),
            bus: Bus::new(&cfg.bus, cfg.freq_ghz),
            crossbar_latency: cfg.crossbar_latency,
            fills_version: 0,
            fill_events: std::collections::BinaryHeap::new(),
        }
    }

    /// Number of cores this memory system serves.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Perform an access for `core` at cycle `now`.
    ///
    /// Updates all cache state (allocations, LRU, writebacks) and returns
    /// when the data is available and how deep the access had to go.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: CoreId,
        kind: AccessKind,
        addr: Addr,
        now: Cycle,
    ) -> AccessResult {
        self.access_traced(core, kind, addr, now, &mut NopSink)
    }

    /// [`access`](Self::access) with structural event tracing: emits
    /// fill, bus and DRAM-bank occupancy events into `sink`. With the
    /// default [`NopSink`] every hook folds away at monomorphization
    /// time, so [`access`](Self::access) pays nothing for the
    /// instrumentation.
    pub fn access_traced<S: TraceSink>(
        &mut self,
        core: CoreId,
        kind: AccessKind,
        addr: Addr,
        now: Cycle,
        sink: &mut S,
    ) -> AccessResult {
        let line = addr.line();
        let is_write = kind == AccessKind::Store;

        // --- L1 ---
        // Single-borrow fast path: the overwhelmingly common case (an L1
        // hit with nothing in flight) does one bounds check on `cores`,
        // one cache probe and one counter bump, then returns without
        // ever re-borrowing `self`.
        let (l1_lat, l1_wb) = {
            let pc = &mut self.cores[core];
            let l1 = match kind {
                AccessKind::Fetch => &mut pc.l1i,
                AccessKind::Load | AccessKind::Store => &mut pc.l1d,
            };
            let l1_lat = l1.config().latency;
            let out = l1.access(line, is_write);
            let (hits, misses) = match kind {
                AccessKind::Fetch => (&mut pc.stats.l1i_hits, &mut pc.stats.l1i_misses),
                _ => (&mut pc.stats.l1d_hits, &mut pc.stats.l1d_misses),
            };
            if out.hit {
                *hits += 1;
                let mut complete = now + l1_lat;
                // Hit on a line whose fill is still in flight: wait for it.
                if let Some(&t) = pc.mshr.get(&line) {
                    complete = complete.max(t);
                }
                return AccessResult {
                    complete_at: complete,
                    level: HitLevel::L1,
                };
            }
            *misses += 1;
            (l1_lat, out.writeback)
        };
        // L1 victim writeback goes to L2 (state only; timing folded into L2 lat).
        if let Some(victim) = l1_wb {
            self.writeback_to_l2(core, victim, now);
        }

        // MSHR merge: the line is already being fetched for this core.
        if let Some(&t) = self.cores[core].mshr.get(&line) {
            if t > now {
                let complete = t.max(now + l1_lat);
                if S::ENABLED {
                    sink.event(TraceEvent::Fill {
                        core,
                        level: 2,
                        start: now,
                        end: complete,
                    });
                }
                return AccessResult {
                    complete_at: complete,
                    level: HitLevel::L2, // charged as a near hit; fill in flight
                };
            }
        }

        // --- L2 ---
        let t_l2 = now + l1_lat;
        let (l2_lat, l2_out) = {
            let l2 = &mut self.cores[core].l2;
            (l2.config().latency, l2.access(line, false))
        };
        {
            let s = &mut self.cores[core].stats;
            if l2_out.hit {
                s.l2_hits += 1
            } else {
                s.l2_misses += 1
            }
        }
        if l2_out.hit {
            if S::ENABLED {
                sink.event(TraceEvent::Fill {
                    core,
                    level: 2,
                    start: now,
                    end: t_l2 + l2_lat,
                });
            }
            return AccessResult {
                complete_at: t_l2 + l2_lat,
                level: HitLevel::L2,
            };
        }
        if let Some(victim) = l2_out.writeback {
            self.writeback_to_llc(victim, t_l2);
        }

        // --- LLC (over the crossbar) ---
        let t_llc = t_l2 + l2_lat + self.crossbar_latency;
        let llc_lat = self.llc.config().latency;
        let llc_out = self.llc.access(line, false);
        if llc_out.hit {
            // Data may still be in flight towards the LLC (cross-core merge).
            let mut data_at_llc = t_llc + llc_lat;
            if let Some(&t) = self.llc_pending.get(&line) {
                data_at_llc = data_at_llc.max(t);
            }
            let complete = data_at_llc + self.crossbar_latency;
            self.fill_mshr(core, line, complete, now);
            if S::ENABLED {
                sink.event(TraceEvent::Fill {
                    core,
                    level: 3,
                    start: now,
                    end: complete,
                });
            }
            return AccessResult {
                complete_at: complete,
                level: HitLevel::Llc,
            };
        }
        if let Some(victim) = llc_out.writeback {
            // Dirty LLC victim consumes bus bandwidth (fire and forget).
            self.bus.transfer(t_llc);
            // The victim line is gone from the chip; nothing else to update.
            let _ = victim;
        }

        // --- DRAM over the bus ---
        let t_mem = t_llc + llc_lat;
        let dram_done = self.dram.access(line, t_mem);
        let data_at_llc = self.bus.transfer(dram_done);
        if S::ENABLED {
            sink.event(TraceEvent::DramBank {
                core,
                bank: self.dram.bank_of(line) as u8,
                start: t_mem,
                end: dram_done,
            });
            sink.event(TraceEvent::Bus {
                core,
                start: dram_done,
                end: data_at_llc,
            });
        }
        self.llc_pending.insert(line, data_at_llc);
        if data_at_llc > now {
            self.fill_events.push(std::cmp::Reverse(data_at_llc));
        }
        if self.llc_pending.len() > 256 {
            self.llc_pending.retain(|_, &mut t| t > now);
        }
        let complete = data_at_llc + self.crossbar_latency;
        self.fill_mshr(core, line, complete, now);
        if S::ENABLED {
            sink.event(TraceEvent::Fill {
                core,
                level: 4,
                start: now,
                end: complete,
            });
        }
        AccessResult {
            complete_at: complete,
            level: HitLevel::Dram,
        }
    }

    fn fill_mshr(&mut self, core: CoreId, line: LineAddr, complete: Cycle, now: Cycle) {
        let pc = &mut self.cores[core];
        pc.mshr.insert(line, complete);
        pc.prune_mshr(now);
        if complete > now {
            self.fill_events.push(std::cmp::Reverse(complete));
        }
        // Pruning only drops stale (<= now) entries, which next_event
        // ignores anyway; only the insert invalidates cached results.
        self.fills_version += 1;
    }

    fn writeback_to_l2(&mut self, core: CoreId, victim: LineAddr, now: Cycle) {
        let out = self.cores[core].l2.access(victim, true);
        if let Some(v2) = out.writeback {
            self.writeback_to_llc(v2, now);
        }
    }

    fn writeback_to_llc(&mut self, victim: LineAddr, now: Cycle) {
        let out = self.llc.access(victim, true);
        if out.writeback.is_some() {
            self.bus.transfer(now);
        }
    }

    /// Functionally install `addr`'s line into `core`'s private caches
    /// and the shared LLC without advancing any timing state (no DRAM,
    /// bus or MSHR activity, no hit/miss counters).
    ///
    /// This is SimPoint-style *functional warming*: it recreates the
    /// steady-state cache contents a long-running benchmark would have,
    /// so that short measurement windows are not dominated by cold
    /// misses the paper's 750M-instruction samples never see. Capacity
    /// and replacement are enforced by the real tag arrays, so regions
    /// that do not fit stay (correctly) partially resident.
    pub fn prewarm_line(&mut self, core: CoreId, kind: AccessKind, addr: Addr) {
        let line = addr.line();
        let pc = &mut self.cores[core];
        match kind {
            AccessKind::Fetch => {
                pc.l1i.access(line, false);
            }
            AccessKind::Load | AccessKind::Store => {
                pc.l1d.access(line, false);
            }
        }
        pc.l2.access(line, false);
        self.llc.access(line, false);
    }

    /// Reset all hit/miss/traffic counters (typically right after
    /// pre-warming) without touching cache contents.
    pub fn reset_counters(&mut self) {
        for c in &mut self.cores {
            c.stats = CoreMemStats::default();
            c.l1i.reset_counters();
            c.l1d.reset_counters();
            c.l2.reset_counters();
        }
        self.llc.reset_counters();
    }

    /// Next-event surface for the whole memory system: the earliest
    /// cycle strictly after `now` at which an in-flight fill arrives
    /// anywhere in the hierarchy (a per-core MSHR fill or an LLC fill),
    /// or `None` if nothing is in flight.
    ///
    /// Contract (see DESIGN.md §9): a component must surface every
    /// future cycle at which its state change becomes visible to a core
    /// *without* a new request. Fill arrivals qualify — a later access
    /// to the line observes the arrival time. Bus/DRAM queue positions
    /// do not: they only matter on the next request, which is itself a
    /// core-side event, so they are exposed separately via
    /// [`Bus::next_free_at`]/[`Dram::next_free_at`] (diagnostics) but
    /// deliberately excluded here — including them would cap
    /// fast-forward jumps on state no core can observe.
    ///
    /// Entries whose arrival cycle is `<= now` are stale (pruned
    /// lazily) and are ignored.
    ///
    /// The result may be cached by the caller: it only changes when a
    /// new fill is recorded — observable via [`Self::fills_version`] —
    /// or when `now` reaches the returned cycle.
    ///
    /// O(1) amortized: fill times live in a min-heap maintained at
    /// record time; each query pops the stale prefix and peeks.
    pub fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        while let Some(&std::cmp::Reverse(t)) = self.fill_events.peek() {
            if t > now {
                return Some(t);
            }
            self.fill_events.pop();
        }
        None
    }

    /// Monotonic counter bumped whenever a new in-flight fill is
    /// recorded. A cached [`Self::next_event`] result stays valid while
    /// this is unchanged and `now` has not reached the cached cycle.
    pub fn fills_version(&self) -> u64 {
        self.fills_version
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> MemStats {
        let mut out = MemStats::default();
        self.stats_into(&mut out);
        out
    }

    /// Fill `out` with a snapshot of all statistics, reusing its
    /// `per_core` allocation. Callers that poll statistics repeatedly
    /// (progress reporting, periodic sampling) should hold one
    /// [`MemStats`] and refresh it through this instead of allocating a
    /// fresh per-core `Vec` via [`Self::stats`] on every poll.
    pub fn stats_into(&self, out: &mut MemStats) {
        out.per_core.clear();
        out.per_core.extend(self.cores.iter().map(|c| c.stats));
        let (llc_hits, llc_misses, _) = self.llc.counters();
        out.llc_hits = llc_hits;
        out.llc_misses = llc_misses;
        out.dram_accesses = self.dram.accesses();
        out.bus_bytes = self.bus.bytes();
        out.bus_avg_queue_cycles = self.bus.avg_queue_cycles();
        out.dram_avg_queue_cycles = self.dram.avg_queue_cycles();
    }

    /// Direct access to the shared LLC (for tests and detailed stats).
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// Serialize all mutable memory-system state: every private cache,
    /// MSHR map, the LLC and its pending-fill map, DRAM bank queues,
    /// bus queue, the fills version and the fill-event heap.
    ///
    /// Hash maps iterate in arbitrary order, so their entries are
    /// written sorted by line address — the byte stream is a pure
    /// function of the simulation state, never of hasher layout. The
    /// fill-event min-heap is likewise drained to a sorted list and
    /// rebuilt on restore, which preserves its observable behaviour
    /// exactly (a binary heap's pop order depends only on contents).
    pub fn snap_save(&self, w: &mut crate::SnapWriter) {
        w.marker(b"MEMS");
        w.usize(self.cores.len());
        for pc in &self.cores {
            pc.l1i.snap_save(w);
            pc.l1d.snap_save(w);
            pc.l2.snap_save(w);
            save_fill_map(&pc.mshr, w);
            let s = &pc.stats;
            for v in [
                s.l1i_hits,
                s.l1i_misses,
                s.l1d_hits,
                s.l1d_misses,
                s.l2_hits,
                s.l2_misses,
            ] {
                w.u64(v);
            }
        }
        self.llc.snap_save(w);
        save_fill_map(&self.llc_pending, w);
        self.dram.snap_save(w);
        self.bus.snap_save(w);
        w.u64(self.crossbar_latency);
        w.u64(self.fills_version);
        let mut events: Vec<Cycle> = self.fill_events.iter().map(|r| r.0).collect();
        events.sort_unstable();
        w.u64_slice(&events);
    }

    /// Restore state saved by [`snap_save`](Self::snap_save) into a
    /// structurally identical memory system.
    ///
    /// # Errors
    /// [`crate::SnapError`] on truncation or any structural mismatch
    /// (core count, cache geometry, bank count, crossbar latency).
    pub fn snap_restore(&mut self, r: &mut crate::SnapReader<'_>) -> Result<(), crate::SnapError> {
        r.marker(b"MEMS")?;
        let n = r.usize()?;
        crate::snap_ensure(
            n == self.cores.len(),
            format!("memory system has {} cores, snapshot {n}", self.cores.len()),
        )?;
        for pc in &mut self.cores {
            pc.l1i.snap_restore(r)?;
            pc.l1d.snap_restore(r)?;
            pc.l2.snap_restore(r)?;
            restore_fill_map(&mut pc.mshr, r)?;
            pc.stats.l1i_hits = r.u64()?;
            pc.stats.l1i_misses = r.u64()?;
            pc.stats.l1d_hits = r.u64()?;
            pc.stats.l1d_misses = r.u64()?;
            pc.stats.l2_hits = r.u64()?;
            pc.stats.l2_misses = r.u64()?;
        }
        self.llc.snap_restore(r)?;
        restore_fill_map(&mut self.llc_pending, r)?;
        self.dram.snap_restore(r)?;
        self.bus.snap_restore(r)?;
        let xbar = r.u64()?;
        crate::snap_ensure(
            xbar == self.crossbar_latency,
            format!(
                "crossbar latency: structure {}, snapshot {xbar}",
                self.crossbar_latency
            ),
        )?;
        self.fills_version = r.u64()?;
        let events = r.u64_vec()?;
        self.fill_events = events.into_iter().map(std::cmp::Reverse).collect();
        Ok(())
    }
}

/// Write a line→cycle fill map as sorted `(line, cycle)` pairs.
fn save_fill_map(map: &FastMap<LineAddr, Cycle>, w: &mut crate::SnapWriter) {
    let mut entries: Vec<(u64, Cycle)> = map.iter().map(|(l, &t)| (l.0, t)).collect();
    entries.sort_unstable();
    w.usize(entries.len());
    for (line, t) in entries {
        w.u64(line);
        w.u64(t);
    }
}

/// Read a fill map written by [`save_fill_map`].
fn restore_fill_map(
    map: &mut FastMap<LineAddr, Cycle>,
    r: &mut crate::SnapReader<'_>,
) -> Result<(), crate::SnapError> {
    let n = r.bounded_len()?;
    map.clear();
    for _ in 0..n {
        let line = r.u64()?;
        let t = r.u64()?;
        map.insert(LineAddr(line), t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_chip() -> MemorySystem {
        MemorySystem::new(&MemoryConfig::big_core_chip(2))
    }

    #[test]
    fn cold_miss_goes_to_dram() {
        let mut m = small_chip();
        let r = m.access(0, AccessKind::Load, Addr(0x10000), 0);
        assert_eq!(r.level, HitLevel::Dram);
        // l1(3) + l2(12) + xbar(5) + llc(30) + dram(120) + bus(21) + xbar(5)
        assert!(r.complete_at >= 150, "got {}", r.complete_at);
    }

    #[test]
    fn second_access_hits_l1_but_waits_for_fill() {
        let mut m = small_chip();
        let r1 = m.access(0, AccessKind::Load, Addr(0x10000), 0);
        let r2 = m.access(0, AccessKind::Load, Addr(0x10008), 5);
        assert_eq!(r2.level, HitLevel::L1);
        // The L1 "hit" cannot complete before the fill arrives.
        assert_eq!(r2.complete_at, r1.complete_at);
        // Long after the fill, it's a plain L1 hit.
        let r3 = m.access(0, AccessKind::Load, Addr(0x10000), 100_000);
        assert_eq!(r3.complete_at, 100_000 + 3);
    }

    #[test]
    fn next_event_tracks_inflight_fills() {
        let mut m = small_chip();
        // Idle system: nothing in flight, no events.
        assert_eq!(m.next_event(0), None);
        let r1 = m.access(0, AccessKind::Load, Addr(0x10000), 0);
        // The fill arrival is the earliest (only) future event. Fills
        // may land in a cache a few cycles before the core-visible
        // completion (return crossbar hop), so the event may lead
        // `complete_at` — never trail it (one-sided safety).
        let e0 = m.next_event(0).expect("fill in flight");
        assert!(
            e0 > 0 && e0 <= r1.complete_at,
            "event {e0} vs {}",
            r1.complete_at
        );
        // A second, later miss from the other core: earliest still wins.
        let r2 = m.access(1, AccessKind::Load, Addr(0x50000), 10);
        assert!(r2.complete_at > r1.complete_at);
        assert_eq!(m.next_event(0), Some(e0));
        // Once `now` passes an arrival, it stops being an event.
        let e1 = m.next_event(r1.complete_at).expect("second fill in flight");
        assert!(e1 > r1.complete_at && e1 <= r2.complete_at);
        assert_eq!(m.next_event(r2.complete_at), None);
        // Queue-drain diagnostics are exposed but never folded in.
        assert!(m.bus.next_free_at() > 0);
        assert!(m.dram.next_free_at() > 0);
    }

    #[test]
    fn cross_core_llc_sharing() {
        let mut m = small_chip();
        m.access(0, AccessKind::Load, Addr(0x20000), 0);
        // Much later, core 1 reads the same line: LLC hit, no DRAM.
        let before = m.stats().dram_accesses;
        let r = m.access(1, AccessKind::Load, Addr(0x20000), 50_000);
        assert_eq!(r.level, HitLevel::Llc);
        assert_eq!(m.stats().dram_accesses, before);
    }

    #[test]
    fn fetch_uses_icache() {
        let mut m = small_chip();
        m.access(0, AccessKind::Fetch, Addr(0x30000), 0);
        let s = m.stats();
        assert_eq!(s.per_core[0].l1i_misses, 1);
        assert_eq!(s.per_core[0].l1d_misses, 0);
    }

    #[test]
    fn stores_write_allocate_and_writeback_consumes_bus() {
        // Stream stores through a tiny working set larger than all caches;
        // eventually dirty lines must be written back over the bus.
        let mut m = small_chip();
        let mut now = 0;
        // 16MB of store traffic > 8MB LLC
        for i in 0..(16 * 1024 * 1024 / 64) {
            let r = m.access(0, AccessKind::Store, Addr(i * 64), now);
            now = r.complete_at;
        }
        let s = m.stats();
        // bus bytes must exceed pure fill traffic (writebacks included)
        assert!(s.bus_bytes > s.dram_accesses * 64, "writebacks missing");
    }

    #[test]
    fn bandwidth_pressure_grows_queueing() {
        // Two cores streaming disjoint data should contend on the bus.
        let mut m = small_chip();
        for i in 0..2_000u64 {
            m.access(0, AccessKind::Load, Addr(0x100_0000 + i * 64), i * 4);
            m.access(1, AccessKind::Load, Addr(0x900_0000 + i * 64), i * 4);
        }
        assert!(m.stats().bus_avg_queue_cycles > 1.0);
    }

    #[test]
    fn heterogeneous_private_caches() {
        let cfg = MemoryConfig {
            per_core: vec![PrivateCacheConfig::big(), PrivateCacheConfig::small()],
            llc: MemoryConfig::default_llc(),
            crossbar_latency: 5,
            dram: DramConfig::default(),
            bus: BusConfig::default(),
            freq_ghz: 2.66,
        };
        let mut m = MemorySystem::new(&cfg);
        // A 16KB working set fits in the big core's 32KB L1 but not the
        // small core's 6KB L1.
        let lines = 16 * 1024 / 64;
        for pass in 0..4u64 {
            for i in 0..lines {
                let t = pass * 100_000 + i * 10;
                m.access(0, AccessKind::Load, Addr(i * 64), t);
                m.access(1, AccessKind::Load, Addr(0x800_0000 + i * 64), t);
            }
        }
        let s = m.stats();
        let big_mr = s.per_core[0].l1d_misses as f64
            / (s.per_core[0].l1d_hits + s.per_core[0].l1d_misses) as f64;
        let small_mr = s.per_core[1].l1d_misses as f64
            / (s.per_core[1].l1d_hits + s.per_core[1].l1d_misses) as f64;
        assert!(
            small_mr > big_mr * 2.0,
            "small core should thrash: big {big_mr:.3} small {small_mr:.3}"
        );
    }

    #[test]
    fn llc_capacity_contention_between_cores() {
        // Core 0 repeatedly touches a 4MB set; alone it should settle into
        // LLC hits. When core 1 streams 16MB through the LLC, core 0's
        // lines get evicted.
        let cfg = MemoryConfig::big_core_chip(2);
        let mut alone = MemorySystem::new(&cfg);
        let hot_lines = 4 * 1024 * 1024 / 64;
        let mut t = 0;
        for pass in 0..3u64 {
            for i in 0..hot_lines {
                let r = alone.access(0, AccessKind::Load, Addr(i * 64), t);
                t = r.complete_at;
                let _ = pass;
            }
        }
        let alone_dram = alone.stats().dram_accesses;

        let mut shared = MemorySystem::new(&cfg);
        let mut t = 0;
        for pass in 0..3u64 {
            for i in 0..hot_lines {
                let r = shared.access(0, AccessKind::Load, Addr(i * 64), t);
                // streaming co-runner
                shared.access(
                    1,
                    AccessKind::Load,
                    Addr(0x4000_0000 + (pass * hot_lines + i) * 64 * 4),
                    t,
                );
                t = r.complete_at;
            }
        }
        let shared_dram_core0: u64 = shared.stats().per_core[0].l2_misses;
        let alone_l2miss = alone.stats().per_core[0].l2_misses;
        // Same L2 behaviour but more of those misses now miss in LLC too.
        assert_eq!(shared_dram_core0, alone_l2miss);
        assert!(shared.stats().dram_accesses > alone_dram);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        // Drive some traffic, snapshot, restore into a fresh structure,
        // then verify that *future* behaviour is identical: every
        // subsequent access completes at the same cycle with the same
        // hit level, and the statistics agree exactly.
        let mut m = small_chip();
        let mut now = 0;
        for i in 0..300u64 {
            let r = m.access(
                (i % 2) as usize,
                if i % 3 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                Addr(0x4_0000 + (i % 97) * 64),
                now,
            );
            now = r.complete_at.min(now + 7);
        }
        let mut w = crate::SnapWriter::new();
        m.snap_save(&mut w);
        let bytes = w.finish();

        let mut m2 = small_chip();
        let mut r = crate::SnapReader::new(&bytes);
        m2.snap_restore(&mut r).expect("restores");
        r.expect_end().expect("stream fully consumed");

        assert_eq!(m.stats(), m2.stats());
        assert_eq!(m.fills_version(), m2.fills_version());
        for i in 0..200u64 {
            let a = m.access(0, AccessKind::Load, Addr(0x9_0000 + i * 64), now + i);
            let b = m2.access(0, AccessKind::Load, Addr(0x9_0000 + i * 64), now + i);
            assert_eq!(a, b, "divergence at post-restore access {i}");
        }
        assert_eq!(m.next_event(now), m2.next_event(now));
    }

    #[test]
    fn snapshot_restore_rejects_wrong_structure() {
        let mut m = small_chip();
        m.access(0, AccessKind::Load, Addr(0x1000), 0);
        let mut w = crate::SnapWriter::new();
        m.snap_save(&mut w);
        let bytes = w.finish();
        // Wrong core count.
        let mut other = MemorySystem::new(&MemoryConfig::big_core_chip(3));
        let mut r = crate::SnapReader::new(&bytes);
        assert!(other.snap_restore(&mut r).is_err());
        // Wrong cache geometry (small vs big private caches).
        let cfg = MemoryConfig {
            per_core: vec![PrivateCacheConfig::small(); 2],
            llc: MemoryConfig::default_llc(),
            crossbar_latency: 5,
            dram: DramConfig::default(),
            bus: BusConfig::default(),
            freq_ghz: 2.66,
        };
        let mut wrong_geom = MemorySystem::new(&cfg);
        let mut r = crate::SnapReader::new(&bytes);
        assert!(wrong_geom.snap_restore(&mut r).is_err());
        // Truncated stream.
        let mut same = small_chip();
        let mut r = crate::SnapReader::new(&bytes[..bytes.len() / 2]);
        assert!(same.snap_restore(&mut r).is_err());
    }
}
