//! Banked DRAM model: 8 banks, 45 ns access time (paper, Table 1).
//!
//! Each bank serves one request at a time; requests to a busy bank queue
//! behind it. Lines are interleaved across banks by line address, which
//! is what gives memory-level parallelism to streaming access patterns
//! and serializes pathological same-bank streams.

use crate::addr::LineAddr;
use crate::Cycle;

/// DRAM configuration in wall-clock units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: usize,
    /// Access (row activate + column read) time in nanoseconds.
    pub access_ns: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            access_ns: 45.0,
        }
    }
}

/// Stateful DRAM timing model.
#[derive(Debug, Clone)]
pub struct Dram {
    access_cycles: u64,
    next_free: Vec<Cycle>,
    accesses: u64,
    total_queue_cycles: u64,
}

impl Dram {
    /// Build a DRAM model; `freq_ghz` converts ns to core cycles.
    pub fn new(cfg: &DramConfig, freq_ghz: f64) -> Self {
        assert!(cfg.banks > 0, "DRAM needs at least one bank");
        assert!(freq_ghz > 0.0, "frequency must be positive");
        Dram {
            access_cycles: (cfg.access_ns * freq_ghz).round().max(1.0) as u64,
            next_free: vec![0; cfg.banks],
            accesses: 0,
            total_queue_cycles: 0,
        }
    }

    /// Access latency of one bank, in core cycles.
    pub fn access_cycles(&self) -> u64 {
        self.access_cycles
    }

    /// The bank `line` maps to (lines interleave across banks).
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.next_free.len()
    }

    /// Issue an access for `line` arriving at `now`; returns completion time.
    pub fn access(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        let bank = self.bank_of(line);
        let start = now.max(self.next_free[bank]);
        let done = start + self.access_cycles;
        self.total_queue_cycles += start - now;
        self.next_free[bank] = done;
        self.accesses += 1;
        done
    }

    /// Next-event surface: the cycle at which every bank queue is
    /// drained (the busiest bank's next-free time). At or after this
    /// cycle DRAM state can no longer influence any in-flight request.
    pub fn next_free_at(&self) -> Cycle {
        self.next_free.iter().copied().max().unwrap_or(0)
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Average cycles spent queued behind a busy bank.
    pub fn avg_queue_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_queue_cycles as f64 / self.accesses as f64
        }
    }

    /// Serialize the mutable state (per-bank queue heads, counters);
    /// the access latency is config-derived and validated on restore.
    pub fn snap_save(&self, w: &mut crate::SnapWriter) {
        w.marker(b"DRAM");
        w.u64(self.access_cycles);
        w.u64_slice(&self.next_free);
        w.u64(self.accesses);
        w.u64(self.total_queue_cycles);
    }

    /// Restore state saved by [`snap_save`](Self::snap_save).
    ///
    /// # Errors
    /// [`SnapError`](crate::SnapError) on truncation or when the bank
    /// count or access latency disagrees with this DRAM's configuration.
    pub fn snap_restore(&mut self, r: &mut crate::SnapReader<'_>) -> Result<(), crate::SnapError> {
        r.marker(b"DRAM")?;
        let access = r.u64()?;
        crate::snap_ensure(
            access == self.access_cycles,
            format!(
                "dram access cycles: structure {}, snapshot {access}",
                self.access_cycles
            ),
        )?;
        let next_free = r.u64_vec()?;
        crate::snap_ensure(
            next_free.len() == self.next_free.len(),
            format!(
                "dram has {} banks, snapshot {}",
                self.next_free.len(),
                next_free.len()
            ),
        )?;
        self.next_free = next_free;
        self.accesses = r.u64()?;
        self.total_queue_cycles = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_cycles_conversion() {
        let d = Dram::new(&DramConfig::default(), 2.66);
        assert_eq!(d.access_cycles(), 120); // 45ns * 2.66GHz = 119.7 -> 120
        let d2 = Dram::new(&DramConfig::default(), 3.33);
        assert_eq!(d2.access_cycles(), 150);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut d = Dram::new(&DramConfig::default(), 2.66);
        let a = d.access(LineAddr(0), 0);
        let b = d.access(LineAddr(1), 0);
        assert_eq!(a, b); // different banks, same latency
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = Dram::new(&DramConfig::default(), 2.66);
        let a = d.access(LineAddr(0), 0);
        let b = d.access(LineAddr(8), 0); // 8 banks -> same bank as line 0
        assert_eq!(b, a + d.access_cycles());
        assert!(d.avg_queue_cycles() > 0.0);
    }

    #[test]
    fn idle_bank_starts_immediately() {
        let mut d = Dram::new(&DramConfig::default(), 2.66);
        d.access(LineAddr(0), 0);
        let done = d.access(LineAddr(0), 10_000); // long after bank freed
        assert_eq!(done, 10_000 + d.access_cycles());
    }

    #[test]
    fn bank_conflict_accounting_is_exact() {
        // k same-cycle requests to one bank serialize completely: the
        // i-th waits exactly i full access times, so total queueing is
        // access_cycles * k*(k-1)/2 and the average is the closed form.
        let mut d = Dram::new(&DramConfig::default(), 2.66);
        let lat = d.access_cycles();
        let k = 5u64;
        for i in 0..k {
            let done = d.access(LineAddr(8 * i), 0); // stride 8 = same bank
            assert_eq!(
                done,
                (i + 1) * lat,
                "request {i} must queue behind {i} others"
            );
        }
        let expect_total = lat * k * (k - 1) / 2;
        assert_eq!(d.accesses(), k);
        assert!((d.avg_queue_cycles() - expect_total as f64 / k as f64).abs() < 1e-12);
        // The interleaved counterpart pays zero queueing.
        let mut par = Dram::new(&DramConfig::default(), 2.66);
        for i in 0..k {
            par.access(LineAddr(i), 0); // stride 1 = distinct banks
        }
        assert_eq!(par.avg_queue_cycles(), 0.0);
    }

    #[test]
    fn queueing_delay_grows_monotonically_with_bank_pressure() {
        // Fixing the arrival schedule and raising the number of
        // same-bank requests must never *decrease* the average
        // queueing delay — the monotonicity the CPI stack's DRAM
        // component relies on to explain bandwidth saturation.
        let mut prev = 0.0;
        for k in 1..=16u64 {
            let mut d = Dram::new(&DramConfig::default(), 2.66);
            for i in 0..k {
                d.access(LineAddr(8 * i), i); // near-simultaneous arrivals
            }
            let avg = d.avg_queue_cycles();
            assert!(
                avg >= prev,
                "avg queue delay fell from {prev} to {avg} at k={k}"
            );
            prev = avg;
        }
        assert!(prev > 0.0, "16 conflicting requests must queue");
    }

    #[test]
    fn bank_of_interleaves_by_line() {
        let d = Dram::new(&DramConfig::default(), 2.66);
        assert_eq!(d.bank_of(LineAddr(0)), 0);
        assert_eq!(d.bank_of(LineAddr(7)), 7);
        assert_eq!(d.bank_of(LineAddr(8)), 0);
        assert_eq!(d.bank_of(LineAddr(13)), 5);
    }
}
