//! Dependency-free FNV-1a hashing, shared across the workspace.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the simulator does not need: every map in the
//! hot path is keyed by small trusted integers (line addresses, barrier
//! and lock ids). SipHash showed up on every memory access in profiles,
//! so the in-flight fill maps and the engine's barrier/lock tables use
//! [`FastMap`] instead — a `HashMap` driven by [`FastHasher`], a
//! fixed-key FNV-1a/FxHash-style mixer.
//!
//! The byte-stream [`fnv1a64`] function is the same algorithm and is
//! the checksum used by the on-disk result cache (`tlpsim-core`
//! `diskcache`); it lives here so the workspace has exactly one copy.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit offset basis.
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte slice (tiny, dependency-free, good
/// enough to catch torn writes and corruption in a line-oriented cache,
/// and to drive hash maps keyed by trusted data).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV1A64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV1A64_PRIME);
    }
    h
}

/// A fast, fixed-key hasher for trusted integer keys.
///
/// Byte slices are hashed with byte-at-a-time FNV-1a; fixed-width
/// integer writes (the common case: `LineAddr`, `u32` ids) take a
/// single xor-multiply round, FxHash-style. The multiply is by the FNV
/// prime, which is odd, so the low bits — the ones `HashMap` uses to
/// pick a bucket — remain a bijection of the key's low bits and
/// sequential keys never collide.
#[derive(Debug, Clone)]
pub struct FastHasher {
    state: u64,
}

impl Default for FastHasher {
    fn default() -> Self {
        FastHasher {
            state: FNV1A64_OFFSET,
        }
    }
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(FNV1A64_PRIME);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV1A64_PRIME);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (stateless, so maps hash
/// identically across processes and runs).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`] — drop-in for `std::HashMap` on
/// hot paths keyed by trusted integers.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hasher_byte_stream_matches_fnv1a64() {
        let mut h = FastHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn sequential_u64_keys_get_distinct_low_bits() {
        use std::hash::Hasher;
        let low = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish() & 0xfff
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            seen.insert(low(i));
        }
        assert_eq!(
            seen.len(),
            4096,
            "odd-multiplier low bits must be a bijection"
        );
    }

    #[test]
    fn fast_map_works_as_a_map() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&37), Some(&74));
    }
}
