//! Aggregated memory-system statistics.

use tlpsim_trace::CounterSnapshot;

/// Per-core cache statistics (private levels only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemStats {
    /// L1 instruction cache hits / misses.
    pub l1i_hits: u64,
    pub l1i_misses: u64,
    /// L1 data cache hits / misses.
    pub l1d_hits: u64,
    pub l1d_misses: u64,
    /// Private unified L2 hits / misses.
    pub l2_hits: u64,
    pub l2_misses: u64,
}

impl CoreMemStats {
    /// Total accesses that reached the private hierarchy.
    pub fn accesses(&self) -> u64 {
        self.l1i_hits + self.l1i_misses + self.l1d_hits + self.l1d_misses
    }

    /// Publish this core's private-cache counters under
    /// `mem.core{core}.*`.
    pub fn counters_into(&self, core: usize, snap: &mut CounterSnapshot) {
        let p = format!("mem.core{core}");
        snap.add_u64(&format!("{p}.l1i.hits"), self.l1i_hits);
        snap.add_u64(&format!("{p}.l1i.misses"), self.l1i_misses);
        snap.add_u64(&format!("{p}.l1d.hits"), self.l1d_hits);
        snap.add_u64(&format!("{p}.l1d.misses"), self.l1d_misses);
        snap.add_u64(&format!("{p}.l2.hits"), self.l2_hits);
        snap.add_u64(&format!("{p}.l2.misses"), self.l2_misses);
    }
}

/// Chip-wide memory statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// Per-core private-cache stats.
    pub per_core: Vec<CoreMemStats>,
    /// Shared LLC hits / misses.
    pub llc_hits: u64,
    pub llc_misses: u64,
    /// DRAM accesses served.
    pub dram_accesses: u64,
    /// Bytes moved over the off-chip bus (fills + writebacks).
    pub bus_bytes: u64,
    /// Average queueing delay per bus transfer, in cycles.
    pub bus_avg_queue_cycles: f64,
    /// Average queueing delay per DRAM access, in cycles.
    pub dram_avg_queue_cycles: f64,
}

impl MemStats {
    /// LLC miss rate (0 when no LLC accesses happened).
    pub fn llc_miss_rate(&self) -> f64 {
        let t = self.llc_hits + self.llc_misses;
        if t == 0 {
            0.0
        } else {
            self.llc_misses as f64 / t as f64
        }
    }

    /// Publish every memory-system counter into `snap` under the
    /// `mem.*` namespace.
    pub fn counters_into(&self, snap: &mut CounterSnapshot) {
        for (c, s) in self.per_core.iter().enumerate() {
            s.counters_into(c, snap);
        }
        snap.add_u64("mem.llc.hits", self.llc_hits);
        snap.add_u64("mem.llc.misses", self.llc_misses);
        snap.add_u64("mem.dram.accesses", self.dram_accesses);
        snap.add_u64("mem.bus.bytes", self.bus_bytes);
        snap.set_f64("mem.bus.avg_queue_cycles", self.bus_avg_queue_cycles);
        snap.set_f64("mem.dram.avg_queue_cycles", self.dram_avg_queue_cycles);
    }
}
