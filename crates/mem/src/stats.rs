//! Aggregated memory-system statistics.

/// Per-core cache statistics (private levels only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemStats {
    /// L1 instruction cache hits / misses.
    pub l1i_hits: u64,
    pub l1i_misses: u64,
    /// L1 data cache hits / misses.
    pub l1d_hits: u64,
    pub l1d_misses: u64,
    /// Private unified L2 hits / misses.
    pub l2_hits: u64,
    pub l2_misses: u64,
}

impl CoreMemStats {
    /// Total accesses that reached the private hierarchy.
    pub fn accesses(&self) -> u64 {
        self.l1i_hits + self.l1i_misses + self.l1d_hits + self.l1d_misses
    }
}

/// Chip-wide memory statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// Per-core private-cache stats.
    pub per_core: Vec<CoreMemStats>,
    /// Shared LLC hits / misses.
    pub llc_hits: u64,
    pub llc_misses: u64,
    /// DRAM accesses served.
    pub dram_accesses: u64,
    /// Bytes moved over the off-chip bus (fills + writebacks).
    pub bus_bytes: u64,
    /// Average queueing delay per bus transfer, in cycles.
    pub bus_avg_queue_cycles: f64,
    /// Average queueing delay per DRAM access, in cycles.
    pub dram_avg_queue_cycles: f64,
}

impl MemStats {
    /// LLC miss rate (0 when no LLC accesses happened).
    pub fn llc_miss_rate(&self) -> f64 {
        let t = self.llc_hits + self.llc_misses;
        if t == 0 {
            0.0
        } else {
            self.llc_misses as f64 / t as f64
        }
    }
}
