//! Address and cache-line arithmetic.

/// Size of a cache line in bytes, fixed at 64 B across the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// A byte address in the simulated (flat, per-chip) physical address space.
///
/// Programs in a multi-program workload are placed in disjoint address
/// ranges by the workload generator, so they never falsely share lines;
/// threads of a multi-threaded application deliberately share a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Byte offset within the cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line-granular address (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math_round_trips() {
        let a = Addr(0x1234);
        assert_eq!(a.line().0, 0x1234 / 64);
        assert_eq!(a.line_offset(), 0x1234 % 64);
        assert_eq!(a.line().base().0, (0x1234 / 64) * 64);
    }

    #[test]
    fn adjacent_bytes_share_a_line() {
        assert_eq!(Addr(64).line(), Addr(127).line());
        assert_ne!(Addr(63).line(), Addr(64).line());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Addr(0)).is_empty());
        assert!(!format!("{}", LineAddr(0)).is_empty());
    }
}
