//! Off-chip memory bus with finite bandwidth (paper: 8 GB/s; 16 GB/s in
//! Section 8.2).
//!
//! Every cache line moved between the LLC and DRAM (fills *and* dirty
//! writebacks) occupies the bus for `line_bytes / bandwidth` of wall
//! time. Requests queue FCFS behind the bus's next-free time. This is
//! the mechanism that makes high-thread-count runs of memory-intensive
//! workloads bandwidth-bound, which drives the paper's libquantum-style
//! flattening (Figure 4b) and the Section 8.2 sensitivity study.

use crate::Cycle;

/// Bus configuration in wall-clock units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            bandwidth_gbps: 8.0,
        }
    }
}

/// Stateful bus timing model.
#[derive(Debug, Clone)]
pub struct Bus {
    /// Cycles the bus is occupied per 64 B line transfer.
    occupancy_cycles: u64,
    next_free: Cycle,
    transfers: u64,
    total_queue_cycles: u64,
}

impl Bus {
    /// Build a bus model; `freq_ghz` converts wall time to core cycles.
    pub fn new(cfg: &BusConfig, freq_ghz: f64) -> Self {
        assert!(cfg.bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(freq_ghz > 0.0, "frequency must be positive");
        let ns_per_line = crate::LINE_BYTES as f64 / cfg.bandwidth_gbps; // GB/s == B/ns
        Bus {
            occupancy_cycles: (ns_per_line * freq_ghz).round().max(1.0) as u64,
            next_free: 0,
            transfers: 0,
            total_queue_cycles: 0,
        }
    }

    /// Bus occupancy of one line transfer, in core cycles.
    pub fn occupancy_cycles(&self) -> u64 {
        self.occupancy_cycles
    }

    /// Request a line transfer starting no earlier than `now`; returns the
    /// cycle at which the transfer completes.
    pub fn transfer(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_free);
        self.total_queue_cycles += start - now;
        let done = start + self.occupancy_cycles;
        self.next_free = done;
        self.transfers += 1;
        done
    }

    /// Next-event surface: the cycle at which the bus queue is fully
    /// drained (the last queued transfer completes). At or after this
    /// cycle the bus's state can no longer influence any in-flight
    /// request; before it, an idle chip may still have data moving.
    pub fn next_free_at(&self) -> Cycle {
        self.next_free
    }

    /// Total line transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.transfers * crate::LINE_BYTES
    }

    /// Average queueing delay per transfer, in cycles.
    pub fn avg_queue_cycles(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.total_queue_cycles as f64 / self.transfers as f64
        }
    }

    /// Serialize the mutable state (queue head, counters); the
    /// occupancy is config-derived and only validated on restore.
    pub fn snap_save(&self, w: &mut crate::SnapWriter) {
        w.marker(b"BUS ");
        w.u64(self.occupancy_cycles);
        w.u64(self.next_free);
        w.u64(self.transfers);
        w.u64(self.total_queue_cycles);
    }

    /// Restore state saved by [`snap_save`](Self::snap_save).
    ///
    /// # Errors
    /// [`SnapError`](crate::SnapError) on truncation or when the saved
    /// occupancy disagrees with this bus's configuration.
    pub fn snap_restore(&mut self, r: &mut crate::SnapReader<'_>) -> Result<(), crate::SnapError> {
        r.marker(b"BUS ")?;
        let occupancy = r.u64()?;
        crate::snap_ensure(
            occupancy == self.occupancy_cycles,
            format!(
                "bus occupancy: structure {}, snapshot {occupancy}",
                self.occupancy_cycles
            ),
        )?;
        self.next_free = r.u64()?;
        self.transfers = r.u64()?;
        self.total_queue_cycles = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_matches_bandwidth() {
        // 64B / 8GB/s = 8ns -> 21.28 cycles at 2.66GHz -> 21
        let b = Bus::new(&BusConfig::default(), 2.66);
        assert_eq!(b.occupancy_cycles(), 21);
        // doubling bandwidth halves occupancy
        let b16 = Bus::new(
            &BusConfig {
                bandwidth_gbps: 16.0,
            },
            2.66,
        );
        assert_eq!(b16.occupancy_cycles(), 11);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut b = Bus::new(&BusConfig::default(), 2.66);
        let t1 = b.transfer(0);
        let t2 = b.transfer(0);
        assert_eq!(t2, t1 + b.occupancy_cycles());
        assert!(b.avg_queue_cycles() > 0.0);
    }

    #[test]
    fn spaced_transfers_do_not_queue() {
        let mut b = Bus::new(&BusConfig::default(), 2.66);
        b.transfer(0);
        let t = b.transfer(1_000);
        assert_eq!(t, 1_000 + b.occupancy_cycles());
    }

    #[test]
    fn byte_accounting() {
        let mut b = Bus::new(&BusConfig::default(), 2.66);
        b.transfer(0);
        b.transfer(0);
        assert_eq!(b.bytes(), 128);
    }

    #[test]
    fn saturation_throughput_is_bandwidth_bound() {
        // Offer load faster than the bus can drain (one request every
        // occupancy/2 cycles). However many requests arrive, completed
        // transfers are spaced exactly one occupancy apart — delivered
        // bandwidth is capped at the configured rate — and the i-th
        // request's queueing delay grows linearly with i.
        let mut b = Bus::new(&BusConfig::default(), 2.66);
        let occ = b.occupancy_cycles();
        let n = 40u64;
        let mut last_done = 0;
        for i in 0..n {
            let arrive = i * (occ / 2);
            let done = b.transfer(arrive);
            assert_eq!(done, (i + 1) * occ, "drain rate must stay 1/occupancy");
            assert!(done >= last_done + occ || i == 0);
            last_done = done;
        }
        // Delivered bytes over the busy interval == configured rate.
        let cycles_busy = last_done;
        assert_eq!(cycles_busy, n * occ);
        assert_eq!(b.bytes(), n * crate::LINE_BYTES);
        // Average queueing under 2x overload: the i-th request waits
        // i*(occ - occ/2) cycles; mean = (n-1)/2 * ceil(occ/2).
        let gap = occ - occ / 2;
        let expect = (n - 1) as f64 / 2.0 * gap as f64;
        assert!((b.avg_queue_cycles() - expect).abs() < 1e-9);
    }

    #[test]
    fn offered_load_below_bandwidth_never_queues() {
        // At arrival spacing >= occupancy the bus is work-conserving
        // with zero queueing: saturation effects only begin past the
        // configured bandwidth.
        let mut b = Bus::new(&BusConfig::default(), 2.66);
        let occ = b.occupancy_cycles();
        for i in 0..40u64 {
            let arrive = i * occ;
            assert_eq!(b.transfer(arrive), arrive + occ);
        }
        assert_eq!(b.avg_queue_cycles(), 0.0);
    }
}
