//! The snapshot wire format (DESIGN.md §12).
//!
//! Checkpoint/restore serializes every piece of *mutable* simulation
//! state into one flat little-endian byte buffer. The format is
//! deliberately primitive — fixed-width integers, `f64` as raw bits,
//! length-prefixed sequences — because the contract is not schema
//! evolution but **bit-identity**: a restored run must continue exactly
//! as the uninterrupted run would have, so every value round-trips
//! losslessly and nothing is re-derived at load time that could drift.
//!
//! Structure (configs, geometries, thread placements) is *not*
//! serialized: the caller rebuilds the simulation structurally from its
//! cell key and then restores only the mutable state into it. Each
//! layer guards its section with a four-byte marker and validates
//! structural invariants (array lengths, config-derived constants)
//! against the rebuilt object, so restoring into the wrong structure is
//! a typed [`SnapError`], never silent corruption.

/// Why a snapshot could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value being read.
    Truncated {
        /// Byte offset at which the read ran out.
        at: usize,
    },
    /// A section marker did not match: the snapshot and the rebuilt
    /// structure disagree about what comes next.
    BadMarker {
        /// The marker the reader expected.
        expected: [u8; 4],
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// A decoded value contradicts the structure being restored into
    /// (wrong array length, out-of-range enum tag, wrong fingerprint).
    Mismatch {
        /// What exactly disagreed.
        what: String,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapError::BadMarker { expected, found } => write!(
                f,
                "snapshot section marker mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            SnapError::Mismatch { what } => write!(f, "snapshot does not fit structure: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Convenience constructor for [`SnapError::Mismatch`].
pub fn snap_mismatch(what: impl Into<String>) -> SnapError {
    SnapError::Mismatch { what: what.into() }
}

/// Append-only encoder for the snapshot byte stream.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Write a four-byte section marker (e.g. `b"CACH"`); the matching
    /// [`SnapReader::marker`] call validates stream alignment.
    pub fn marker(&mut self, m: &[u8; 4]) {
        self.buf.extend_from_slice(m);
    }

    /// Write a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write a `usize` as `u64` (the format is 64-bit regardless of
    /// host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its raw IEEE-754 bits — lossless round-trip,
    /// NaN payloads included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write an `Option<u64>` as presence byte + value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Write a `u64` slice as length prefix + elements.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Write a `bool` slice as length prefix + one byte each.
    pub fn bool_slice(&mut self, v: &[bool]) {
        self.usize(v.len());
        for &x in v {
            self.bool(x);
        }
    }
}

/// Sequential decoder over a snapshot byte stream.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset (for diagnostics).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Expect a four-byte section marker written by
    /// [`SnapWriter::marker`].
    pub fn marker(&mut self, m: &[u8; 4]) -> Result<(), SnapError> {
        let got = self.take(4)?;
        if got != m {
            return Err(SnapError::BadMarker {
                expected: *m,
                found: [got[0], got[1], got[2], got[3]],
            });
        }
        Ok(())
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `bool`; any byte other than 0/1 is a mismatch.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(snap_mismatch(format!("bool byte {b:#04x}"))),
        }
    }

    /// Read a `usize` (stored as `u64`); errors if it overflows the
    /// host's `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| snap_mismatch(format!("usize overflow: {v}")))
    }

    /// Read an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            b => Err(snap_mismatch(format!("option byte {b:#04x}"))),
        }
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.bounded_len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Read a length-prefixed `bool` sequence.
    pub fn bool_vec(&mut self) -> Result<Vec<bool>, SnapError> {
        let n = self.bounded_len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.bool()?);
        }
        Ok(v)
    }

    /// Read a sequence length, rejecting lengths that cannot possibly
    /// fit in the remaining bytes (so a corrupt length cannot trigger a
    /// huge allocation before the inevitable `Truncated`).
    pub fn bounded_len(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(snap_mismatch(format!(
                "sequence length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Assert the whole stream was consumed (trailing garbage means the
    /// snapshot and structure disagree somewhere upstream).
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(snap_mismatch(format!(
                "{} trailing bytes after final section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Check a structural invariant while restoring; `what` should name the
/// disagreeing quantity.
pub fn snap_ensure(cond: bool, what: impl Into<String>) -> Result<(), SnapError> {
    if cond {
        Ok(())
    } else {
        Err(snap_mismatch(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.marker(b"TEST");
        w.u64(u64::MAX);
        w.u32(0xDEAD_BEEF);
        w.u16(4097);
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.usize(123_456);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.opt_u64(None);
        w.opt_u64(Some(99));
        w.u64_slice(&[1, 2, 3]);
        w.bool_slice(&[true, false, true]);
        let bytes = w.finish();

        let mut r = SnapReader::new(&bytes);
        r.marker(b"TEST").unwrap();
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u16().unwrap(), 4097);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 123_456);
        let z = r.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(99));
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.bool_vec().unwrap(), vec![true, false, true]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_detected_not_panicked() {
        let mut w = SnapWriter::new();
        w.u64(42);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(matches!(r.u64(), Err(SnapError::Truncated { .. })));
        }
    }

    #[test]
    fn marker_mismatch_names_both_sides() {
        let mut w = SnapWriter::new();
        w.marker(b"AAAA");
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        match r.marker(b"BBBB") {
            Err(SnapError::BadMarker { expected, found }) => {
                assert_eq!(&expected, b"BBBB");
                assert_eq!(&found, b"AAAA");
            }
            other => panic!("expected BadMarker, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_length_cannot_trigger_huge_allocation() {
        let mut w = SnapWriter::new();
        w.usize(usize::MAX / 2); // absurd length, no elements
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.u64_vec(), Err(SnapError::Mismatch { .. })));
    }

    #[test]
    fn bad_bool_and_option_bytes_are_mismatches() {
        let bytes = [3u8, 2u8];
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.bool(), Err(SnapError::Mismatch { .. })));
        assert!(matches!(r.opt_u64(), Err(SnapError::Mismatch { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapWriter::new();
        w.u8(1);
        let bytes = w.finish();
        let r = SnapReader::new(&bytes);
        assert!(r.expect_end().is_err());
    }
}
