//! # tlpsim-mem — memory hierarchy substrate
//!
//! The memory system used by the multi-core simulator reproducing
//! *"The Benefit of SMT in the Multi-Core Era"* (ASPLOS 2014):
//!
//! * per-core private caches: L1 I-cache, L1 D-cache and a unified L2,
//!   sized per core type (Table 1 of the paper),
//! * a shared last-level cache (8 MB, 16-way) reached over a full
//!   crossbar (the paper's choice, so results are not skewed against
//!   many-core configurations),
//! * DRAM with 8 banks and a 45 ns access time,
//! * a bandwidth-limited off-chip bus (8 GB/s by default, 16 GB/s for
//!   the Section 8.2 experiment) with queueing.
//!
//! Everything is modeled structurally: real tag arrays with LRU
//! replacement, real bank/bus next-free times, and MSHR-style merging of
//! requests to in-flight lines. Timing is expressed in *core cycles*;
//! DRAM/bus parameters are given in wall-clock units and converted using
//! the configured core frequency, so the higher-frequency design points
//! of Section 8.1 see proportionally longer memory latencies in cycles.
//!
//! # Example
//!
//! ```
//! use tlpsim_mem::{MemoryConfig, MemorySystem, AccessKind, Addr};
//!
//! let cfg = MemoryConfig::big_core_chip(4);
//! let mut mem = MemorySystem::new(&cfg);
//! let r = mem.access(0, AccessKind::Load, Addr(0x1_0000), 0);
//! assert!(r.complete_at > 0); // a cold miss goes all the way to DRAM
//! ```

mod addr;
mod bus;
mod cache;
mod dram;
mod hash;
mod hierarchy;
mod snap;
mod stats;

pub use addr::{Addr, LineAddr, LINE_BYTES};
pub use bus::{Bus, BusConfig};
pub use cache::{AccessOutcome, Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use hash::{fnv1a64, FastBuildHasher, FastHasher, FastMap};
pub use hierarchy::{
    AccessKind, AccessResult, HitLevel, MemoryConfig, MemorySystem, PrivateCacheConfig,
};
pub use snap::{snap_ensure, snap_mismatch, SnapError, SnapReader, SnapWriter};
pub use stats::{CoreMemStats, MemStats};

/// A point in simulated time, measured in core clock cycles.
pub type Cycle = u64;

/// Identifies a core within the simulated chip.
pub type CoreId = usize;
