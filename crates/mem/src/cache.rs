//! Set-associative cache with true-LRU replacement.
//!
//! This is a tag-array-only model: it tracks presence, dirtiness and
//! recency of lines, which is all the timing study needs. Capacity and
//! conflict behaviour are exact for the configured geometry.
//!
//! The lookup path is built for the simulator's per-instruction access
//! rate (every fetch probes the I-cache, every load/store the D-cache):
//!
//! * **Reciprocal set indexing** — the paper's small-core geometries
//!   are not powers of two (6 KB → 48 sets, 48 KB → 192 sets), so the
//!   naive `line % sets` / `line / sets` pair costs two 64-bit
//!   divisions per access. [`SetIndex`] strength-reduces both to one
//!   fixed-point multiply that is bit-exact for every representable
//!   line address (see the proof at [`SetIndex::new`]).
//! * **SoA tag/stamp/dirty arrays** — the hit scan touches only the
//!   tag word of each way (2-way: 16 contiguous bytes), the victim
//!   scan only the stamps, instead of striding over 32-byte AoS way
//!   structs.
//! * **Same-line MRU short-circuit** — consecutive accesses to one
//!   line (an I-cache streaming through a 64-byte line issues ~16 of
//!   them) skip indexing and the way scan entirely; the stamp/dirty
//!   update and hit count are identical to the full path.

use crate::addr::LineAddr;

/// Geometry of a single cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Need not be a power of two (the paper's
    /// small core uses 6 KB L1 caches and a 48 KB L2).
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in core cycles (applied by the hierarchy).
    pub latency: u64,
}

impl CacheConfig {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is not a multiple of `ways * 64` or if
    /// either parameter is zero.
    pub fn new(capacity_bytes: u64, ways: u32, latency: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0, "cache must be non-empty");
        assert_eq!(
            capacity_bytes % (ways as u64 * crate::LINE_BYTES),
            0,
            "capacity must be a whole number of sets"
        );
        CacheConfig {
            capacity_bytes,
            ways,
            latency,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * crate::LINE_BYTES)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / crate::LINE_BYTES
    }
}

/// What a lookup did to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The line was present.
    pub hit: bool,
    /// A dirty line was evicted to make room (miss path only).
    pub writeback: Option<LineAddr>,
}

/// Strength-reduced `(line % sets, line / sets)`.
#[derive(Debug, Clone, Copy)]
enum SetIndex {
    /// `sets` is a power of two: mask and shift.
    Pow2 { shift: u32 },
    /// General case: exact division by a fixed-point reciprocal,
    /// `line / sets == (line * magic) >> (64 + shift)`.
    Magic { magic: u64, shift: u32 },
}

impl SetIndex {
    /// Precompute the reciprocal for `sets`.
    ///
    /// For non-power-of-two `sets` this uses the round-up method: with
    /// `k = floor(log2 sets)` and `magic = ceil(2^(64+k) / sets)`, the
    /// error term `e = magic * sets - 2^(64+k)` satisfies
    /// `0 < e < sets`, and `(n * magic) >> (64+k)` equals `n / sets`
    /// for every `n < 2^(64+k) / e`. Since `e < sets < 2^(k+1)`, that
    /// bound exceeds `2^63`, and line addresses are byte addresses
    /// divided by 64 — at most `2^58` — so the reciprocal is exact for
    /// every representable [`LineAddr`]. `magic` itself fits in 64
    /// bits because `sets > 2^k` makes `2^(64+k) / sets < 2^64`.
    fn new(sets: u64) -> Self {
        debug_assert!(sets > 0);
        if sets.is_power_of_two() {
            SetIndex::Pow2 {
                shift: sets.trailing_zeros(),
            }
        } else {
            let k = 63 - sets.leading_zeros();
            let magic = (1u128 << (64 + k)).div_ceil(sets as u128) as u64;
            SetIndex::Magic { magic, shift: k }
        }
    }

    /// `(line % sets, line / sets)` without dividing.
    #[inline]
    fn split(self, line: u64, sets: u64) -> (u64, u64) {
        match self {
            SetIndex::Pow2 { shift } => (line & (sets - 1), line >> shift),
            SetIndex::Magic { magic, shift } => {
                let q = ((line as u128 * magic as u128) >> (64 + shift)) as u64;
                (line - q * sets, q)
            }
        }
    }
}

/// Tag sentinel for an invalid way. Real tags are `line / sets`, at
/// most `2^58`, so the sentinel cannot collide.
const EMPTY: u64 = u64::MAX;

/// A set-associative, write-back, write-allocate cache with true LRU.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    idx: SetIndex,
    /// Per-way tag, row-major by set; [`EMPTY`] marks an invalid way.
    tags: Vec<u64>,
    /// Per-way recency stamp; larger = more recently used.
    stamps: Vec<u64>,
    /// Per-way dirty flag.
    dirty: Vec<bool>,
    /// Line of the most recent access ([`EMPTY`] = none) and the way
    /// it resolved to, for the same-line short-circuit.
    last_line: u64,
    last_way: u32,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Build an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let lines = (sets * cfg.ways as u64) as usize;
        Cache {
            cfg,
            sets,
            idx: SetIndex::new(sets),
            tags: vec![EMPTY; lines],
            stamps: vec![0; lines],
            dirty: vec![false; lines],
            last_line: EMPTY,
            last_way: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Set index of `line` (exposed for the reciprocal property tests).
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> u64 {
        self.idx.split(line.0, self.sets).0
    }

    /// Tag of `line` (exposed for the reciprocal property tests).
    #[inline]
    pub fn tag_of(&self, line: LineAddr) -> u64 {
        self.idx.split(line.0, self.sets).1
    }

    /// Look up `line`, allocating it on a miss (write-allocate) and
    /// marking it dirty when `write` is true. Returns whether it hit and
    /// any dirty victim that must be written back.
    pub fn access(&mut self, line: LineAddr, write: bool) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;

        // Same-line short-circuit: the previous access left this line
        // resident in `last_way` (any later eviction or invalidation
        // of it would have gone through `access`/`invalidate`, which
        // reset the marker). State updates mirror the full hit path.
        if line.0 == self.last_line {
            let i = self.last_way as usize;
            self.stamps[i] = tick;
            if write {
                self.dirty[i] = true;
            }
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }

        let (set, tag) = self.idx.split(line.0, self.sets);
        let w = self.cfg.ways as usize;
        let base = set as usize * w;

        // Hit path: tag scan only.
        for i in base..base + w {
            if self.tags[i] == tag {
                self.stamps[i] = tick;
                if write {
                    self.dirty[i] = true;
                }
                self.hits += 1;
                self.last_line = line.0;
                self.last_way = i as u32;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss: pick the first invalid way, else the LRU victim
        // (earliest stamp, lowest way on ties).
        let mut victim = base;
        let mut best = u64::MAX;
        for i in base..base + w {
            if self.tags[i] == EMPTY {
                victim = i;
                break;
            }
            if self.stamps[i] < best {
                best = self.stamps[i];
                victim = i;
            }
        }
        let mut writeback = None;
        if self.tags[victim] != EMPTY && self.dirty[victim] {
            // Reconstruct the victim's line address.
            writeback = Some(LineAddr(self.tags[victim] * self.sets + set));
            self.writebacks += 1;
        }
        self.tags[victim] = tag;
        self.stamps[victim] = tick;
        self.dirty[victim] = write;
        self.misses += 1;
        self.last_line = line.0;
        self.last_way = victim as u32;
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probe without modifying LRU/allocating. Used by tests and by the
    /// hierarchy to model silent upgrades.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (set, tag) = self.idx.split(line.0, self.sets);
        let w = self.cfg.ways as usize;
        let base = set as usize * w;
        self.tags[base..base + w].contains(&tag)
    }

    /// Invalidate a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let (set, tag) = self.idx.split(line.0, self.sets);
        let w = self.cfg.ways as usize;
        let base = set as usize * w;
        for i in base..base + w {
            if self.tags[i] == tag {
                self.tags[i] = EMPTY;
                let was_dirty = self.dirty[i];
                self.dirty[i] = false;
                if self.last_line == line.0 {
                    self.last_line = EMPTY;
                }
                return was_dirty;
            }
        }
        false
    }

    /// Number of valid lines currently resident (O(lines); for tests/stats).
    pub fn resident_lines(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != EMPTY).count() as u64
    }

    /// (hits, misses, writebacks) counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }

    /// Publish this cache's counters into `snap` under `prefix.*`.
    pub fn counters_into(&self, prefix: &str, snap: &mut tlpsim_trace::CounterSnapshot) {
        snap.add_u64(&format!("{prefix}.hits"), self.hits);
        snap.add_u64(&format!("{prefix}.misses"), self.misses);
        snap.add_u64(&format!("{prefix}.writebacks"), self.writebacks);
    }

    /// Zero the hit/miss/writeback counters, keeping cache contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Miss rate over all accesses so far (0 if no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Serialize every mutable field (tag/stamp/dirty SoA arrays, MRU
    /// marker, recency tick, counters). Geometry (`cfg`, `sets`, `idx`)
    /// is structural: the restorer rebuilds it and
    /// [`snap_restore`](Self::snap_restore) validates against it.
    pub fn snap_save(&self, w: &mut crate::SnapWriter) {
        w.marker(b"CACH");
        w.u64_slice(&self.tags);
        w.u64_slice(&self.stamps);
        w.bool_slice(&self.dirty);
        w.u64(self.last_line);
        w.u32(self.last_way);
        w.u64(self.tick);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.writebacks);
    }

    /// Restore mutable state saved by [`snap_save`](Self::snap_save)
    /// into a structurally identical cache.
    ///
    /// # Errors
    /// [`SnapError`](crate::SnapError) on truncation or when the saved
    /// arrays do not match this cache's geometry.
    pub fn snap_restore(&mut self, r: &mut crate::SnapReader<'_>) -> Result<(), crate::SnapError> {
        r.marker(b"CACH")?;
        let tags = r.u64_vec()?;
        crate::snap_ensure(
            tags.len() == self.tags.len(),
            format!(
                "cache has {} ways, snapshot {}",
                self.tags.len(),
                tags.len()
            ),
        )?;
        let stamps = r.u64_vec()?;
        crate::snap_ensure(
            stamps.len() == self.stamps.len(),
            "cache stamp array length",
        )?;
        let dirty = r.bool_vec()?;
        crate::snap_ensure(dirty.len() == self.dirty.len(), "cache dirty array length")?;
        self.tags = tags;
        self.stamps = stamps;
        self.dirty = dirty;
        self.last_line = r.u64()?;
        self.last_way = r.u32()?;
        self.tick = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.writebacks = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig::new(512, 2, 1))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(8 * 1024 * 1024, 16, 30);
        assert_eq!(c.sets(), 8192);
        assert_eq!(c.lines(), 131072);
        // Paper's odd sizes work too: 6KB 2-way => 48 sets.
        let s = CacheConfig::new(6 * 1024, 2, 2);
        assert_eq!(s.sets(), 48);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        CacheConfig::new(100, 3, 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(LineAddr(0), false).hit);
        assert!(c.access(LineAddr(0), false).hit);
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 map to set 0 (4 sets).
        c.access(LineAddr(0), false);
        c.access(LineAddr(4), false);
        c.access(LineAddr(0), false); // 0 now MRU, 4 LRU
        c.access(LineAddr(8), false); // evicts 4
        assert!(c.contains(LineAddr(0)));
        assert!(!c.contains(LineAddr(4)));
        assert!(c.contains(LineAddr(8)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(LineAddr(0), true); // dirty
        c.access(LineAddr(4), false);
        let out = c.access(LineAddr(8), false); // evicts line 0 (LRU, dirty)
        assert_eq!(out.writeback, Some(LineAddr(0)));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(LineAddr(0), false);
        c.access(LineAddr(4), false);
        let out = c.access(LineAddr(8), false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(LineAddr(0), false);
        c.access(LineAddr(0), true); // upgrade to dirty
        c.access(LineAddr(4), false);
        let out = c.access(LineAddr(8), false);
        assert_eq!(out.writeback, Some(LineAddr(0)));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(LineAddr(0), true);
        assert!(c.invalidate(LineAddr(0)));
        assert!(!c.contains(LineAddr(0)));
        assert!(!c.invalidate(LineAddr(0)));
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = tiny(); // 8 lines
        for i in 0..100 {
            c.access(LineAddr(i), false);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn victim_line_reconstruction_is_exact() {
        let mut c = tiny();
        // Fill set 1 with lines 1 and 5; then line 9 evicts line 1.
        c.access(LineAddr(1), true);
        c.access(LineAddr(5), true);
        let out = c.access(LineAddr(9), false);
        assert_eq!(out.writeback, Some(LineAddr(1)));
    }

    #[test]
    fn same_line_fast_path_matches_full_path() {
        let mut c = tiny();
        c.access(LineAddr(0), false);
        // Repeat hits go through the MRU short-circuit; counters and
        // dirty state must match what the full path would do.
        assert!(c.access(LineAddr(0), false).hit);
        assert!(c.access(LineAddr(0), true).hit); // marks dirty
        c.access(LineAddr(4), false);
        let out = c.access(LineAddr(8), false); // evicts line 0
        assert_eq!(out.writeback, Some(LineAddr(0)));
        assert_eq!(c.counters(), (2, 3, 1));
    }

    #[test]
    fn invalidate_clears_mru_marker() {
        let mut c = tiny();
        c.access(LineAddr(0), true);
        c.invalidate(LineAddr(0));
        // Must re-miss, not fast-path "hit" a ghost line.
        assert!(!c.access(LineAddr(0), false).hit);
    }
}
