//! Set-associative cache with true-LRU replacement.
//!
//! This is a tag-array-only model: it tracks presence, dirtiness and
//! recency of lines, which is all the timing study needs. Capacity and
//! conflict behaviour are exact for the configured geometry.

use crate::addr::LineAddr;

/// Geometry of a single cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Need not be a power of two (the paper's
    /// small core uses 6 KB L1 caches and a 48 KB L2).
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in core cycles (applied by the hierarchy).
    pub latency: u64,
}

impl CacheConfig {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is not a multiple of `ways * 64` or if
    /// either parameter is zero.
    pub fn new(capacity_bytes: u64, ways: u32, latency: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0, "cache must be non-empty");
        assert_eq!(
            capacity_bytes % (ways as u64 * crate::LINE_BYTES),
            0,
            "capacity must be a whole number of sets"
        );
        CacheConfig {
            capacity_bytes,
            ways,
            latency,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * crate::LINE_BYTES)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / crate::LINE_BYTES
    }
}

/// What a lookup did to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The line was present.
    pub hit: bool,
    /// A dirty line was evicted to make room (miss path only).
    pub writeback: Option<LineAddr>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Recency stamp; larger = more recently used.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    ways: Vec<Way>, // sets * cfg.ways, row-major by set
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Build an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            ways: vec![Way::default(); (sets * cfg.ways as u64) as usize],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> u64 {
        line.0 % self.sets
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 / self.sets
    }

    #[inline]
    fn set_slice(&mut self, set: u64) -> &mut [Way] {
        let w = self.cfg.ways as usize;
        let base = set as usize * w;
        &mut self.ways[base..base + w]
    }

    /// Look up `line`, allocating it on a miss (write-allocate) and
    /// marking it dirty when `write` is true. Returns whether it hit and
    /// any dirty victim that must be written back.
    pub fn access(&mut self, line: LineAddr, write: bool) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let sets = self.sets;
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let ways = self.set_slice(set);

        // Hit path.
        let mut hit = false;
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = tick;
                w.dirty |= write;
                hit = true;
                break;
            }
        }
        if hit {
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }

        // Miss: pick invalid way or LRU victim.
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (i, w) in ways.iter().enumerate() {
            if !w.valid {
                victim = i;
                break;
            }
            if w.lru < best {
                best = w.lru;
                victim = i;
            }
        }
        let v = &mut ways[victim];
        let mut writeback = None;
        if v.valid && v.dirty {
            // Reconstruct the victim's line address.
            writeback = Some(LineAddr(v.tag * sets + set));
        }
        *v = Way {
            tag,
            valid: true,
            dirty: write,
            lru: tick,
        };
        if writeback.is_some() {
            self.writebacks += 1;
        }
        self.misses += 1;
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probe without modifying LRU/allocating. Used by tests and by the
    /// hierarchy to model silent upgrades.
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = line.0 % self.sets;
        let tag = line.0 / self.sets;
        let w = self.cfg.ways as usize;
        let base = set as usize * w;
        self.ways[base..base + w]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidate a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let ways = self.set_slice(set);
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                let dirty = w.dirty;
                w.valid = false;
                w.dirty = false;
                return dirty;
            }
        }
        false
    }

    /// Number of valid lines currently resident (O(lines); for tests/stats).
    pub fn resident_lines(&self) -> u64 {
        self.ways.iter().filter(|w| w.valid).count() as u64
    }

    /// (hits, misses, writebacks) counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }

    /// Zero the hit/miss/writeback counters, keeping cache contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Miss rate over all accesses so far (0 if no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig::new(512, 2, 1))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(8 * 1024 * 1024, 16, 30);
        assert_eq!(c.sets(), 8192);
        assert_eq!(c.lines(), 131072);
        // Paper's odd sizes work too: 6KB 2-way => 48 sets.
        let s = CacheConfig::new(6 * 1024, 2, 2);
        assert_eq!(s.sets(), 48);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        CacheConfig::new(100, 3, 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(LineAddr(0), false).hit);
        assert!(c.access(LineAddr(0), false).hit);
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 map to set 0 (4 sets).
        c.access(LineAddr(0), false);
        c.access(LineAddr(4), false);
        c.access(LineAddr(0), false); // 0 now MRU, 4 LRU
        c.access(LineAddr(8), false); // evicts 4
        assert!(c.contains(LineAddr(0)));
        assert!(!c.contains(LineAddr(4)));
        assert!(c.contains(LineAddr(8)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(LineAddr(0), true); // dirty
        c.access(LineAddr(4), false);
        let out = c.access(LineAddr(8), false); // evicts line 0 (LRU, dirty)
        assert_eq!(out.writeback, Some(LineAddr(0)));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(LineAddr(0), false);
        c.access(LineAddr(4), false);
        let out = c.access(LineAddr(8), false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(LineAddr(0), false);
        c.access(LineAddr(0), true); // upgrade to dirty
        c.access(LineAddr(4), false);
        let out = c.access(LineAddr(8), false);
        assert_eq!(out.writeback, Some(LineAddr(0)));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(LineAddr(0), true);
        assert!(c.invalidate(LineAddr(0)));
        assert!(!c.contains(LineAddr(0)));
        assert!(!c.invalidate(LineAddr(0)));
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = tiny(); // 8 lines
        for i in 0..100 {
            c.access(LineAddr(i), false);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn victim_line_reconstruction_is_exact() {
        let mut c = tiny();
        // Fill set 1 with lines 1 and 5; then line 9 evicts line 1.
        c.access(LineAddr(1), true);
        c.access(LineAddr(5), true);
        let out = c.access(LineAddr(9), false);
        assert_eq!(out.writeback, Some(LineAddr(1)));
    }
}
